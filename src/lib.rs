//! # unroller
//!
//! Facade crate for the Unroller workspace — a from-scratch Rust
//! reproduction of *"Detecting Routing Loops in the Data Plane"*
//! (CoNEXT 2020). Re-exports every sub-crate under a stable module tree:
//!
//! * [`core`] — the Unroller algorithm family (phases, hashing,
//!   thresholds, chunks) and its theoretical bounds.
//! * [`baselines`] — INT full-path encoding, in-packet Bloom filters,
//!   PathDump, and the no-reset ablation variant.
//! * [`topology`] — network graphs, WAN/data-center generators, and
//!   path/loop sampling.
//! * [`control`] — loop localization, the report-ingesting controller,
//!   and a distance-vector routing substrate producing transient loops.
//! * [`dataplane`] — a P4-like pipeline model with a bit-exact Unroller
//!   control block and resource accounting.
//! * [`sim`] — a deterministic discrete-event packet-level network
//!   simulator with routing-loop injection.
//! * [`engine`] — a sharded multi-threaded runtime driving the dataplane
//!   pipelines over batched packet streams (RSS flow sharding, bounded
//!   rings with backpressure accounting, live metrics, loop-event
//!   aggregation into the controller).
//! * [`experiments`] — runners reproducing every table and figure of the
//!   paper's evaluation.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use unroller_baselines as baselines;
pub use unroller_control as control;
pub use unroller_core as core;
pub use unroller_dataplane as dataplane;
pub use unroller_engine as engine;
pub use unroller_experiments as experiments;
pub use unroller_sim as sim;
pub use unroller_topology as topology;

pub use unroller_core::prelude;
