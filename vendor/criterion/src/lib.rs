//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! benchmark groups with `sample_size` / `throughput`,
//! [`BenchmarkId`], [`Throughput`], [`black_box`] — backed by a simple
//! mean-of-N `Instant` timing loop instead of criterion's statistical
//! machinery. Results print one line per benchmark:
//! `group/name  time: 123.4 ns/iter (± throughput)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id().label, 10, None, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the measurement time budget (accepted for API parity; the
    /// stub's fixed sample count ignores it).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// A benchmark identifier: a name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] accepted by the `bench_*` methods.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (packets, trials, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `f`, accumulating mean wall-clock cost per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.total += start.elapsed();
    }
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bench = Bencher {
        total: Duration::ZERO,
        iterations: 1,
    };
    let mut iters_done = 0u64;
    for _ in 0..samples {
        f(&mut bench);
        iters_done += bench.iterations;
    }
    if iters_done == 0 {
        println!("{label}  (no iterations)");
        return;
    }
    let ns_per_iter = bench.total.as_nanos() as f64 / iters_done as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns_per_iter > 0.0 => {
            format!("  ({:.3} Melem/s)", n as f64 * 1e3 / ns_per_iter)
        }
        Some(Throughput::Bytes(n)) if ns_per_iter > 0.0 => {
            format!(
                "  ({:.3} MiB/s)",
                n as f64 * 1e9 / ns_per_iter / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{label}  time: {ns_per_iter:.1} ns/iter{rate}");
}

/// Declares a group of benchmark functions, mirroring criterion's
/// simple form: `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(2);
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| b.iter(|| black_box(1u64 + 1)));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_groups() {
        benches();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("a", 7).label, "a/7");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
