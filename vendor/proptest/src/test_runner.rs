//! Test-runner configuration ([`Config`], exported to the prelude as
//! `ProptestConfig`).

/// How many accepted cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of accepted (non-rejected) cases to execute.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}
