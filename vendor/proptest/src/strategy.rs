//! Strategies: deterministic input generators.
//!
//! A [`Strategy`] produces one value per call from the test's RNG. The
//! implementations cover what this workspace's properties use: integer
//! ranges, [`any`] for primitives / options / tuples, tuples of
//! strategies, [`Strategy::prop_map`], and `prop::collection::vec`.

use rand::distributions::{SampleUniform, SteppedDown};
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case inputs.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + SteppedDown> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut StdRng) -> Self {
        if rng.gen() {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($t:ident),+) => {
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut StdRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);
impl_arbitrary_tuple!(A, B, C, D, E);
impl_arbitrary_tuple!(A, B, C, D, E, F);

/// The strategy behind [`any`].
#[derive(Debug)]
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Any<T> {
    /// A fresh `Any` strategy (const-constructible for
    /// `prop::bool::ANY`).
    pub const fn new() -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T> Default for Any<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of `T`: `any::<u64>()`, `any::<bool>()`, ….
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::new()
}

macro_rules! impl_strategy_tuple {
    ($(($t:ident, $idx:tt)),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!((A, 0));
impl_strategy_tuple!((A, 0), (B, 1));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
impl_strategy_tuple!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7)
);
impl_strategy_tuple!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7),
    (I, 8)
);

/// Length specifier for `prop::collection::vec`: a fixed `usize` or a
/// `Range<usize>`.
pub trait VecLen {
    /// Picks the length of one generated vector.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl VecLen for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl VecLen for Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl VecLen for RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy produced by `prop::collection::vec`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    /// Element strategy.
    pub element: S,
    /// Length specifier.
    pub size: L,
}

impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
