//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), integer-range and tuple
//! strategies, [`any`], `prop::bool::ANY`, `prop::collection::vec`,
//! `prop_map`, and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Semantics differ from real proptest in two deliberate ways: inputs
//! are drawn from a deterministic RNG seeded from the test's module
//! path + name (reproducible across runs, no persistence files), and
//! failing cases are *not* shrunk — the failure message reports the
//! assertion that fired instead of a minimal counterexample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use strategy::{any, Any, Arbitrary, Just, Map, Strategy, VecStrategy};

/// Failure channel for a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count
    /// toward the case budget.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Deterministic per-test RNG: the same test always replays the same
/// input sequence.
pub fn deterministic_rng(test_path: &str) -> StdRng {
    // FNV-1a over the fully qualified test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Strategy namespace mirror (`prop::bool::ANY`,
/// `prop::collection::vec`, …).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// Uniform `true` / `false`.
        pub const ANY: crate::Any<bool> = crate::Any::new();
    }

    /// Collection strategies.
    pub mod collection {
        /// A `Vec` whose elements come from `element` and whose length
        /// comes from `size` (a fixed `usize` or a `Range<usize>`).
        pub fn vec<S: crate::Strategy, L: crate::strategy::VecLen>(
            element: S,
            size: L,
        ) -> crate::VecStrategy<S, L> {
            crate::VecStrategy { element, size }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Mirrors proptest's grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..100, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block )*) => { $(
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng =
                $crate::deterministic_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            // Rejections (prop_assume!) retry with fresh inputs, up to a
            // generous cap so a never-satisfiable assumption still
            // terminates.
            while __accepted < __cfg.cases && __attempts < __cfg.cases.saturating_mul(16) {
                __attempts += 1;
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed on case {}: {}",
                            stringify!($name), __accepted + 1, msg
                        );
                    }
                }
            }
            assert!(
                __accepted >= __cfg.cases.min(1),
                "property `{}` rejected every generated input",
                stringify!($name)
            );
        }
    )* };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Rejects the current case (retried with fresh inputs, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u32..10, y in 1usize..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn tuples_and_maps(params in (1u32..4, 1u32..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..16).contains(&params));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<u8>(), 0..7), w in prop::collection::vec(any::<u32>(), 4)) {
            prop_assert!(v.len() < 7);
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "x={} should be even", x);
        }

        #[test]
        fn mut_patterns_work(mut v in prop::collection::vec(any::<u8>(), 3)) {
            v.push(1);
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn options_and_bools(o in any::<Option<(u64, u64)>>(), b in prop::bool::ANY) {
            if let Some((x, _)) = o {
                let _ = x;
            }
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn deterministic_rng_differs_per_test() {
        use rand::RngCore;
        let a = crate::deterministic_rng("mod::a").next_u64();
        let b = crate::deterministic_rng("mod::b").next_u64();
        assert_ne!(a, b);
        let a2 = crate::deterministic_rng("mod::a").next_u64();
        assert_eq!(a, a2);
    }
}
