//! No-op `Serialize` / `Deserialize` derives for the vendored serde
//! stub: each derive emits an empty marker-trait impl for the annotated
//! type. Implemented without `syn`/`quote` (unavailable offline) — the
//! type name is recovered by scanning the raw token stream for the
//! `struct`/`enum` keyword. Generic type parameters are rejected with a
//! compile error rather than silently mis-handled; no type in this
//! workspace needs them.

#![warn(missing_docs)]
// Proc-macro crates must link against the compiler-provided
// `proc_macro` library, which is inherently outside `forbid(unsafe)`
// auditing; the code below is safe Rust throughout.

use proc_macro::{TokenStream, TokenTree};

/// Finds the name of the `struct`/`enum` the derive is attached to and
/// whether it has generic parameters.
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(id) = &tok {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => {
                        return Err(format!(
                            "expected a type name after `{kw}`, found {other:?}"
                        ))
                    }
                };
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        return Err(format!(
                            "the vendored serde stub cannot derive for generic type `{name}`"
                        ));
                    }
                }
                return Ok(name);
            }
        }
    }
    Err("no `struct` or `enum` found in derive input".to_string())
}

fn emit(input: TokenStream, render: impl Fn(&str) -> String) -> TokenStream {
    match type_name(input) {
        Ok(name) => render(&name).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

/// Derives the no-op `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// Derives the no-op `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
