//! Slice sampling helpers ([`SliceRandom`]).

use crate::{uniform_below, RngCore};

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let v: Vec<u32> = vec![];
        assert!(v.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_hits_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1u32, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
