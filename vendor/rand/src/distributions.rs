//! Distributions behind [`Rng::gen`](crate::Rng::gen) and
//! [`Rng::gen_range`](crate::Rng::gen_range).

use crate::{uniform_below, RngCore};
use std::ops::{Range, RangeInclusive};

/// A distribution producing values of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for
/// integers and `bool`, uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a bounded range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `lo..=hi` (inclusive; requires `lo <= hi`).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                // Width as u64: every implementing type fits.
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo <= hi);
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Range types accepted by [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    /// Draws a single sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + SteppedDown> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_inclusive(rng, self.start, self.end.step_down())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        f64::sample_inclusive(rng, self.start, self.end)
    }
}

/// Integer predecessor, used to turn `lo..hi` into `lo..=hi-1`.
pub trait SteppedDown {
    /// The value one step below `self`.
    fn step_down(self) -> Self;
}

macro_rules! impl_stepped_down {
    ($($t:ty),*) => {$(
        impl SteppedDown for $t {
            fn step_down(self) -> Self { self - 1 }
        }
    )*};
}

impl_stepped_down!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
