//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`], the
//! [`distributions::Standard`] distribution behind [`Rng::gen`], and
//! [`seq::SliceRandom`]. The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded through SplitMix64 — statistically strong and
//! deterministic for a given seed, though *not* stream-compatible with
//! upstream `rand`'s ChaCha-based `StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, Standard};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with
    /// SplitMix64 — every seed (including 0) yields a distinct,
    /// well-mixed state.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        // 53 uniform mantissa bits, the same resolution `f64` offers.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fills `dest` with random data (mirror of upstream's `Rng::fill`
    /// for byte slices).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform integer sampling shared by `gen_range` and `SliceRandom`:
/// maps a raw 64-bit draw onto `0..span` with Lemire's multiply-shift
/// (bias below 2⁻⁶⁴, far under statistical noticeability).
pub(crate) fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = StdRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&v| v != 0));
        let mut sorted = draws.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), draws.len(), "degenerate stream: {draws:?}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1usize..=5);
            assert!((1..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!(
            (20_000..30_000).contains(&hits),
            "p=0.25 gave {hits}/100000"
        );
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
