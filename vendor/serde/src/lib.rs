//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, and nothing in this
//! workspace serializes anything yet — the `#[derive(Serialize,
//! Deserialize)]` annotations exist so downstream users keep a stable
//! interface once the real `serde` is swapped back in. This stub keeps
//! those annotations compiling: the traits are empty markers and the
//! derive macros emit empty impls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker for serializable types (no-op stand-in).
pub trait Serialize {}

/// Marker for deserializable types (no-op stand-in).
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
