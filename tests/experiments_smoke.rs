//! Shape checks for every paper artifact at reduced run counts: the
//! qualitative claims of each figure/table must already hold at small
//! scale (who wins, directions of monotonicity, where the knees are).

use unroller_experiments::false_positives::{fig6a, fig6b};
use unroller_experiments::sweeps::{fig2, fig3, fig5a, fig5b, fig7, SweepConfig};
use unroller_experiments::table5::{sample_bl_pool, unroller_min_bits, Table5Config};
use unroller_experiments::tables::{table1_rows, table4_reports};
use unroller_topology::zoo;

fn quick() -> SweepConfig {
    SweepConfig {
        runs: 3_000,
        seed: 77,
        threads: 2,
        max_hops: 1 << 20,
    }
}

fn tiny() -> SweepConfig {
    SweepConfig {
        runs: 1_000,
        seed: 77,
        threads: 2,
        max_hops: 1 << 20,
    }
}

#[test]
fn fig2_series_ordering() {
    // At large L the b = 2 curve sits above b = 4 (Figure 2's visual).
    let mut cfg = tiny();
    cfg.runs = 2_000;
    let series = fig2(&SweepConfig {
        runs: cfg.runs,
        ..cfg
    });
    assert_eq!(series.len(), 3);
    let at = |label: &str, x: f64| {
        series
            .iter()
            .find(|s| s.label == label)
            .unwrap()
            .y_at(x)
            .unwrap()
    };
    assert!(at("b=2", 25.0) > at("b=4", 25.0));
    // Every ratio is at least 1 (X is a lower bound).
    for s in &series {
        for &(_, y) in &s.points {
            assert!(y >= 1.0);
        }
    }
}

#[test]
fn fig3_b0_is_slowest() {
    let series = fig3(&tiny());
    let at = |label: &str, x: f64| {
        series
            .iter()
            .find(|s| s.label == label)
            .unwrap()
            .y_at(x)
            .unwrap()
    };
    // Figure 3: detection time increases when B decreases.
    assert!(at("B=0", 20.0) > at("B=7", 20.0));
}

#[test]
fn fig5_more_chunks_and_hashes_help() {
    let cfg = tiny();
    let a = fig5a(&cfg);
    // H = 1: c = 8 beats c = 1.
    let h1 = a.iter().find(|s| s.label == "H=1").unwrap();
    assert!(h1.y_at(8.0).unwrap() < h1.y_at(1.0).unwrap());
    let b = fig5b(&cfg);
    // c = 1: H = 10 beats H = 1.
    let c1 = b.iter().find(|s| s.label == "c=1").unwrap();
    assert!(c1.y_at(10.0).unwrap() < c1.y_at(1.0).unwrap());
    // Paper: "the improvement is greater when increasing c than H".
    let gain_c = h1.y_at(1.0).unwrap() - h1.y_at(4.0).unwrap();
    let gain_h = c1.y_at(1.0).unwrap() - c1.y_at(4.0).unwrap();
    assert!(
        gain_c > gain_h,
        "chunk gain {gain_c} should exceed hash gain {gain_h}"
    );
}

#[test]
fn fig6_fp_decreases_with_z_and_th() {
    let cfg = quick();
    let a = fig6a(&cfg);
    let c11 = a.iter().find(|s| s.label == "c=1,H=1").unwrap();
    // FP at z = 2 far above FP at z = 14.
    assert!(c11.y_at(2.0).unwrap() > 0.5);
    assert!(c11.y_at(14.0).unwrap() < 0.05);
    // More slots ⇒ more FPs at equal z.
    let c44 = a.iter().find(|s| s.label == "c=4,H=4").unwrap();
    assert!(c44.y_at(6.0).unwrap() > c11.y_at(6.0).unwrap());

    let b = fig6b(&cfg);
    let th1 = b.iter().find(|s| s.label == "Th=1").unwrap();
    let th4 = b.iter().find(|s| s.label == "Th=4").unwrap();
    // Thresholding suppresses FPs exponentially at fixed z.
    assert!(th4.y_at(4.0).unwrap() < th1.y_at(4.0).unwrap());
}

#[test]
fn fig7_threshold_slows_detection() {
    let series = fig7(&tiny());
    let at = |label: &str, x: f64| {
        series
            .iter()
            .find(|s| s.label == label)
            .unwrap()
            .y_at(x)
            .unwrap()
    };
    assert!(at("Th=4", 20.0) > at("Th=2", 20.0));
    assert!(at("Th=2", 20.0) > at("Th=1", 20.0));
}

#[test]
fn table5_unroller_beats_bloom_on_geant() {
    let cfg = Table5Config {
        runs: 2_000,
        scenario_pool: 256,
        seed: 5,
        threads: 2,
    };
    let topo = zoo::geant();
    let pool = sample_bl_pool(&topo, cfg.scenario_pool, cfg.seed);
    let unroller = unroller_min_bits(&pool, &cfg);
    let bloom = unroller_experiments::table5::bloom_min_bits(&pool, &cfg);
    assert!(
        unroller * 2 < bloom,
        "expected a clear gap: unroller {unroller} bits vs bloom {bloom} bits"
    );
    assert!(unroller <= 40, "8-bit Xcnt + at most 32-bit hash");
}

#[test]
fn table1_and_table4_render() {
    assert_eq!(table1_rows().len(), 10);
    let reports = table4_reports();
    assert!(reports.iter().all(|r| r.header_bits >= 9));
}

#[test]
fn bounds_constants_are_papers() {
    use unroller::core::bounds;
    assert!((bounds::worst_case_constant(4) - 4.6667).abs() < 1e-3);
    assert!((bounds::chunked_constant(7, 2) - 4.3333).abs() < 1e-3);
    assert!((bounds::LOWER_BOUND_CONSTANT - 3.7321).abs() < 1e-3);
}
