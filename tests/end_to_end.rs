//! Cross-crate integration tests: topology → scenario → simulator →
//! detector → report, and software-detector ↔ dataplane-pipeline ↔
//! simulator agreement.

use unroller::baselines::{BloomFilterDetector, IntPathRecorder};
use unroller::core::walk::run_detector;
use unroller::core::{InPacketDetector, Unroller, UnrollerParams};
use unroller::dataplane::header::{HeaderLayout, WireHeader};
use unroller::dataplane::pipeline::UnrollerPipeline;
use unroller::sim::{DetectAction, SimConfig, Simulator};
use unroller::topology::ids::assign_random_ids;
use unroller::topology::loops::sample_scenario;
use unroller::topology::zoo;

/// Every evaluation topology: inject a sampled loop, run traffic, and
/// confirm Unroller reports it before the TTL would have expired.
#[test]
fn unroller_catches_injected_loops_on_every_topology() {
    let mut rng = unroller::core::test_rng(11);
    for topo in zoo::table5_topologies() {
        let ids = assign_random_ids(topo.graph.node_count(), &mut rng);
        let det = Unroller::from_params(UnrollerParams::default()).unwrap();
        let mut sim = Simulator::new(topo.graph.clone(), ids, det, SimConfig::default());
        // Pick endpoints at distance >= 2 so the loop can sit strictly
        // before the destination, and poison the packet's *actual*
        // route (the simulator's BFS trees may tie-break differently
        // from any externally computed shortest path).
        let dist0 = topo.graph.bfs_distances(0);
        let dst = (0..topo.graph.node_count())
            .find(|&n| dist0[n] == 2)
            .unwrap_or_else(|| panic!("{}: diameter >= 2", topo.name));
        let src = 0;
        let route = sim.route(src, dst);
        assert!(route.len() >= 3, "{}: route {route:?}", topo.name);
        sim.inject_cycle(&[route[0], route[1]], dst);
        sim.send_packet(0, src, dst);
        let stats = sim.run();
        assert_eq!(stats.reports.len(), 1, "{}: no report", topo.name);
        let report = &stats.reports[0];
        assert!(
            report.hop < 64,
            "{}: reported at hop {} (TTL would win)",
            topo.name,
            report.hop
        );
        assert!(stats.accounted(), "{}", topo.name);
    }
}

/// The simulator's report hop must match running the detector over the
/// equivalent abstract walk: the simulator adds no semantics of its own.
#[test]
fn simulator_agrees_with_abstract_walk() {
    let mut rng = unroller::core::test_rng(12);
    for _ in 0..20 {
        let topo = zoo::att_na();
        let Some(scenario) = sample_scenario(&topo.graph, 20, 300, &mut rng) else {
            continue;
        };
        let ids = assign_random_ids(topo.graph.node_count(), &mut rng);
        let det = Unroller::from_params(UnrollerParams::default()).unwrap();

        // Abstract walk prediction.
        let walk = scenario.walk(&ids);
        let expected = run_detector(&det, &walk, 1 << 20).reported_at;

        // Simulator execution. Use a huge TTL so the TTL never preempts
        // the detector.
        let mut sim = Simulator::new(
            topo.graph.clone(),
            ids,
            det,
            SimConfig {
                ttl: 255,
                ..SimConfig::default()
            },
        );
        let src = scenario.path[0];
        let dst = *scenario.path.last().unwrap();
        sim.inject_cycle(&scenario.cycle, dst);
        sim.send_packet(0, src, dst);
        let stats = sim.run();

        // The simulated packet follows the intended shortest path into
        // the injected cycle; BFS tie-breaking may route it along a
        // different equal-length path that enters the cycle elsewhere,
        // so compare only when a report happened in both worlds.
        let got = stats.reports.first().map(|r| r.hop as u64);
        if let (Some(e), Some(g)) = (expected, got) {
            // Both detect; with identical walks they agree exactly. When
            // the simulator's path differs (tie-break), hops may differ
            // but must stay within the worst-case envelope.
            if sim_path_matches(&scenario, &topo.graph) {
                assert_eq!(e, g, "walk/simulator divergence");
            } else {
                assert!(g < 4 * 255);
            }
        }
    }
}

fn sim_path_matches(
    scenario: &unroller::topology::LoopScenario,
    graph: &unroller::topology::Graph,
) -> bool {
    // The simulator uses Graph::shortest_path's deterministic
    // tie-breaking; the scenario stored exactly that path.
    graph
        .shortest_path(scenario.path[0], *scenario.path.last().unwrap())
        .as_deref()
        == Some(&scenario.path[..])
}

/// Frame-level pipelines chained along a looped trajectory agree with
/// the software detector hop-for-hop.
#[test]
fn dataplane_chain_agrees_with_software() {
    let mut rng = unroller::core::test_rng(13);
    for params in [
        UnrollerParams::default(),
        UnrollerParams::default().with_z(10).with_th(2),
        UnrollerParams::default().with_c(2).with_h(2).with_z(8),
    ] {
        let det = Unroller::from_params(params).unwrap();
        let layout = HeaderLayout::from_params(&params);
        for _ in 0..10 {
            let walk = unroller::core::Walk::random(4, 8, &mut rng);
            let mut sw_state = det.init_state();
            let mut hdr = WireHeader::initial(&layout);
            for hop in 1..=100u64 {
                let switch = walk.switch_at(hop).unwrap();
                let sw = det.on_switch(&mut sw_state, switch).reported();
                let hw = UnrollerPipeline::new(switch, params)
                    .unwrap()
                    .process_header(&mut hdr)
                    .reported();
                assert_eq!(sw, hw, "hop {hop} divergence for {params:?}");
                if sw {
                    break;
                }
            }
        }
    }
}

/// All three in-packet baselines run through the simulator and detect
/// the same injected loop.
#[test]
fn baselines_work_in_simulator() {
    let topo = zoo::fattree4();
    let mut rng = unroller::core::test_rng(14);
    let ids = assign_random_ids(topo.graph.node_count(), &mut rng);
    // Ping-pong between core 0 and its first attached aggregation
    // switch; send traffic whose route starts at that core.
    let agg = topo.graph.neighbors(0)[0];
    let loop_pair = [0usize, agg];
    assert!(topo.graph.has_edge(loop_pair[0], loop_pair[1]));
    // A destination at distance >= 2 from the core.
    let dist0 = topo.graph.bfs_distances(0);
    let dst = (0..topo.graph.node_count())
        .find(|&n| dist0[n] == 2)
        .expect("fat-tree has distance-2 pairs");

    let reports_with = |stats: &unroller::sim::SimStats| stats.reports.len();

    let int = IntPathRecorder::new();
    let mut sim = Simulator::new(topo.graph.clone(), ids.clone(), int, SimConfig::default());
    sim.inject_cycle(&loop_pair, dst);
    sim.send_packet(0, loop_pair[0], dst);
    assert_eq!(reports_with(sim.run()), 1, "INT");

    let bloom = BloomFilterDetector::new(1024, 3, 5);
    let mut sim = Simulator::new(topo.graph.clone(), ids.clone(), bloom, SimConfig::default());
    sim.inject_cycle(&loop_pair, dst);
    sim.send_packet(0, loop_pair[0], dst);
    assert_eq!(reports_with(sim.run()), 1, "Bloom");

    let unroller = Unroller::from_params(UnrollerParams::default()).unwrap();
    let mut sim = Simulator::new(topo.graph.clone(), ids, unroller, SimConfig::default());
    sim.inject_cycle(&loop_pair, dst);
    sim.send_packet(0, loop_pair[0], dst);
    assert_eq!(reports_with(sim.run()), 1, "Unroller");
}

/// Fast reroute delivers packets that drop-and-report would shed, on a
/// topology with path redundancy.
#[test]
fn reroute_beats_drop_on_redundant_fabric() {
    let fabric = unroller::topology::generators::fat_tree(4);
    let mut rng = unroller::core::test_rng(15);
    let ids = assign_random_ids(fabric.graph.node_count(), &mut rng);
    let edges: Vec<_> = (0..fabric.graph.node_count())
        .filter(|&n| fabric.layers[n] == 0)
        .collect();
    let (src, dst) = (edges[0], edges[7]);
    let path = fabric.graph.shortest_path(src, dst).unwrap();
    let det = Unroller::from_params(UnrollerParams::default()).unwrap();

    let run = |action| {
        let mut sim = Simulator::new(
            fabric.graph.clone(),
            ids.clone(),
            det.clone(),
            SimConfig {
                on_detect: action,
                ..SimConfig::default()
            },
        );
        sim.inject_cycle(&[path[1], path[2]], dst);
        for i in 0..20 {
            sim.send_packet(i * 1000, src, dst);
        }
        sim.run().clone()
    };

    let dropped = run(DetectAction::DropAndReport);
    let rerouted = run(DetectAction::Reroute);
    assert_eq!(dropped.delivered, 0);
    assert!(
        rerouted.delivered > dropped.delivered,
        "reroute delivered {} vs {}",
        rerouted.delivered,
        dropped.delivered
    );
}

/// PathDump applies to both layered fabrics the paper names — FatTree
/// *and* VL2 — and to neither WAN.
#[test]
fn pathdump_applicability_matches_paper() {
    use unroller::baselines::{Layer, PathDump};
    let build = |topo: &unroller::topology::Topology, ids: &[u32]| {
        let layers = topo.layers.as_ref().expect("layered");
        let mut map = std::collections::HashMap::new();
        for (node, &l) in layers.iter().enumerate() {
            let layer = match l {
                0 => Layer::Edge,
                1 => Layer::Aggregation,
                _ => Layer::Core,
            };
            map.insert(ids[node], layer);
        }
        PathDump::new(map)
    };
    let mut rng = unroller::core::test_rng(16);
    for topo in [zoo::fattree4(), zoo::vl2_small()] {
        let ids = assign_random_ids(topo.graph.node_count(), &mut rng);
        let pd = build(&topo, &ids);
        assert!(pd.applicable_to(ids.iter().copied()), "{}", topo.name);
        // No false positives on host traffic: hosts attach to the
        // edge/ToR layer, so valid paths start and end there and have at
        // most one up→down turn. (Switch-to-switch paths between
        // aggregation switches can legitimately zig-zag and are not what
        // PathDump carries.)
        let layers = topo.layers.as_ref().unwrap();
        let edges: Vec<usize> = (0..topo.graph.node_count())
            .filter(|&n| layers[n] == 0)
            .collect();
        for &src in &edges {
            for &dst in &edges {
                let Some(path) = topo.graph.shortest_path(src, dst) else {
                    continue;
                };
                let mut st = pd.init_state();
                for &n in &path {
                    assert!(
                        !pd.on_switch(&mut st, ids[n]).reported(),
                        "{}: FP on shortest path {path:?}",
                        topo.name
                    );
                }
            }
        }
    }
    // WANs: the oracle covers nothing, PathDump observes nothing.
    let geant = zoo::geant();
    let ids = assign_random_ids(geant.graph.node_count(), &mut rng);
    let pd = PathDump::from_layers(&[], &[], &[]);
    assert!(!pd.applicable_to(ids.iter().copied()));
}

/// Stress: very long loops and long pre-loop paths stay within the
/// worst-case envelope and detect without excessive work.
#[test]
fn long_loop_stress() {
    let det = Unroller::from_params(UnrollerParams::default()).unwrap();
    let mut rng = unroller::core::test_rng(17);
    for (b, l) in [(0usize, 1000usize), (200, 500), (1000, 3)] {
        let walk = unroller::core::Walk::random(b, l, &mut rng);
        let out = run_detector(&det, &walk, 1 << 24);
        let hops = out.reported_at.expect("detected") as f64;
        // Power-boundary constants differ slightly from the analysis
        // schedule; 6X is a safe envelope for b = 4.
        assert!(
            hops <= 6.0 * walk.x() as f64 + 16.0,
            "B={b} L={l}: {hops} hops"
        );
    }
}

/// Header overhead accounting is consistent across the stack: params,
/// wire layout, and detector agree.
#[test]
fn overhead_accounting_is_consistent() {
    for params in [
        UnrollerParams::default(),
        UnrollerParams::default().with_z(7).with_th(4),
        UnrollerParams::default().with_c(4).with_h(2).with_z(9),
    ] {
        let det = Unroller::from_params(params).unwrap();
        let layout = HeaderLayout::from_params(&params);
        assert_eq!(params.overhead_bits() as u64, det.overhead_bits(100));
        assert_eq!(layout.total_bits(), params.overhead_bits());
        // The encoded wire representation fits in the claimed bytes.
        let hdr = WireHeader::initial(&layout);
        assert_eq!(hdr.encode(&layout).len(), layout.total_bytes());
    }
}
