//! Property-based tests (proptest) over the core invariants:
//!
//! * no false negatives — every looping walk is eventually reported;
//! * Theorem 1's worst-case bound on the analysis schedule;
//! * zero false positives with full-width identifiers;
//! * software detector ↔ dataplane pipeline bit-exact agreement;
//! * header encode/decode roundtrips;
//! * phase schedules partition the hop line.

use proptest::prelude::*;
use unroller::core::walk::run_detector;
use unroller::core::{bounds, InPacketDetector, PhaseSchedule, Unroller, UnrollerParams, Walk};
use unroller::dataplane::header::{HeaderLayout, WireHeader};
use unroller::dataplane::pipeline::UnrollerPipeline;

/// Strategy for arbitrary valid parameter sets (kept small enough that
/// detection finishes quickly).
fn params_strategy() -> impl Strategy<Value = UnrollerParams> {
    (
        2u32..=6,        // b
        1u32..=32,       // z
        1u32..=4,        // c
        1u32..=4,        // h
        1u32..=4,        // th
        prop::bool::ANY, // schedule
    )
        .prop_map(|(b, z, c, h, th, power)| UnrollerParams {
            b,
            z,
            c,
            h,
            th,
            schedule: if power {
                PhaseSchedule::PowerBoundary
            } else {
                PhaseSchedule::CumulativeGeometric
            },
            xcnt_in_header: true,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No false negatives: every configuration detects every loop.
    #[test]
    fn every_loop_is_detected(
        params in params_strategy(),
        b_hops in 0usize..12,
        l in 1usize..16,
        seed in any::<u64>(),
    ) {
        let det = Unroller::from_params(params).unwrap();
        let mut rng = unroller::core::test_rng(seed);
        let walk = Walk::random(b_hops, l, &mut rng);
        // Generous cap: worst case is O(max(b·B, b·L·Th)).
        let cap = 64 + (params.b as u64 + 1)
            * (params.th as u64 + 2)
            * (b_hops as u64 + l as u64 + 1)
            * 4;
        let out = run_detector(&det, &walk, cap);
        prop_assert!(
            out.reported_at.is_some(),
            "missed loop: {params:?} B={b_hops} L={l} cap={cap}"
        );
    }

    /// Theorem 1 bound on the analysis schedule with a single full ID,
    /// for every identifier arrangement proptest throws at it.
    #[test]
    fn theorem1_bound_holds(
        b in 2u32..=6,
        b_hops in 0usize..10,
        l in 1usize..14,
        seed in any::<u64>(),
    ) {
        let det = Unroller::from_params(UnrollerParams::analysis(b)).unwrap();
        let mut rng = unroller::core::test_rng(seed);
        let walk = Walk::random(b_hops, l, &mut rng);
        let hops = run_detector(&det, &walk, 1 << 22).reported_at.unwrap() as f64;
        let bound = bounds::worst_case_bound(b, b_hops as u64, l as u64);
        prop_assert!(hops <= bound, "b={b} B={b_hops} L={l}: {hops} > {bound}");
    }

    /// Adversarial minimum placement still respects the bound.
    #[test]
    fn theorem1_bound_holds_adversarially(
        b_hops in 0usize..8,
        l in 1usize..10,
        pos_seed in any::<u64>(),
    ) {
        let det = Unroller::from_params(UnrollerParams::analysis(4)).unwrap();
        let pos = 1 + (pos_seed as usize) % (b_hops + l);
        let walk = bounds::walk_with_min_at(b_hops, l, pos);
        let hops = run_detector(&det, &walk, 1 << 22).reported_at.unwrap() as f64;
        let bound = bounds::worst_case_bound(4, b_hops as u64, l as u64);
        prop_assert!(hops <= bound);
    }

    /// Full-width identifiers never produce a false positive.
    #[test]
    fn no_false_positive_with_full_ids(
        path_len in 1usize..64,
        c in 1u32..=4,
        seed in any::<u64>(),
    ) {
        // c > 1 with z = 32 and H = 1 still uses the identity family.
        let det = Unroller::from_params(UnrollerParams::default().with_c(c)).unwrap();
        let mut rng = unroller::core::test_rng(seed);
        let walk = Walk::random_loop_free(path_len, &mut rng);
        let out = run_detector(&det, &walk, path_len as u64 + 1);
        prop_assert_eq!(out.reported_at, None);
    }

    /// The dataplane pipeline is bit-exact against the software
    /// detector on arbitrary walks and configurations (below Xcnt
    /// saturation).
    #[test]
    fn pipeline_equals_software(
        params in params_strategy(),
        b_hops in 0usize..8,
        l in 1usize..10,
        seed in any::<u64>(),
    ) {
        let det = Unroller::from_params(params).unwrap();
        let layout = HeaderLayout::from_params(&params);
        let mut rng = unroller::core::test_rng(seed);
        let walk = Walk::random(b_hops, l, &mut rng);
        let mut sw = det.init_state();
        let mut hw = WireHeader::initial(&layout);
        for hop in 1..=200u64 {
            let switch = walk.switch_at(hop).unwrap();
            let s = det.on_switch(&mut sw, switch).reported();
            let h = UnrollerPipeline::new(switch, params)
                .unwrap()
                .process_header(&mut hw)
                .reported();
            prop_assert_eq!(s, h, "hop {} for {:?}", hop, params);
            if s {
                break;
            }
        }
    }

    /// Wire headers roundtrip for every layout and field content.
    #[test]
    fn header_roundtrips(
        params in params_strategy(),
        xcnt in any::<u8>(),
        raw in prop::collection::vec(any::<u32>(), 16),
        thcnt_raw in any::<u32>(),
    ) {
        let layout = HeaderLayout::from_params(&params);
        let hdr = WireHeader {
            xcnt,
            thcnt: if params.th == 1 { 0 } else { thcnt_raw % params.th },
            swids: (0..params.slots())
                .map(|i| raw[i % raw.len()] & params.z_mask())
                .collect(),
        };
        let bytes = hdr.encode(&layout);
        prop_assert_eq!(bytes.len(), layout.total_bytes());
        let back = WireHeader::decode(&layout, &bytes).unwrap();
        prop_assert_eq!(back, hdr);
    }

    /// Phase schedules tile the hop line: consecutive hops are either in
    /// the same phase or in adjacent phases with no gap.
    #[test]
    fn schedules_partition_hops(
        b in 2u32..=8,
        c in 1u32..=8,
        x in 1u64..100_000,
        power in any::<bool>(),
    ) {
        let schedule = if power {
            PhaseSchedule::PowerBoundary
        } else {
            PhaseSchedule::CumulativeGeometric
        };
        let p1 = schedule.position(x, b, c);
        let p2 = schedule.position(x + 1, b, c);
        prop_assert!(p1.phase_start <= x && x < p1.phase_start + p1.phase_len);
        if p2.phase == p1.phase {
            prop_assert_eq!(p1.phase_start, p2.phase_start);
        } else {
            prop_assert_eq!(p2.phase, p1.phase + 1);
            prop_assert_eq!(p2.phase_start, p1.phase_start + p1.phase_len);
        }
        prop_assert!(p1.chunk < c);
        prop_assert!(p1.chunk_start <= x);
    }

    /// The shim decoder never panics on arbitrary bytes — it either
    /// parses or reports a structured error (robustness against
    /// corrupted packets).
    #[test]
    fn decoder_never_panics_on_garbage(
        params in params_strategy(),
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let layout = HeaderLayout::from_params(&params);
        let _ = WireHeader::decode(&layout, &bytes); // must not panic
    }

    /// Frame processing on arbitrary bytes never panics: it parses and
    /// processes, or returns a structured `FrameError`.
    #[test]
    fn frame_processing_never_panics_on_garbage(
        params in params_strategy(),
        mut bytes in prop::collection::vec(any::<u8>(), 0..96),
    ) {
        let pipe = UnrollerPipeline::new(7, params).unwrap();
        let _ = pipe.process_frame(&mut bytes); // must not panic
    }

    /// Detection time never improves when the threshold rises (same
    /// walk, Th = 1 vs Th = 2).
    #[test]
    fn threshold_never_speeds_detection(
        b_hops in 0usize..8,
        l in 1usize..12,
        seed in any::<u64>(),
    ) {
        let d1 = Unroller::from_params(UnrollerParams::default()).unwrap();
        let d2 = Unroller::from_params(UnrollerParams::default().with_th(2)).unwrap();
        let mut rng = unroller::core::test_rng(seed);
        let walk = Walk::random(b_hops, l, &mut rng);
        let t1 = run_detector(&d1, &walk, 1 << 22).reported_at.unwrap();
        let t2 = run_detector(&d2, &walk, 1 << 22).reported_at.unwrap();
        prop_assert!(t2 >= t1, "Th=2 detected earlier ({t2}) than Th=1 ({t1})");
    }
}
