//! Integration tests for the full control loop: data-plane detection →
//! tagged membership collection → controller localization → healing,
//! and the distance-vector substrate's transient loops feeding the data
//! plane.

use unroller::control::{Controller, DistanceVector, LocalizingDetector, INFINITY};
use unroller::core::{Unroller, UnrollerParams};
use unroller::sim::{SimConfig, Simulator};
use unroller::topology::generators::{grid, ring};
use unroller::topology::ids::{assign_random_ids, assign_sequential_ids};
use unroller::topology::loops::sample_scenario;
use unroller::topology::zoo;

fn localizer() -> LocalizingDetector<Unroller> {
    LocalizingDetector::new(
        Unroller::from_params(UnrollerParams::default()).unwrap(),
        64,
    )
}

#[test]
fn detect_localize_heal_roundtrip() {
    let mut rng = unroller::core::test_rng(101);
    for topo in [zoo::geant(), zoo::att_na(), zoo::fattree4()] {
        let ids = assign_random_ids(topo.graph.node_count(), &mut rng);
        let mut sim = Simulator::new(
            topo.graph.clone(),
            ids.clone(),
            localizer(),
            SimConfig::default(),
        );
        let Some(scenario) = sample_scenario(&topo.graph, 12, 500, &mut rng) else {
            continue;
        };
        let dst = *scenario.path.last().unwrap();
        // A source guaranteed to hit the poisoned cycle: a cycle node.
        let src = scenario.cycle[0];
        if src == dst {
            continue;
        }
        sim.inject_cycle(&scenario.cycle, dst);
        sim.send_packet(0, src, dst);
        sim.run();
        assert_eq!(sim.stats.reports.len(), 1, "{}", topo.name);

        // The controller localizes exactly the injected cycle.
        let mut ctl = Controller::new(&ids);
        assert_eq!(ctl.ingest_from_sim(&sim), 1, "{}", topo.name);
        let loops = ctl.localized_loops();
        assert_eq!(loops.len(), 1);
        let mut got = loops[0].nodes.clone();
        got.sort_unstable();
        let mut want = scenario.cycle.clone();
        want.sort_unstable();
        assert_eq!(got, want, "{}: wrong membership", topo.name);

        // Healing restores delivery.
        ctl.heal(&mut sim);
        let delivered_before = sim.stats.delivered;
        sim.send_packet(1_000_000, src, dst);
        sim.run();
        assert_eq!(sim.stats.delivered, delivered_before + 1, "{}", topo.name);
    }
}

#[test]
fn localization_costs_one_extra_loop_pass_in_sim() {
    // The localizer holds the report back for exactly L additional hops
    // compared with plain Unroller — visible end-to-end in the sim.
    let g = grid(6, 1);
    let ids = assign_sequential_ids(6, 400);

    let run_hops = |use_localizer: bool| -> u32 {
        let cfg = SimConfig::default();
        if use_localizer {
            let mut sim = Simulator::new(g.clone(), ids.clone(), localizer(), cfg);
            sim.inject_cycle(&[1, 2], 5);
            sim.send_packet(0, 0, 5);
            sim.run().reports[0].hop
        } else {
            let det = Unroller::from_params(UnrollerParams::default()).unwrap();
            let mut sim = Simulator::new(g.clone(), ids.clone(), det, cfg);
            sim.inject_cycle(&[1, 2], 5);
            sim.send_packet(0, 0, 5);
            sim.run().reports[0].hop
        }
    };

    let plain = run_hops(false);
    let local = run_hops(true);
    assert_eq!(local, plain + 2, "L = 2 extra hops for collection");
}

#[test]
fn dv_transient_loops_are_caught_by_unroller_in_the_dataplane() {
    // Run the protocol's convergence after a failure; every round whose
    // forwarding state contains a loop must end in a data-plane report
    // (never a TTL drop), and loop-free rounds must never report.
    let g = grid(6, 1);
    let ids = assign_sequential_ids(6, 700);
    let dst = 5;
    let det = Unroller::from_params(UnrollerParams::default()).unwrap();

    let mut dv = DistanceVector::new(g.clone(), false);
    dv.fail_link(4, 5);
    let mut saw_loop_round = false;
    for _round in 0..3 * INFINITY {
        let mut sim = Simulator::new(g.clone(), ids.clone(), det.clone(), SimConfig::default());
        sim.set_routes(dst, dv.forwarding(dst));
        sim.send_packet(0, 0, dst);
        let stats = sim.run();
        let looping = dv.loop_toward(dst).is_some();
        if looping {
            saw_loop_round = true;
            assert_eq!(
                stats.reports.len(),
                1,
                "looping round must be caught in the data plane"
            );
            assert_eq!(stats.dropped_ttl, 0, "never fall back to TTL");
        } else {
            assert!(stats.reports.is_empty(), "no false report");
        }
        if !dv.step() {
            break;
        }
    }
    assert!(saw_loop_round, "the scenario must produce transient loops");
    assert!(
        dv.loop_toward(dst).is_none(),
        "converged state is loop-free"
    );
}

#[test]
fn dv_on_ring_converges_and_sim_delivers_after() {
    let g = ring(8);
    let ids = assign_sequential_ids(8, 30);
    let mut dv = DistanceVector::new(g.clone(), false);
    dv.fail_link(0, 1);
    dv.converge(300);
    // Install the converged post-failure tables for every destination:
    // traffic still flows (the long way).
    let det = Unroller::from_params(UnrollerParams::default()).unwrap();
    let mut sim = Simulator::new(g, ids, det, SimConfig::default());
    for dst in 0..8 {
        sim.set_routes(dst, dv.forwarding(dst));
    }
    sim.send_packet(0, 0, 1);
    sim.send_packet(0, 1, 0);
    let stats = sim.run();
    assert_eq!(stats.delivered, 2);
    assert!(stats.reports.is_empty());
    // The long way: 7 hops = 8 switches processed per packet.
    assert_eq!(stats.total_hops, 16);
}
