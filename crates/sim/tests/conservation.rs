//! Property-based tests of simulator invariants: packet conservation,
//! TTL discipline, latency sanity, and determinism under arbitrary
//! topologies, loop injections, faults, and traffic patterns.

use proptest::prelude::*;
use unroller_core::{Unroller, UnrollerParams};
use unroller_sim::{DetectAction, NullDetector, SimConfig, SimStats, Simulator};
use unroller_topology::generators::random_connected;
use unroller_topology::ids::assign_sequential_ids;

/// Builds a simulator over a random connected graph and runs a random
/// traffic-and-failure scenario described by the inputs.
#[allow(clippy::too_many_arguments)] // the arguments ARE the proptest strategy
fn run_scenario(
    n: usize,
    extra: usize,
    graph_seed: u64,
    packets: u8,
    drop_prob: u8,
    poison: Option<(u64, u64)>,
    reroute: bool,
    serialization: bool,
    with_unroller: bool,
) -> SimStats {
    let g = random_connected(n, extra, graph_seed);
    let ids = assign_sequential_ids(n, 1000);
    let cfg = SimConfig {
        drop_probability: (drop_prob % 100) as f64 / 100.0,
        seed: graph_seed ^ 0xfeed,
        on_detect: if reroute {
            DetectAction::Reroute
        } else {
            DetectAction::DropAndReport
        },
        link_serialization_ns: if serialization { 300 } else { 0 },
        ttl: 48,
        ..SimConfig::default()
    };
    macro_rules! drive {
        ($sim:expr) => {{
            let mut sim = $sim;
            if let Some((a, b)) = poison {
                // Poison one node's route toward one destination with
                // its first neighbor: a legal (possibly looping) rewrite.
                let node = (a as usize) % n;
                let dst = (b as usize) % n;
                if node != dst {
                    let next = sim.graph().neighbors(node).first().copied();
                    if let Some(next) = next {
                        sim.poison_route(node, dst, next);
                    }
                }
            }
            for i in 0..packets {
                let src = (i as usize * 7) % n;
                let dst = (i as usize * 13 + 1) % n;
                if src != dst {
                    sim.send_packet(i as u64 * 500, src, dst);
                }
            }
            sim.run_until(u64::MAX, 2_000_000);
            sim.stats.clone()
        }};
    }
    if with_unroller {
        let det = Unroller::from_params(UnrollerParams::default()).unwrap();
        drive!(Simulator::new(g, ids, det, cfg))
    } else {
        drive!(Simulator::new(g, ids, NullDetector, cfg))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every injected packet terminates in exactly one of the accounted
    /// ways, whatever the scenario.
    #[test]
    fn packets_are_conserved(
        n in 2usize..25,
        extra in 0usize..25,
        graph_seed in any::<u64>(),
        packets in 1u8..40,
        drop_prob in 0u8..100,
        poison in any::<Option<(u64, u64)>>(),
        reroute in any::<bool>(),
        serialization in any::<bool>(),
        with_unroller in any::<bool>(),
    ) {
        let stats = run_scenario(
            n, extra, graph_seed, packets, drop_prob, poison, reroute,
            serialization, with_unroller,
        );
        prop_assert!(stats.accounted(), "unaccounted packets: {stats:?}");
        // Hop counts never exceed what the TTL permits (the detector can
        // only shorten lives, and reroutes consume TTL too).
        for r in &stats.reports {
            prop_assert!(r.hop as u64 <= 49, "report at hop {}", r.hop);
        }
        prop_assert_eq!(stats.delivery_latencies.len() as u64, stats.delivered);
    }

    /// Scenarios are bit-for-bit deterministic under a fixed seed.
    #[test]
    fn scenarios_are_deterministic(
        n in 2usize..15,
        extra in 0usize..15,
        graph_seed in any::<u64>(),
        packets in 1u8..20,
        drop_prob in 0u8..100,
        serialization in any::<bool>(),
    ) {
        let a = run_scenario(n, extra, graph_seed, packets, drop_prob, None, false, serialization, true);
        let b = run_scenario(n, extra, graph_seed, packets, drop_prob, None, false, serialization, true);
        prop_assert_eq!(a, b);
    }

    /// With no faults, no loops, and a connected graph, everything is
    /// delivered and nothing is reported.
    #[test]
    fn healthy_network_delivers_everything(
        n in 2usize..25,
        extra in 0usize..25,
        graph_seed in any::<u64>(),
        packets in 1u8..40,
        serialization in any::<bool>(),
    ) {
        let stats = run_scenario(n, extra, graph_seed, packets, 0, None, false, serialization, true);
        prop_assert_eq!(stats.delivered, stats.sent);
        prop_assert!(stats.reports.is_empty());
        prop_assert_eq!(stats.dropped_ttl, 0);
    }

    /// Serialization can only increase delivery latency relative to the
    /// unqueued model, never decrease it.
    #[test]
    fn queueing_is_monotone(
        n in 2usize..15,
        extra in 0usize..15,
        graph_seed in any::<u64>(),
        packets in 2u8..20,
    ) {
        let fast = run_scenario(n, extra, graph_seed, packets, 0, None, false, false, false);
        let slow = run_scenario(n, extra, graph_seed, packets, 0, None, false, true, false);
        prop_assert_eq!(fast.delivered, slow.delivered);
        // Queueing may reorder deliveries; compare the sorted latency
        // distributions element-wise.
        let mut f = fast.delivery_latencies.clone();
        let mut s = slow.delivery_latencies.clone();
        f.sort_unstable();
        s.sort_unstable();
        for (f, s) in f.iter().zip(&s) {
            prop_assert!(s >= f, "queueing made a packet faster: {s} < {f}");
        }
    }
}
