//! # unroller-sim
//!
//! A deterministic discrete-event packet-level network simulator for
//! exercising in-dataplane loop detectors end to end: switches forward
//! by destination over a real topology, routing loops are injected by
//! poisoning forwarding entries, every switch runs a detector on every
//! packet, and the reaction policy is either drop-and-report or the
//! paper's envisioned backup-port fast reroute.
//!
//! * [`event`] — the deterministic time-ordered event queue.
//! * [`sim`] — the [`sim::Simulator`] engine, generic over any
//!   [`InPacketDetector`](unroller_core::InPacketDetector).
//! * [`trace`] — per-packet event tracing.
//!
//! ```
//! use unroller_sim::{SimConfig, Simulator};
//! use unroller_topology::{generators::grid, ids::assign_sequential_ids};
//! use unroller_core::{Unroller, UnrollerParams};
//!
//! // A 5-switch line; a forwarding ping-pong injected between switches
//! // 1 and 2 traps packets heading for switch 4.
//! let g = grid(5, 1);
//! let ids = assign_sequential_ids(5, 100);
//! let det = Unroller::from_params(UnrollerParams::default()).unwrap();
//! let mut sim = Simulator::new(g, ids, det, SimConfig::default());
//! sim.inject_cycle(&[1, 2], 4);
//! sim.send_packet(0, 0, 4);
//! let stats = sim.run();
//! assert_eq!(stats.dropped_loop, 1);
//! assert_eq!(stats.reports.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
#[allow(clippy::module_inception)]
pub mod sim;
pub mod trace;

pub use event::{EventQueue, SimTime};
pub use sim::{DetectAction, LoopReport, NullDetector, SimConfig, SimStats, Simulator};
pub use trace::{Trace, TraceEntry, TraceEvent};
