//! The packet-level network simulator.
//!
//! A [`Simulator`] runs packets through a switch topology with
//! destination-based forwarding, per-switch loop detection, routing-loop
//! injection (poisoned forwarding entries), TTLs, optional fault
//! injection, and a choice of reaction policy when a loop is reported:
//! drop-and-report, or the paper's envisioned *active rerouting* onto a
//! backup port (§2 "real-time detection enables … active rerouting",
//! §6's PURR-style fast reroute).
//!
//! The simulator is generic over any [`InPacketDetector`], so Unroller,
//! INT, the Bloom filter, PathDump, the ablation variants — or
//! [`NullDetector`] (no detection, the status quo where only the TTL
//! saves you) — all run through identical machinery.

use crate::event::{EventQueue, SimTime};
use crate::trace::{Trace, TraceEvent};
use rand::Rng;
use rand::SeedableRng;
use std::collections::HashMap;
use unroller_core::profile::{Category, DetectorProfile, OverheadLevel};
use unroller_core::{InPacketDetector, SwitchId, Verdict};
use unroller_topology::{Graph, NodeId};

/// Reaction when a switch reports a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectAction {
    /// Drop the packet and count a report (the controller would be
    /// notified).
    DropAndReport,
    /// Forward onto a precomputed backup next hop (fast reroute) and
    /// reset the packet's detection state.
    Reroute,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Propagation delay per link.
    pub link_latency_ns: SimTime,
    /// Pipeline delay per switch.
    pub switch_latency_ns: SimTime,
    /// Serialization time per packet per link (0 disables queueing).
    /// When non-zero, each directed link transmits one packet at a time
    /// and later packets queue behind it — this is what lets looping
    /// traffic inflict the collateral delay on innocent flows that the
    /// paper's introduction cites (Hengartner et al.).
    pub link_serialization_ns: SimTime,
    /// Initial TTL stamped on packets.
    pub ttl: u8,
    /// Probability that a hop drops the packet (fault injection).
    pub drop_probability: f64,
    /// RNG seed (fault injection only; forwarding is deterministic).
    pub seed: u64,
    /// Loop reaction policy.
    pub on_detect: DetectAction,
    /// Whether to record a full event trace.
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_latency_ns: 1_000,
            switch_latency_ns: 500,
            link_serialization_ns: 0,
            ttl: 64,
            drop_probability: 0.0,
            seed: 0,
            on_detect: DetectAction::DropAndReport,
            trace: false,
        }
    }
}

/// One loop report raised during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopReport {
    /// When the report fired.
    pub time: SimTime,
    /// Reporting packet.
    pub packet: u64,
    /// Reporting switch.
    pub node: NodeId,
    /// The packet's hop count at the report.
    pub hop: u32,
}

/// Aggregate simulation statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Packets injected.
    pub sent: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Packets dropped by TTL expiry.
    pub dropped_ttl: u64,
    /// Packets dropped by the drop-and-report policy.
    pub dropped_loop: u64,
    /// Packets dropped by fault injection.
    pub dropped_fault: u64,
    /// Packets dropped for lack of a route.
    pub dropped_no_route: u64,
    /// Successful backup-port reroutes.
    pub rerouted: u64,
    /// Total switch hops processed.
    pub total_hops: u64,
    /// Every loop report, in order.
    pub reports: Vec<LoopReport>,
    /// Packets carried per directed link `(from, to)` — the collateral
    /// view: loops inflate the load on every link they share with
    /// innocent traffic (the Hengartner et al. observation the paper's
    /// introduction cites).
    pub link_loads: std::collections::HashMap<(NodeId, NodeId), u64>,
    /// Source-to-delivery latency of every delivered packet, in
    /// delivery order. With link serialization enabled this exposes the
    /// queueing delay looping traffic inflicts on innocent flows.
    pub delivery_latencies: Vec<SimTime>,
}

impl SimStats {
    /// Mean delivery latency (ns) over delivered packets, or `0.0` when
    /// nothing was delivered (never `NaN` — report consumers divide and
    /// serialize this value, and a `0/0 = NaN` here would poison every
    /// downstream aggregate).
    pub fn mean_latency(&self) -> f64 {
        if self.delivery_latencies.is_empty() {
            return 0.0;
        }
        self.delivery_latencies.iter().sum::<u64>() as f64 / self.delivery_latencies.len() as f64
    }

    /// Worst (tail) delivery latency in ns.
    pub fn max_latency(&self) -> SimTime {
        self.delivery_latencies.iter().copied().max().unwrap_or(0)
    }

    /// The load on the busiest directed link.
    pub fn max_link_load(&self) -> u64 {
        self.link_loads.values().copied().max().unwrap_or(0)
    }

    /// The load on one directed link.
    pub fn link_load(&self, from: NodeId, to: NodeId) -> u64 {
        self.link_loads.get(&(from, to)).copied().unwrap_or(0)
    }

    /// All packets are accounted for exactly once.
    pub fn accounted(&self) -> bool {
        self.sent
            == self.delivered
                + self.dropped_ttl
                + self.dropped_loop
                + self.dropped_fault
                + self.dropped_no_route
    }
}

/// A detector that never reports — the baseline where only the TTL
/// terminates looping packets.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullDetector;

impl InPacketDetector for NullDetector {
    type State = ();

    fn name(&self) -> &'static str {
        "null"
    }

    fn init_state(&self) {}

    fn on_switch(&self, _state: &mut (), _switch: SwitchId) -> Verdict {
        Verdict::Continue
    }

    fn overhead_bits(&self, _hops: u64) -> u64 {
        0
    }

    fn profile(&self) -> DetectorProfile {
        DetectorProfile {
            name: "None",
            category: Category::OnSwitchState,
            real_time: false,
            switch_overhead: OverheadLevel::Low,
            network_overhead: OverheadLevel::Low,
        }
    }
}

struct Flight<S> {
    dst: NodeId,
    ttl: u8,
    hops: u32,
    state: S,
}

enum Event {
    Arrive { packet: u64, node: NodeId },
}

/// The discrete-event network simulator. See the module docs.
pub struct Simulator<D: InPacketDetector> {
    graph: Graph,
    ids: Vec<SwitchId>,
    detector: D,
    /// `fwd[dst][node]` = next hop from `node` toward `dst`.
    fwd: Vec<Vec<Option<NodeId>>>,
    /// `dist[dst][node]` = hop distance (for backup-port selection);
    /// computed from the *healthy* topology.
    dist: Vec<Vec<usize>>,
    cfg: SimConfig,
    queue: EventQueue<Event>,
    flights: HashMap<u64, Flight<D::State>>,
    next_packet: u64,
    now: SimTime,
    /// Aggregate statistics.
    pub stats: SimStats,
    /// Event trace (when enabled in [`SimConfig`]).
    pub trace: Trace,
    /// The packet-carried detector state at the moment of each loop
    /// report, in report order. This is how report *payloads* reach the
    /// controller — e.g. `unroller-control`'s localizing detector stores
    /// the collected loop membership in its state.
    pub reported_states: Vec<(u64, D::State)>,
    /// When each directed link finishes its current transmission (only
    /// tracked when `link_serialization_ns > 0`).
    link_free_at: HashMap<(NodeId, NodeId), SimTime>,
    /// Injection time per in-flight packet (for delivery latency).
    sent_at: HashMap<u64, SimTime>,
    rng: rand::rngs::StdRng,
}

impl<D: InPacketDetector> Simulator<D> {
    /// Builds a simulator over `graph` with per-node switch identifiers
    /// `ids` and shortest-path forwarding tables.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != graph.node_count()`.
    pub fn new(graph: Graph, ids: Vec<SwitchId>, detector: D, cfg: SimConfig) -> Self {
        assert_eq!(ids.len(), graph.node_count(), "one ID per switch");
        let trace = Trace::new(cfg.trace);
        let rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x73696d);
        let mut sim = Simulator {
            fwd: Vec::new(),
            dist: Vec::new(),
            queue: EventQueue::new(),
            flights: HashMap::new(),
            reported_states: Vec::new(),
            link_free_at: HashMap::new(),
            sent_at: HashMap::new(),
            next_packet: 0,
            now: 0,
            stats: SimStats::default(),
            trace,
            rng,
            graph,
            ids,
            detector,
            cfg,
        };
        sim.recompute_all_routes();
        sim
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The provisioned switch identifiers (`ids()[node]` is `node`'s
    /// switch ID). The `unroller-engine` traffic adapter uses this to
    /// translate replayed node paths into the switch-ID streams its
    /// per-shard pipelines process.
    pub fn ids(&self) -> &[SwitchId] {
        &self.ids
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Recomputes every forwarding table from the healthy topology
    /// (clearing any injected loops).
    pub fn recompute_all_routes(&mut self) {
        let n = self.graph.node_count();
        self.fwd = (0..n).map(|dst| self.routes_toward(dst)).collect();
        self.dist = (0..n).map(|dst| self.graph.bfs_distances(dst)).collect();
    }

    fn routes_toward(&self, dst: NodeId) -> Vec<Option<NodeId>> {
        let dist = self.graph.bfs_distances(dst);
        (0..self.graph.node_count())
            .map(|node| {
                if node == dst || dist[node] == usize::MAX {
                    return None;
                }
                self.graph
                    .neighbors(node)
                    .iter()
                    .copied()
                    .find(|&nb| dist[nb] + 1 == dist[node])
            })
            .collect()
    }

    /// Installs a complete per-destination forwarding column (e.g. one
    /// produced by a routing-protocol simulation such as
    /// `unroller-control`'s distance-vector implementation).
    ///
    /// # Panics
    ///
    /// Panics if the column's length differs from the node count or any
    /// entry names a non-adjacent next hop.
    pub fn set_routes(&mut self, dst: NodeId, column: Vec<Option<NodeId>>) {
        assert_eq!(column.len(), self.graph.node_count());
        for (node, &next) in column.iter().enumerate() {
            if let Some(next) = next {
                assert!(
                    self.graph.has_edge(node, next),
                    "route {node}->{next} is not a link"
                );
            }
        }
        self.fwd[dst] = column;
    }

    /// The installed forwarding column toward `dst` (`column[node]` =
    /// next hop), including any poisoned entries — the authoritative
    /// state a static forwarding checker verifies.
    pub fn forwarding(&self, dst: NodeId) -> &[Option<NodeId>] {
        &self.fwd[dst]
    }

    /// The route a packet from `src` to `dst` currently takes, following
    /// the forwarding tables (including any poisoned entries) until
    /// delivery, a missing entry, or a node repeats (i.e. the route
    /// loops — the returned vector then ends at the first repeated
    /// node's second occurrence).
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut route = vec![src];
        let mut seen = vec![false; self.graph.node_count()];
        seen[src] = true;
        let mut cur = src;
        while cur != dst {
            let Some(next) = self.fwd[dst][cur] else {
                break;
            };
            route.push(next);
            if seen[next] {
                break; // routing loop
            }
            seen[next] = true;
            cur = next;
        }
        route
    }

    /// Overrides one forwarding entry: packets for `dst` arriving at
    /// `node` now go to `next`. This is how routing loops are injected —
    /// the misconfiguration/route-instability event the paper motivates
    /// with.
    ///
    /// # Panics
    ///
    /// Panics if `next` is not a neighbor of `node`.
    pub fn poison_route(&mut self, node: NodeId, dst: NodeId, next: NodeId) {
        assert!(
            self.graph.has_edge(node, next),
            "poisoned next hop must be an adjacent switch"
        );
        self.fwd[dst][node] = Some(next);
    }

    /// Injects a forwarding cycle for `dst`: each `cycle[i]` forwards to
    /// `cycle[i+1]` (wrapping), so any packet for `dst` touching the
    /// cycle circulates until detected or TTL-dropped.
    pub fn inject_cycle(&mut self, cycle: &[NodeId], dst: NodeId) {
        assert!(
            cycle.len() >= 2,
            "a routing loop needs at least two switches"
        );
        for i in 0..cycle.len() {
            let next = cycle[(i + 1) % cycle.len()];
            self.poison_route(cycle[i], dst, next);
        }
    }

    /// Sends a packet from the host on `src` to the host on `dst` at
    /// absolute time `at`.
    pub fn send_packet(&mut self, at: SimTime, src: NodeId, dst: NodeId) -> u64 {
        let packet = self.next_packet;
        self.next_packet += 1;
        self.stats.sent += 1;
        self.flights.insert(
            packet,
            Flight {
                dst,
                ttl: self.cfg.ttl,
                hops: 0,
                state: self.detector.init_state(),
            },
        );
        self.sent_at.insert(packet, at);
        self.trace.record(at, packet, TraceEvent::Sent { src, dst });
        self.queue.push(at, Event::Arrive { packet, node: src });
        packet
    }

    /// Runs until the event queue drains (or `max_events` fire) and
    /// returns the statistics.
    pub fn run(&mut self) -> &SimStats {
        self.run_until(SimTime::MAX, u64::MAX)
    }

    /// Runs until simulated time `deadline` or `max_events` events.
    pub fn run_until(&mut self, deadline: SimTime, max_events: u64) -> &SimStats {
        let mut fired = 0;
        while fired < max_events {
            let Some((time, event)) = self.queue.pop_before(deadline) else {
                break;
            };
            self.now = time;
            match event {
                Event::Arrive { packet, node } => self.arrive(packet, node),
            }
            fired += 1;
        }
        &self.stats
    }

    fn arrive(&mut self, packet: u64, node: NodeId) {
        let Some(mut flight) = self.flights.remove(&packet) else {
            return; // already terminated
        };
        flight.hops += 1;
        self.stats.total_hops += 1;
        self.trace.record(
            self.now,
            packet,
            TraceEvent::Hop {
                node,
                hop: flight.hops,
            },
        );

        // The ingress pipeline runs the detector.
        if self
            .detector
            .on_switch(&mut flight.state, self.ids[node])
            .reported()
        {
            self.stats.reports.push(LoopReport {
                time: self.now,
                packet,
                node,
                hop: flight.hops,
            });
            self.reported_states.push((packet, flight.state.clone()));
            self.trace.record(
                self.now,
                packet,
                TraceEvent::LoopDetected {
                    node,
                    hop: flight.hops,
                },
            );
            match self.cfg.on_detect {
                DetectAction::DropAndReport => {
                    self.stats.dropped_loop += 1;
                    self.trace
                        .record(self.now, packet, TraceEvent::DroppedLoop { node });
                    return;
                }
                DetectAction::Reroute => {
                    if let Some(backup) = self.backup_next_hop(node, flight.dst) {
                        self.stats.rerouted += 1;
                        self.detector.reset_state(&mut flight.state);
                        self.trace.record(
                            self.now,
                            packet,
                            TraceEvent::Rerouted { node, via: backup },
                        );
                        self.forward(packet, flight, node, Some(backup));
                        return;
                    }
                    // No backup port: fall back to dropping.
                    self.stats.dropped_loop += 1;
                    self.trace
                        .record(self.now, packet, TraceEvent::DroppedLoop { node });
                    return;
                }
            }
        }

        if node == flight.dst {
            self.stats.delivered += 1;
            if let Some(sent) = self.sent_at.remove(&packet) {
                self.stats.delivery_latencies.push(self.now - sent);
            }
            self.trace
                .record(self.now, packet, TraceEvent::Delivered { node });
            return;
        }

        self.forward(packet, flight, node, None);
    }

    fn forward(
        &mut self,
        packet: u64,
        mut flight: Flight<D::State>,
        node: NodeId,
        via: Option<NodeId>,
    ) {
        // TTL check before egress.
        if flight.ttl <= 1 {
            self.stats.dropped_ttl += 1;
            self.trace
                .record(self.now, packet, TraceEvent::DroppedTtl { node });
            return;
        }
        flight.ttl -= 1;

        // Fault injection on the egress link.
        if self.cfg.drop_probability > 0.0 && self.rng.gen_bool(self.cfg.drop_probability) {
            self.stats.dropped_fault += 1;
            self.trace
                .record(self.now, packet, TraceEvent::DroppedFault { node });
            return;
        }

        let next = via.or(self.fwd[flight.dst][node]);
        let Some(next) = next else {
            self.stats.dropped_no_route += 1;
            self.trace
                .record(self.now, packet, TraceEvent::DroppedNoRoute { node });
            return;
        };
        *self.stats.link_loads.entry((node, next)).or_insert(0) += 1;
        // Switch pipeline, then (optionally) queue behind the link's
        // current transmission, serialize, then propagate.
        let ready = self.now + self.cfg.switch_latency_ns;
        let at = if self.cfg.link_serialization_ns > 0 {
            let free = self.link_free_at.entry((node, next)).or_insert(0);
            let start_tx = ready.max(*free);
            let end_tx = start_tx + self.cfg.link_serialization_ns;
            *free = end_tx;
            end_tx + self.cfg.link_latency_ns
        } else {
            ready + self.cfg.link_latency_ns
        };
        self.flights.insert(packet, flight);
        self.queue.push(at, Event::Arrive { packet, node: next });
    }

    /// The backup next hop for fast reroute: the neighbor with the best
    /// healthy-topology distance to `dst`, excluding the (possibly
    /// poisoned) primary entry. Precomputable per (node, dst) pair, as a
    /// PURR-style backup table would be.
    fn backup_next_hop(&self, node: NodeId, dst: NodeId) -> Option<NodeId> {
        let primary = self.fwd[dst][node];
        self.graph
            .neighbors(node)
            .iter()
            .copied()
            .filter(|&nb| Some(nb) != primary)
            .min_by_key(|&nb| self.dist[dst][nb])
            .filter(|&nb| self.dist[dst][nb] != usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unroller_core::{Unroller, UnrollerParams};
    use unroller_topology::generators::{grid, ring};
    use unroller_topology::ids::assign_sequential_ids;

    fn unroller() -> Unroller {
        Unroller::from_params(UnrollerParams::default()).unwrap()
    }

    fn line(n: usize) -> Graph {
        grid(n, 1)
    }

    #[test]
    fn delivers_along_shortest_path() {
        let g = line(5);
        let ids = assign_sequential_ids(5, 100);
        let mut sim = Simulator::new(
            g,
            ids,
            unroller(),
            SimConfig {
                trace: true,
                ..SimConfig::default()
            },
        );
        sim.send_packet(0, 0, 4);
        let stats = sim.run().clone();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.total_hops, 5); // processed by all 5 switches
        assert!(stats.accounted());
        assert!(stats.reports.is_empty());
        // Timing: 4 links + 4 switch traversals after the first arrival.
        assert_eq!(sim.now(), 4 * 1_500);
    }

    #[test]
    fn mean_latency_with_zero_delivered_is_zero_not_nan() {
        // Regression: a run where every packet is dropped (here: all
        // trapped in a loop with no detector) must report a mean
        // latency of 0.0, not 0/0 = NaN.
        let fresh = SimStats::default();
        assert_eq!(fresh.mean_latency(), 0.0);
        assert!(!fresh.mean_latency().is_nan());

        let g = line(5);
        let ids = assign_sequential_ids(5, 100);
        let mut sim = Simulator::new(g, ids, NullDetector, SimConfig::default());
        sim.inject_cycle(&[1, 2], 4);
        sim.send_packet(0, 0, 4);
        let stats = sim.run();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.mean_latency(), 0.0);
        assert!(!stats.mean_latency().is_nan());
        assert_eq!(stats.max_latency(), 0);
    }

    #[test]
    fn ids_accessor_exposes_provisioned_ids() {
        let g = line(3);
        let ids = assign_sequential_ids(3, 7);
        let sim = Simulator::new(g, ids.clone(), NullDetector, SimConfig::default());
        assert_eq!(sim.ids(), &ids[..]);
    }

    #[test]
    fn injected_pingpong_is_detected_and_dropped() {
        let g = line(5);
        let ids = assign_sequential_ids(5, 100);
        let mut sim = Simulator::new(g, ids, unroller(), SimConfig::default());
        // Poison: node 2 sends dst-4 traffic back to 1, and 1 to 2.
        sim.inject_cycle(&[1, 2], 4);
        sim.send_packet(0, 0, 4);
        let stats = sim.run();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dropped_loop, 1);
        assert_eq!(stats.reports.len(), 1);
        let report = &stats.reports[0];
        // B = 1 (node 0), L = 2 (nodes 1, 2): Unroller (b = 4) must
        // report within the worst-case bound, well before the TTL.
        assert!(report.hop <= 15, "report at hop {}", report.hop);
        assert!(stats.accounted());
    }

    #[test]
    fn without_detector_only_ttl_saves_you() {
        let g = line(5);
        let ids = assign_sequential_ids(5, 100);
        let mut sim = Simulator::new(
            g,
            ids,
            NullDetector,
            SimConfig {
                ttl: 32,
                ..SimConfig::default()
            },
        );
        sim.inject_cycle(&[1, 2], 4);
        sim.send_packet(0, 0, 4);
        let stats = sim.run();
        assert_eq!(stats.dropped_ttl, 1);
        assert_eq!(stats.delivered, 0);
        // The packet burned its entire TTL in the loop.
        assert_eq!(stats.total_hops, 32);
    }

    #[test]
    fn reroute_policy_rescues_the_packet() {
        // Diamond: 0–1–3 and 0–2–3. Loop injected between 0 and 1 for
        // dst 3; detection at a looped switch reroutes onto the 2-side.
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 3);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        let ids = assign_sequential_ids(4, 50);
        let mut sim = Simulator::new(
            g,
            ids,
            unroller(),
            SimConfig {
                on_detect: DetectAction::Reroute,
                trace: true,
                ..SimConfig::default()
            },
        );
        sim.inject_cycle(&[0, 1], 3);
        sim.send_packet(0, 0, 3);
        let stats = sim.run().clone();
        assert_eq!(stats.delivered, 1, "{}", sim.trace.dump());
        assert!(stats.rerouted >= 1);
        assert!(stats.accounted());
    }

    #[test]
    fn fault_injection_drops_packets() {
        let g = ring(8);
        let ids = assign_sequential_ids(8, 10);
        let mut sim = Simulator::new(
            g,
            ids,
            unroller(),
            SimConfig {
                drop_probability: 0.5,
                seed: 3,
                ..SimConfig::default()
            },
        );
        for i in 0..100 {
            sim.send_packet(i * 10, 0, 4);
        }
        let stats = sim.run();
        assert!(stats.dropped_fault > 10, "{}", stats.dropped_fault);
        assert!(stats.delivered > 0);
        assert!(stats.accounted());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let g = ring(10);
            let ids = assign_sequential_ids(10, 1);
            let mut sim = Simulator::new(
                g,
                ids,
                unroller(),
                SimConfig {
                    drop_probability: 0.3,
                    seed: 42,
                    ..SimConfig::default()
                },
            );
            sim.inject_cycle(&[2, 3], 7);
            for i in 0..50 {
                sim.send_packet(i * 100, 0, 7);
            }
            sim.run().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn heal_restores_delivery() {
        let g = line(4);
        let ids = assign_sequential_ids(4, 9);
        let mut sim = Simulator::new(g, ids, unroller(), SimConfig::default());
        sim.inject_cycle(&[1, 2], 3);
        sim.send_packet(0, 0, 3);
        sim.run();
        assert_eq!(sim.stats.dropped_loop, 1);
        // Heal and resend.
        sim.recompute_all_routes();
        sim.send_packet(1_000_000, 0, 3);
        sim.run();
        assert_eq!(sim.stats.delivered, 1);
    }

    #[test]
    fn run_until_respects_deadline() {
        let g = line(10);
        let ids = assign_sequential_ids(10, 9);
        let mut sim = Simulator::new(g, ids, NullDetector, SimConfig::default());
        sim.send_packet(0, 0, 9);
        sim.run_until(2_000, u64::MAX);
        assert_eq!(sim.stats.delivered, 0, "packet still in flight");
        sim.run();
        assert_eq!(sim.stats.delivered, 1);
    }

    #[test]
    fn serialization_queues_packets_on_shared_links() {
        // Two packets injected simultaneously share every link of a
        // line: with serialization the second queues behind the first.
        let g = line(3);
        let ids = assign_sequential_ids(3, 1);
        let cfg = SimConfig {
            link_serialization_ns: 400,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(g, ids, NullDetector, cfg);
        sim.send_packet(0, 0, 2);
        sim.send_packet(0, 0, 2);
        let stats = sim.run().clone();
        assert_eq!(stats.delivered, 2);
        let (a, b) = (stats.delivery_latencies[0], stats.delivery_latencies[1]);
        // First packet: 2 × (switch 500 + tx 400 + prop 1000) = 3800.
        assert_eq!(a, 3_800);
        // The second queues one serialization slot behind the first on
        // the first link and then stays pipelined exactly one slot
        // behind (store-and-forward keeps the gap constant).
        assert_eq!(b, a + 400);
        assert_eq!(stats.max_latency(), b);
        assert!(stats.mean_latency() > a as f64);
    }

    #[test]
    fn looping_traffic_delays_innocent_flows() {
        // The Hengartner effect: traffic trapped in a loop that shares a
        // link with an innocent flow inflates that flow's latency.
        // Topology: 0-1-2-3 line plus 4-1 and 5-... we use a line where
        // the innocent flow 0→3 crosses the looped segment 1↔2.
        let g = line(4);
        let ids = assign_sequential_ids(4, 9);
        let cfg = SimConfig {
            link_serialization_ns: 400,
            ttl: 40,
            ..SimConfig::default()
        };
        // Baseline: innocent flow alone.
        let mut clean = Simulator::new(g.clone(), ids.clone(), NullDetector, cfg.clone());
        clean.send_packet(10_000, 0, 3);
        let clean_latency = clean.run().delivery_latencies[0];

        // Now trap a burst of packets for a *different* destination in a
        // 1↔2 ping-pong (dst-0 entries at nodes 1 and 2 poisoned) so the
        // shared 1→2 link stays busy, then send the innocent flow.
        let mut loopy = Simulator::new(g.clone(), ids.clone(), NullDetector, cfg);
        loopy.inject_cycle(&[1, 2], 0);
        for i in 0..8 {
            loopy.send_packet(i * 100, 3, 0); // all trapped
        }
        loopy.send_packet(10_000, 0, 3); // innocent
        let stats = loopy.run().clone();
        assert_eq!(stats.delivered, 1, "only the innocent packet arrives");
        assert_eq!(stats.dropped_ttl, 8, "trapped packets burn their TTL");
        let loopy_latency = stats.delivery_latencies[0];
        assert!(
            loopy_latency > clean_latency,
            "loop must delay the crossing flow: {loopy_latency} vs {clean_latency}"
        );
    }

    #[test]
    fn link_loads_show_loop_collateral() {
        // A loop between switches 1 and 2 hammers the shared link far
        // beyond what delivered traffic would.
        let g = line(5);
        let ids = assign_sequential_ids(5, 100);
        let mut healthy =
            Simulator::new(g.clone(), ids.clone(), NullDetector, SimConfig::default());
        healthy.send_packet(0, 0, 4);
        let healthy_load = healthy.run().link_load(1, 2);
        assert_eq!(healthy_load, 1);

        let mut looped = Simulator::new(
            g,
            ids,
            NullDetector,
            SimConfig {
                ttl: 64,
                ..SimConfig::default()
            },
        );
        looped.inject_cycle(&[1, 2], 4);
        looped.send_packet(0, 0, 4);
        let stats = looped.run();
        assert!(
            stats.link_load(1, 2) > 20,
            "loop should hammer the 1->2 link, got {}",
            stats.link_load(1, 2)
        );
        assert!(stats.max_link_load() >= stats.link_load(1, 2));
    }

    #[test]
    fn set_routes_installs_custom_column() {
        // A diamond; send dst-3 traffic the long way around via 2.
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 3);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        let ids = assign_sequential_ids(4, 5);
        let mut sim = Simulator::new(
            g,
            ids,
            NullDetector,
            SimConfig {
                trace: true,
                ..SimConfig::default()
            },
        );
        sim.set_routes(3, vec![Some(2), Some(3), Some(3), None]);
        assert_eq!(sim.route(0, 3), vec![0, 2, 3]);
        sim.send_packet(0, 0, 3);
        assert_eq!(sim.run().delivered, 1);
    }

    #[test]
    #[should_panic(expected = "not a link")]
    fn set_routes_rejects_non_adjacent_next_hop() {
        let g = line(4);
        let ids = assign_sequential_ids(4, 5);
        let mut sim = Simulator::new(g, ids, NullDetector, SimConfig::default());
        sim.set_routes(3, vec![Some(2), None, None, None]); // 0-2 not a link
    }

    #[test]
    fn unreachable_destination_counts_no_route() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1); // node 2 isolated
        let ids = assign_sequential_ids(3, 9);
        let mut sim = Simulator::new(g, ids, NullDetector, SimConfig::default());
        sim.send_packet(0, 0, 2);
        let stats = sim.run();
        assert_eq!(stats.dropped_no_route, 1);
        assert!(stats.accounted());
    }
}
