//! Per-packet event tracing — the simulator's tcpdump.
//!
//! Every observable packet event is appended to a [`Trace`]; examples
//! and tests use it to assert *why* a packet ended the way it did, and
//! [`Trace::dump`] renders a human-readable log in the spirit of the
//! smoltcp examples' `--pcap` option.

use crate::event::SimTime;
use unroller_topology::NodeId;

/// One traced packet event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The packet left its source host toward the first switch.
    Sent {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// The packet was processed by a switch (its `hop`-th switch).
    Hop {
        /// Switch node.
        node: NodeId,
        /// 1-based hop count.
        hop: u32,
    },
    /// The switch reported a routing loop.
    LoopDetected {
        /// Reporting switch.
        node: NodeId,
        /// Hop at which the report fired.
        hop: u32,
    },
    /// The packet was rerouted onto a backup port after a loop report.
    Rerouted {
        /// Rerouting switch.
        node: NodeId,
        /// The backup next hop taken.
        via: NodeId,
    },
    /// The packet reached its destination.
    Delivered {
        /// Destination node.
        node: NodeId,
    },
    /// Dropped: TTL reached zero.
    DroppedTtl {
        /// Node where the TTL expired.
        node: NodeId,
    },
    /// Dropped: loop reported and the policy is drop-and-report.
    DroppedLoop {
        /// Reporting switch.
        node: NodeId,
    },
    /// Dropped: injected link fault.
    DroppedFault {
        /// Node whose egress dropped the packet.
        node: NodeId,
    },
    /// Dropped: no route toward the destination.
    DroppedNoRoute {
        /// Node with no forwarding entry.
        node: NodeId,
    },
}

/// One trace record: time, packet, event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Simulated time of the event.
    pub time: SimTime,
    /// Packet identifier.
    pub packet: u64,
    /// What happened.
    pub event: TraceEvent,
}

/// An append-only event log.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    enabled: bool,
}

impl Trace {
    /// Creates a trace; when `enabled` is false all records are
    /// discarded (for multi-million-packet experiment runs).
    pub fn new(enabled: bool) -> Self {
        Trace {
            entries: Vec::new(),
            enabled,
        }
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, time: SimTime, packet: u64, event: TraceEvent) {
        if self.enabled {
            self.entries.push(TraceEntry {
                time,
                packet,
                event,
            });
        }
    }

    /// All recorded entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries concerning one packet.
    pub fn for_packet(&self, packet: u64) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.packet == packet)
    }

    /// Renders the log (one line per event).
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let _ = write!(out, "[{:>10} ns] pkt {:>4}  ", e.time, e.packet);
            let _ = match &e.event {
                TraceEvent::Sent { src, dst } => writeln!(out, "sent {src} -> {dst}"),
                TraceEvent::Hop { node, hop } => writeln!(out, "hop {hop} at switch {node}"),
                TraceEvent::LoopDetected { node, hop } => {
                    writeln!(out, "LOOP reported by switch {node} at hop {hop}")
                }
                TraceEvent::Rerouted { node, via } => {
                    writeln!(out, "rerouted at switch {node} via {via}")
                }
                TraceEvent::Delivered { node } => writeln!(out, "delivered at {node}"),
                TraceEvent::DroppedTtl { node } => writeln!(out, "dropped at {node} (TTL)"),
                TraceEvent::DroppedLoop { node } => {
                    writeln!(out, "dropped at {node} (loop policy)")
                }
                TraceEvent::DroppedFault { node } => {
                    writeln!(out, "dropped at {node} (fault injection)")
                }
                TraceEvent::DroppedNoRoute { node } => {
                    writeln!(out, "dropped at {node} (no route)")
                }
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_when_enabled() {
        let mut t = Trace::new(true);
        t.record(5, 1, TraceEvent::Sent { src: 0, dst: 3 });
        t.record(10, 1, TraceEvent::Hop { node: 1, hop: 1 });
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.for_packet(1).count(), 2);
        assert_eq!(t.for_packet(2).count(), 0);
    }

    #[test]
    fn disabled_trace_discards() {
        let mut t = Trace::new(false);
        t.record(5, 1, TraceEvent::Delivered { node: 3 });
        assert!(t.entries().is_empty());
    }

    #[test]
    fn dump_is_line_per_event() {
        let mut t = Trace::new(true);
        t.record(5, 1, TraceEvent::Sent { src: 0, dst: 3 });
        t.record(9, 1, TraceEvent::LoopDetected { node: 2, hop: 7 });
        let dump = t.dump();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("LOOP reported by switch 2"));
    }
}
