//! The discrete-event core: a time-ordered event queue.
//!
//! Events fire in non-decreasing timestamp order; ties break by
//! insertion sequence, which makes every simulation run fully
//! deterministic for a given seed and schedule.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// A deterministic time-ordered queue of events of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    payloads: std::collections::HashMap<u64, E>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((time, seq)));
        self.payloads.insert(seq, event);
    }

    /// Pops the earliest event (FIFO among equal timestamps).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((time, seq)) = self.heap.pop()?;
        let event = self.payloads.remove(&seq).expect("payload tracked");
        Some((time, event))
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(7, ());
        q.push(3, ());
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.len(), 2);
    }
}
