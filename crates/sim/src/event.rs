//! The discrete-event core: a time-ordered event queue.
//!
//! Events fire in non-decreasing timestamp order; ties break by
//! insertion sequence, which makes every simulation run fully
//! deterministic for a given seed and schedule.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// A deterministic time-ordered queue of events of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    payloads: std::collections::HashMap<u64, E>,
    seq: u64,
    orphaned: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            seq: 0,
            orphaned: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((time, seq)));
        self.payloads.insert(seq, event);
    }

    /// Pops the earliest event (FIFO among equal timestamps).
    ///
    /// A heap entry whose payload has already been taken — a duplicated
    /// delivery, which fault injection can produce — is skipped (and
    /// counted in [`EventQueue::orphaned_count`]) rather than panicking;
    /// this used to be an `expect("payload tracked")`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let Reverse((time, seq)) = self.heap.pop()?;
            match self.payloads.remove(&seq) {
                Some(event) => return Some((time, event)),
                None => self.orphaned += 1,
            }
        }
    }

    /// Pops the earliest event at or before `deadline`, skipping
    /// orphaned heap entries the same way [`EventQueue::pop`] does.
    /// Returns `None` (leaving the queue intact) once the next live
    /// event is past the deadline.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        loop {
            let &Reverse((time, seq)) = self.heap.peek()?;
            if time > deadline {
                return None;
            }
            self.heap.pop();
            match self.payloads.remove(&seq) {
                Some(event) => return Some((time, event)),
                None => self.orphaned += 1,
            }
        }
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _))| *t)
    }

    /// How many duplicated heap entries (entries whose payload had
    /// already been delivered) have been skipped so far.
    pub fn orphaned_count(&self) -> u64 {
        self.orphaned
    }

    /// Number of pending events (live payloads, not heap entries —
    /// orphaned duplicates don't count).
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn duplicated_delivery_is_skipped_not_panicked() {
        // Regression: a heap entry whose payload was already delivered
        // (the desync fault injection can produce) used to hit
        // `expect("payload tracked")`. It must be skipped and counted.
        let mut q = EventQueue::new();
        q.push(10, "a");
        q.push(20, "b");
        // Duplicate seq 0's heap entry, as a double-delivery would.
        q.heap.push(Reverse((10, 0)));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")), "orphan skipped, not panicked");
        assert_eq!(q.orphaned_count(), 1);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(10, "a");
        q.push(30, "b");
        assert_eq!(q.pop_before(20), Some((10, "a")));
        assert_eq!(q.pop_before(20), None, "next event is past the deadline");
        assert_eq!(q.len(), 1, "deadline miss leaves the queue intact");
        assert_eq!(q.pop_before(30), Some((30, "b")));
        assert_eq!(q.pop_before(u64::MAX), None);
    }

    #[test]
    fn pop_before_skips_orphans_without_overshooting() {
        let mut q = EventQueue::new();
        q.push(10, "a");
        q.push(40, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        // Re-inject seq 0 as an orphan ahead of the deadline; the live
        // event behind it is past the deadline and must stay queued.
        q.heap.push(Reverse((10, 0)));
        assert_eq!(q.pop_before(20), None);
        assert_eq!(q.orphaned_count(), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(40), Some((40, "b")));
    }

    #[test]
    fn len_counts_live_events_not_heap_entries() {
        let mut q = EventQueue::new();
        q.push(5, ());
        q.heap.push(Reverse((5, 0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(7, ());
        q.push(3, ());
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.len(), 2);
    }
}
