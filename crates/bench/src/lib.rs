//! Criterion benchmarks for the Unroller workspace.
//!
//! See `benches/`: `detectors` (per-hop cost), `dataplane_throughput`
//! (Table 4 Mpps analogue), `figures` (figure-point kernels), `table5`
//! (bit-search kernels), and `ablation` (design-choice comparisons).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
