//! Benchmarks of the Table 5 kernels: scenario sampling on each
//! evaluation topology and the zero-false-positive bit search for one
//! topology at reduced run counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use unroller_experiments::table5::{
    bloom_min_bits, sample_bl_pool, unroller_min_bits, Table5Config,
};
use unroller_topology::zoo;

fn bench_scenario_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_scenario_pool");
    group.sample_size(10);
    for topo in zoo::table5_topologies() {
        group.bench_with_input(
            BenchmarkId::from_parameter(topo.name),
            &topo,
            |bench, topo| bench.iter(|| black_box(sample_bl_pool(topo, 256, 1))),
        );
    }
    group.finish();
}

fn bench_bit_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_bit_search");
    group.sample_size(10);
    let cfg = Table5Config {
        runs: 2_000,
        scenario_pool: 256,
        seed: 1,
        threads: 1,
    };
    let topo = zoo::stanford();
    let pool = sample_bl_pool(&topo, cfg.scenario_pool, cfg.seed);
    group.bench_function("unroller_min_bits_stanford", |b| {
        b.iter(|| black_box(unroller_min_bits(&pool, &cfg)))
    });
    group.bench_function("bloom_min_bits_stanford", |b| {
        b.iter(|| black_box(bloom_min_bits(&pool, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_scenario_sampling, bench_bit_search);
criterion_main!(benches);
