//! Ablation benchmarks for the design choices DESIGN.md §8 calls out:
//! phase-schedule cost, hash-family cost, and the LUT vs bitwise phase
//! check.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use unroller_core::hashing::{HashFamily, HashKind};
use unroller_core::phase::PhaseSchedule;
use unroller_core::walk::{run_detector_with, Walk};
use unroller_core::{InPacketDetector, Unroller, UnrollerParams};

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    let mut rng = unroller_core::test_rng(3);
    let walk = Walk::random(5, 20, &mut rng);
    for (name, schedule) in [
        ("power_boundary", PhaseSchedule::PowerBoundary),
        ("cumulative_geometric", PhaseSchedule::CumulativeGeometric),
    ] {
        let det = Unroller::from_params(UnrollerParams::default().with_schedule(schedule)).unwrap();
        let mut st = det.init_state();
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_detector_with(&det, &walk, 1 << 20, &mut st)))
        });
    }
    group.finish();
}

fn bench_hash_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_family");
    group.throughput(Throughput::Elements(1));
    for kind in [
        HashKind::Identity,
        HashKind::MultiplyShift,
        HashKind::SplitMix,
        HashKind::Tabulation,
    ] {
        let fam = HashFamily::new(kind, 4, 7);
        let mut x = 0u32;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &fam,
            |b, fam| {
                b.iter(|| {
                    x = x.wrapping_add(0x9e37_79b9);
                    black_box(fam.hash((x as usize) & 3, black_box(x)))
                })
            },
        );
    }
    group.finish();
}

fn bench_phase_position(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_position");
    group.throughput(Throughput::Elements(1));
    // Direct computation vs the 256-entry LUT the dataplane uses.
    let schedule = PhaseSchedule::PowerBoundary;
    let mut x = 1u64;
    group.bench_function("direct_b4", |b| {
        b.iter(|| {
            x = x % 250 + 1;
            black_box(schedule.position(black_box(x), 4, 1))
        })
    });
    let table = schedule.phase_start_table(4, 256);
    let mut y = 1usize;
    group.bench_function("lut_b4", |b| {
        b.iter(|| {
            y = y % 250 + 1;
            black_box(table[black_box(y)])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_schedules,
    bench_hash_families,
    bench_phase_position
);
criterion_main!(benches);
