//! Per-hop processing cost of every detector, plus full-walk detection
//! cost. This is the software analogue of the paper's "can the switch
//! keep up at line rate" question: the per-hop work is what a pipeline
//! stage must finish per packet.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use unroller_baselines::{BloomFilterDetector, IntPathRecorder};
use unroller_core::walk::{run_detector_with, Walk};
use unroller_core::{InPacketDetector, Unroller, UnrollerParams};

fn bench_per_hop(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_hop");
    group.throughput(Throughput::Elements(1));

    let mut rng = unroller_core::test_rng(1);
    let walk = Walk::random(5, 20, &mut rng);
    let hops: Vec<u32> = (1..=64u64).map(|h| walk.switch_at(h).unwrap()).collect();

    let configs = [
        ("unroller_default", UnrollerParams::default()),
        ("unroller_z8", UnrollerParams::default().with_z(8)),
        (
            "unroller_c4h4",
            UnrollerParams::default().with_c(4).with_h(4).with_z(8),
        ),
        (
            "unroller_th4",
            UnrollerParams::default().with_z(7).with_th(4),
        ),
    ];
    for (name, params) in configs {
        let det = Unroller::from_params(params).unwrap();
        let mut st = det.init_state();
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                if i.is_multiple_of(hops.len()) {
                    det.reset_state(&mut st);
                }
                let v = det.on_switch(&mut st, black_box(hops[i % hops.len()]));
                i += 1;
                black_box(v)
            })
        });
    }

    let bloom = BloomFilterDetector::new(608, 3, 7);
    let mut st = bloom.init_state();
    let mut i = 0usize;
    group.bench_function("bloom_608b", |b| {
        b.iter(|| {
            if i.is_multiple_of(hops.len()) {
                bloom.reset_state(&mut st);
            }
            let v = bloom.on_switch(&mut st, black_box(hops[i % hops.len()]));
            i += 1;
            black_box(v)
        })
    });

    let int = IntPathRecorder::new();
    let mut st = int.init_state();
    let mut i = 0usize;
    group.bench_function("int_full_path", |b| {
        b.iter(|| {
            if i.is_multiple_of(hops.len()) {
                int.reset_state(&mut st);
            }
            let v = int.on_switch(&mut st, black_box(hops[i % hops.len()]));
            i += 1;
            black_box(v)
        })
    });

    group.finish();
}

fn bench_full_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_detection");
    let mut rng = unroller_core::test_rng(2);
    for l in [5usize, 20, 50] {
        let walk = Walk::random(5, l, &mut rng);
        let det = Unroller::from_params(UnrollerParams::default()).unwrap();
        let mut st = det.init_state();
        group.bench_with_input(BenchmarkId::new("unroller_b4", l), &walk, |b, w| {
            b.iter(|| black_box(run_detector_with(&det, w, 1 << 20, &mut st)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_per_hop, bench_full_detection);
criterion_main!(benches);
