//! End-to-end simulator throughput: events per second through the
//! discrete-event engine with Unroller running at every switch, on both
//! healthy and looping forwarding state. Tracks the cost of the whole
//! substrate (event queue + forwarding + detection + stats).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use unroller_core::{Unroller, UnrollerParams};
use unroller_sim::{SimConfig, Simulator};
use unroller_topology::generators::fat_tree;
use unroller_topology::ids::assign_sequential_ids;
use unroller_topology::zoo;

fn bench_healthy_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_healthy");
    group.sample_size(20);
    for topo in [zoo::geant(), zoo::fattree4()] {
        let n = topo.graph.node_count();
        let ids = assign_sequential_ids(n, 1);
        let det = Unroller::from_params(UnrollerParams::default()).unwrap();
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(
            BenchmarkId::new("64_packets", topo.name),
            &topo,
            |b, topo| {
                b.iter(|| {
                    let mut sim = Simulator::new(
                        topo.graph.clone(),
                        ids.clone(),
                        det.clone(),
                        SimConfig::default(),
                    );
                    for i in 0..64u64 {
                        sim.send_packet(i * 100, (i as usize) % n, (i as usize + n / 2) % n);
                    }
                    black_box(sim.run().delivered)
                })
            },
        );
    }
    group.finish();
}

fn bench_looping_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_looping");
    group.sample_size(20);
    let fabric = fat_tree(4);
    let n = fabric.graph.node_count();
    let ids = assign_sequential_ids(n, 1);
    let det = Unroller::from_params(UnrollerParams::default()).unwrap();
    let agg = fabric.graph.neighbors(0)[0];
    group.throughput(Throughput::Elements(64));
    group.bench_function("fattree_64_trapped_packets", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                fabric.graph.clone(),
                ids.clone(),
                det.clone(),
                SimConfig::default(),
            );
            sim.inject_cycle(&[0, agg], 19);
            for i in 0..64u64 {
                sim.send_packet(i * 100, 0, 19);
            }
            black_box(sim.run().reports.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_healthy_delivery, bench_looping_detection);
criterion_main!(benches);
