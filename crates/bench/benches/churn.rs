//! The live-churn benchmark: detection recall and detection latency
//! versus update-storm rate.
//!
//! Workload: the sharded engine processes a fixed packet stream while a
//! distance-vector control plane fails and heals links underneath it
//! (see `unroller-engine`'s `ChurnSource`). Each recompiled route set
//! is published as a new epoch-table generation and swapped under the
//! workers mid-traffic, so count-to-infinity micro-loops form and heal
//! *while frames are in flight*. The storm is replayed at several rates
//! (control-plane events per million packets); per rate the benchmark
//! reports
//!
//! * `recall` — detected trapped flows over the ever-trapped flow set
//!   the live [`FwdChecker`] oracle accumulated (must be 1.0: the
//!   engine asserts the oracle mirror stayed bit-for-bit in sync with
//!   the authoritative columns, so a miss is a real miss);
//! * `detect_latency_ns` — swap-publish → first loop event on that
//!   generation, per (shard, generation), merged across shards;
//! * realized control-plane throughput (rule deltas and generations
//!   published per second of wall time).
//!
//! Output is JSON (schema in `results/README.md`):
//!
//! ```text
//! cargo bench -p unroller-bench --bench churn -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the stream for CI; the committed baseline
//! `results/BENCH_churn.json` is a full run (1M packets per rate).

use unroller_engine::{
    ChurnPlan, ChurnSource, Engine, EngineConfig, FullPolicy, HistogramSnapshot, Json,
};
use unroller_topology::generators::ring;

struct RateRun {
    row: Json,
    recall: f64,
    latency: Option<HistogramSnapshot>,
}

/// One full engine run at `rate` events per million packets.
fn run_rate(rate: u64, packets: u64, flows: usize, seed: u64) -> RateRun {
    let plan = ChurnPlan {
        rate,
        seed,
        links: 3,
    };
    let graph = ring(16);
    let ids: Vec<u32> = (0..16).map(|i| 100 + i).collect();
    let mut source = ChurnSource::new(graph, &plan, flows, packets);
    let table = source.table();
    // Block (not drop) on full rings: recall is only meaningful if
    // every offered packet is actually processed. A small ring keeps
    // the in-flight backlog well under one churn interval, so packets
    // emitted while a flow is trapped are processed while it still is.
    let engine = Engine::new(
        EngineConfig {
            shards: 2,
            ring_capacity: 256,
            full_policy: FullPolicy::Block,
            ..EngineConfig::default()
        },
        &ids,
    )
    .expect("engine config");
    let report = engine.run(&mut source).expect("churn run completes");
    assert!(report.accounted(), "accounting must hold");
    source
        .oracle_check()
        .expect("live oracle must match the control plane");

    let trapped = source.looping_flow_keys();
    let detected: std::collections::HashSet<_> =
        report.aggregator.events.iter().map(|e| e.flow).collect();
    let hits = trapped.iter().filter(|f| detected.contains(f)).count();
    let recall = if trapped.is_empty() {
        1.0
    } else {
        hits as f64 / trapped.len() as f64
    };

    let loops_after_swap: u64 = report
        .shard_snapshots
        .iter()
        .map(|s| s.loops_after_swap)
        .sum();
    let mut latency: Option<HistogramSnapshot> = None;
    for snap in &report.shard_snapshots {
        match &mut latency {
            None => latency = Some(snap.detect_latency_ns.clone()),
            Some(merged) => merged.merge(&snap.detect_latency_ns),
        }
    }

    let wall_s = report.wall_ns as f64 / 1e9;
    let mut row = Json::object();
    row.set("rate_per_million", Json::UInt(rate));
    row.set("interval_packets", Json::UInt(plan.interval()));
    row.set("packets", Json::UInt(packets));
    row.set("wall_ns", Json::UInt(report.wall_ns));
    row.set("pps", Json::Float(packets as f64 / wall_s));
    row.set(
        "generations_published",
        Json::UInt(source.generations_published()),
    );
    row.set("rules_applied", Json::UInt(source.rules_applied()));
    row.set(
        "updates_per_sec_realized",
        Json::Float(source.rules_applied() as f64 / wall_s),
    );
    row.set("links_failed", Json::UInt(source.links_failed()));
    row.set("trapped_flows", Json::UInt(trapped.len() as u64));
    row.set("detected_trapped_flows", Json::UInt(hits as u64));
    row.set("recall", Json::Float(recall));
    row.set("loops_after_swap", Json::UInt(loops_after_swap));
    row.set("generations_reclaimed", Json::UInt(table.reclaimed()));
    if let Some(l) = &latency {
        row.set("detect_latency_ns", l.to_json());
    }
    RateRun {
        row,
        recall,
        latency,
    }
}

fn main() {
    let mut quick = false;
    let mut out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_churn.json"
    )
    .to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("churn: --out requires an argument");
                    std::process::exit(2);
                })
            }
            "--bench" | "--test" => {}
            other => {
                eprintln!("churn: unknown argument `{other}` (--quick, --out PATH)");
                std::process::exit(2);
            }
        }
    }

    let (packets, rates): (u64, &[u64]) = if quick {
        (150_000, &[200, 800])
    } else {
        (1_000_000, &[100, 400, 1000])
    };
    let flows = 32;

    let mut rows = Vec::new();
    let mut recall_min = 1.0f64;
    for &rate in rates {
        eprintln!("churn: rate {rate}/Mpkt over {packets} packets...");
        let run = run_rate(rate, packets, flows, 7);
        let (count, mean, p99) = run
            .latency
            .as_ref()
            .map(|l| (l.count, l.mean(), l.quantile_bound(0.99)))
            .unwrap_or((0, 0.0, 0));
        eprintln!(
            "  recall={:.3} detect_latency mean={:.0}ns p99<={}ns over {} generations",
            run.recall, mean, p99, count,
        );
        recall_min = recall_min.min(run.recall);
        rows.push(run.row);
    }

    let mut config = Json::object();
    config.set("topology", Json::Str("ring:16".to_string()));
    config.set("flows", Json::UInt(flows as u64));
    config.set("shards", Json::UInt(2));
    config.set("ring_capacity", Json::UInt(256));
    config.set("policy", Json::Str("block".to_string()));
    config.set("links", Json::UInt(3));
    config.set("seed", Json::UInt(7));

    let mut summary = Json::object();
    summary.set("recall_min", Json::Float(recall_min));

    let mut root = Json::object();
    root.set("bench", Json::Str("churn".to_string()));
    root.set("quick", Json::Bool(quick));
    root.set("config", config);
    root.set("rates", Json::Array(rows));
    root.set("summary", summary);
    let rendered = root.render_pretty();

    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out, &rendered).expect("write benchmark output");
    eprintln!("wrote {out}");
    assert!(
        recall_min >= 1.0,
        "live-churn recall degraded: {recall_min}"
    );
    eprintln!("churn: recall 1.0 at every rate");
}
