//! The Table 4 throughput analogue: packets per second through the
//! dataplane pipeline model (the paper reports ~220 Mpps on Xilinx /
//! ~190 Mpps on Intel FPGAs, i.e. > 100 Gbps for minimum-sized frames).
//!
//! `header_only` measures the control block alone (the work the
//! synthesized logic does); `full_frame` adds parse + deparse of the
//! bit-packed shim, in both its allocating (decode → struct → encode)
//! and zero-copy in-place forms. Criterion reports ns/packet — invert
//! for Mpps. `benches/hotpath.rs` measures the same three paths into
//! the machine-readable `results/BENCH_hotpath.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use unroller_core::params::UnrollerParams;
use unroller_dataplane::header::{HeaderLayout, WireHeader};
use unroller_dataplane::parser::{build_frame, EthernetHeader};
use unroller_dataplane::pipeline::UnrollerPipeline;

fn bench_header_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataplane_header_only");
    group.throughput(Throughput::Elements(1));
    for (name, params) in [
        ("default_b4", UnrollerParams::default()),
        ("z7_th4", UnrollerParams::default().with_z(7).with_th(4)),
        (
            "c2h2_z8",
            UnrollerParams::default().with_c(2).with_h(2).with_z(8),
        ),
        ("b3_lut", UnrollerParams::default().with_b(3)),
    ] {
        let layout = HeaderLayout::from_params(&params);
        let pipes: Vec<UnrollerPipeline> = (0..16u32)
            .map(|i| UnrollerPipeline::new(0x1000 + i, params).unwrap())
            .collect();
        let mut hdr = WireHeader::initial(&layout);
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                if i.is_multiple_of(64) {
                    hdr = WireHeader::initial(&layout);
                }
                let v = pipes[i % pipes.len()].process_header(black_box(&mut hdr));
                i += 1;
                black_box(v)
            })
        });
    }
    group.finish();
}

fn bench_full_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataplane_full_frame");
    group.throughput(Throughput::Elements(1));
    let params = UnrollerParams::default();
    let layout = HeaderLayout::from_params(&params);
    // Minimum-sized Ethernet payload (64-byte frame total).
    let payload = vec![0u8; 64usize.saturating_sub(14 + layout.total_bytes())];
    let eth = EthernetHeader::for_hosts(1, 2);
    let template = build_frame(&layout, &eth, &WireHeader::initial(&layout), &payload);
    let pipes: Vec<UnrollerPipeline> = (0..16u32)
        .map(|i| UnrollerPipeline::new(0x2000 + i, params).unwrap())
        .collect();
    let mut frame = template.clone();
    let mut i = 0usize;
    group.bench_function("min_sized_frame", |b| {
        b.iter(|| {
            if i.is_multiple_of(64) {
                frame.copy_from_slice(&template);
            }
            let v = pipes[i % pipes.len()]
                .process_frame(black_box(&mut frame))
                .unwrap();
            i += 1;
            black_box(v)
        })
    });
    let mut frame = template.clone();
    let mut i = 0usize;
    group.bench_function("min_sized_frame_in_place", |b| {
        b.iter(|| {
            if i.is_multiple_of(64) {
                frame.copy_from_slice(&template);
            }
            let v = pipes[i % pipes.len()]
                .process_frame_in_place(black_box(&mut frame))
                .unwrap();
            i += 1;
            black_box(v)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_header_only, bench_full_frame);
criterion_main!(benches);
