//! Engine-runtime benchmarks: batched pipeline processing and the
//! sharded runtime end to end at 1 / 2 / 4 shards.
//!
//! On a host with fewer cores than shards the end-to-end wall numbers
//! time-share (see `results/engine_scaling.json` for the CPU-time
//! capacity view); the batch benchmarks below are single-threaded and
//! portable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use unroller_core::UnrollerParams;
use unroller_dataplane::parser::build_frame;
use unroller_dataplane::{HeaderLayout, UnrollerPipeline, WireHeader};
use unroller_engine::{Engine, EngineConfig, FullPolicy, SyntheticSource};

const BATCH: usize = 64;

/// `process_batch` vs per-header dispatch on one switch pipeline.
fn bench_batch_processing(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batch");
    group.throughput(Throughput::Elements(BATCH as u64));
    let params = UnrollerParams::default();
    let layout = HeaderLayout::from_params(&params);
    let pipeline = UnrollerPipeline::new(42, params).unwrap();
    let template: Vec<WireHeader> = (0..BATCH)
        .map(|i| {
            let mut hdr = WireHeader::initial(&layout);
            hdr.xcnt = (i % 200) as u8;
            hdr
        })
        .collect();

    group.bench_function("per_header", |b| {
        let mut batch = template.clone();
        b.iter(|| {
            let mut reported = 0u32;
            for hdr in batch.iter_mut() {
                if pipeline.process_header(hdr).reported() {
                    reported += 1;
                }
            }
            black_box(reported)
        })
    });
    group.bench_function("process_batch", |b| {
        let mut batch = template.clone();
        let mut verdicts = Vec::with_capacity(BATCH);
        b.iter(|| {
            verdicts.clear();
            pipeline.process_batch(&mut batch, &mut verdicts);
            black_box(verdicts.len())
        })
    });
    // The same batch as wire frames through the zero-copy path.
    let frame_template: Vec<Vec<u8>> = template
        .iter()
        .map(|hdr| {
            build_frame(
                &layout,
                &unroller_dataplane::EthernetHeader::for_hosts(1, 2),
                hdr,
                &[0u8; 46],
            )
        })
        .collect();
    group.bench_function("frame_batch_in_place", |b| {
        let mut frames = frame_template.clone();
        let mut verdicts = Vec::with_capacity(BATCH);
        b.iter(|| {
            verdicts.clear();
            pipeline.process_frame_batch_in_place(&mut frames, &mut verdicts);
            black_box(verdicts.len())
        })
    });
    group.finish();
}

/// The full runtime — dispatcher, rings, workers, aggregator — over a
/// synthetic stream, across shard counts.
fn bench_engine_shards(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    const PACKETS: u64 = 20_000;
    group.throughput(Throughput::Elements(PACKETS));
    group.sample_size(10);
    let ids: Vec<u32> = (0..64).map(|i| 100 + i).collect();
    for shards in [1usize, 2, 4] {
        let engine = Engine::new(
            EngineConfig {
                shards,
                full_policy: FullPolicy::Block,
                ..EngineConfig::default()
            },
            &ids,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(shards), &engine, |b, engine| {
            b.iter(|| {
                // Every 8th of 32 flows loops from packet 5000 on.
                let mut source = SyntheticSource::new(64, 32, PACKETS, 8, 5_000, 17);
                black_box(engine.run(&mut source).expect("fault-free run").processed())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_processing, bench_engine_shards);
criterion_main!(benches);
