//! The streaming-analytics benchmark: events/sec and peak RSS for
//! `unroller-analytics`' pipeline over a synthetically generated
//! multi-million-event loop-event log.
//!
//! The workload is written to disk first (a multi-run JSONL log in the
//! engine's `--events-out` format: headers across several epochs,
//! events drawing cycles from a pool — rotated per event to exercise
//! canonical deduplication — and flows from a wide pair space to
//! exercise the bounded observed/top-k structures), then streamed
//! through [`unroller_analytics::Pipeline`].
//!
//! Memory-boundedness is measured, not assumed: the process streams a
//! small log, records `VmHWM` from `/proc/self/status`, then streams a
//! log 10× larger and records `VmHWM` again. A streaming pipeline's
//! peak is set by its bounded state, not input size, so the ratio must
//! stay ≈ 1; the committed gate is < 1.5.
//!
//! ```text
//! cargo bench -p unroller-bench --bench analytics -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the event counts for CI's smoke job; the committed
//! baseline `results/BENCH_analytics.json` is a full run (2M events in
//! the large log).

use rand::{Rng, SeedableRng};
use std::io::Write;
use std::time::Instant;
use unroller_analytics::Pipeline;
use unroller_engine::eventlog::{event_line, RunMeta};
use unroller_engine::{FlowKey, Json, LoopEvent};

/// Peak resident set (kB) from `/proc/self/status`, 0 if unavailable.
fn vmhwm_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Writes a multi-run synthetic event log: `events` records spread
/// over `runs` headers (epochs cycle 0..4), cycles drawn from a pool
/// of `cycles` distinct loops and rotated per event. Each run offers a
/// fixed population of `FLOWS_PER_RUN` flows (as the engine does —
/// `--flows` fixes the population regardless of packet count) and each
/// flow loops in one cycle, so a larger log means more *events*, not
/// more distinct state.
const FLOWS_PER_RUN: u64 = 1024;

fn generate_log(path: &str, events: u64, runs: u64, cycles: usize, seed: u64) {
    let nodes = 64u32;
    let id_base = 100u32;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // A pool of distinct cycles, lengths 2..=6, members unique per cycle.
    let pool: Vec<Vec<u32>> = (0..cycles)
        .map(|i| {
            let len = 2 + i % 5;
            let start = (i * 7) as u32 % nodes;
            (0..len as u32)
                .map(|j| id_base + (start + j * 3) % nodes)
                .collect()
        })
        .collect();
    let mut out = std::io::BufWriter::new(std::fs::File::create(path).expect("create log"));
    let per_run = events / runs.max(1);
    for run in 0..runs {
        let meta = RunMeta {
            run_id: format!("bench-run-{run}"),
            seed: seed ^ run,
            topology: "ring:64".to_string(),
            nodes: nodes as usize,
            flows: FLOWS_PER_RUN as usize,
            packets: per_run * 10,
            shards: 4,
            epoch: run % 4,
            id_base,
            injection: None,
        };
        writeln!(out, "{}", meta.header_line()).expect("write header");
        for i in 0..per_run {
            let flow_id = rng.gen_range(0..FLOWS_PER_RUN);
            let cycle = &pool[(flow_id as usize) % pool.len()];
            // Rotate so dedup work (canonicalization) is on the hot path.
            let rot = rng.gen_range(0..cycle.len());
            let mut members = cycle[rot..].to_vec();
            members.extend_from_slice(&cycle[..rot]);
            let src = (flow_id as u32) % nodes;
            let dst = (src + 1 + (flow_id as u32 / nodes) % (nodes - 1)) % nodes;
            let ev = LoopEvent {
                flow: FlowKey::synthetic(src, dst, (flow_id % 16) as u32),
                seq: i,
                shard: (i % 4) as usize,
                trigger: members[0],
                hop: 8 + (i % 23) as u32,
                members,
                complete: true,
            };
            writeln!(out, "{}", event_line(&ev, run % 4)).expect("write event");
        }
    }
    out.flush().expect("flush log");
}

/// Streams one log through a fresh pipeline; returns (elapsed seconds,
/// events ingested, loops deduped).
fn stream(path: &str) -> (f64, u64, usize) {
    let mut pipeline = Pipeline::new();
    let start = Instant::now();
    pipeline
        .ingest_event_log(path)
        .expect("stream the synthetic log");
    let secs = start.elapsed().as_secs_f64();
    (secs, pipeline.stats.events, pipeline.store.len())
}

fn main() {
    let mut quick = false;
    let mut out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_analytics.json"
    )
    .to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("analytics: --out requires an argument");
                    std::process::exit(2);
                })
            }
            "--bench" | "--test" => {}
            other => {
                eprintln!("analytics: unknown argument `{other}` (--quick, --out PATH)");
                std::process::exit(2);
            }
        }
    }

    // Small log for the RSS baseline, large log (10×) for the headline
    // rate — the full large log is ≥ 2M events per the roadmap target.
    let (small_events, large_events) = if quick {
        (30_000u64, 300_000u64)
    } else {
        (200_000u64, 2_000_000u64)
    };
    let cycles = 64;
    let dir = std::env::temp_dir().join("unroller-analytics-bench");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let small_path = dir.join("small.jsonl");
    let large_path = dir.join("large.jsonl");
    let small_path = small_path.to_str().expect("utf-8 temp path");
    let large_path = large_path.to_str().expect("utf-8 temp path");

    eprintln!("analytics: generating {small_events} + {large_events} event logs...");
    // Same run/cycle/flow structure in both logs — only the event count
    // differs, so any RSS growth would be input-size dependence.
    generate_log(small_path, small_events, 8, cycles, 17);
    generate_log(large_path, large_events, 8, cycles, 17);
    let large_bytes = std::fs::metadata(large_path).expect("stat large log").len();

    eprintln!("analytics: streaming small log ({small_events} events)...");
    let (small_secs, small_seen, small_loops) = stream(small_path);
    assert_eq!(small_seen, small_events, "every generated event ingested");
    let hwm_small = vmhwm_kb();

    eprintln!("analytics: streaming large log ({large_events} events)...");
    let (large_secs, large_seen, large_loops) = stream(large_path);
    assert_eq!(large_seen, large_events, "every generated event ingested");
    let hwm_large = vmhwm_kb();

    assert_eq!(
        small_loops, cycles,
        "rotated observations must dedupe to the cycle pool"
    );
    assert_eq!(large_loops, cycles);

    let events_per_sec = large_events as f64 / large_secs;
    let rss_ratio = if hwm_small > 0 {
        hwm_large as f64 / hwm_small as f64
    } else {
        0.0
    };
    eprintln!(
        "analytics: {events_per_sec:.0} events/s over {large_events} events \
         ({:.1} MB log in {large_secs:.2}s); VmHWM {hwm_small} kB -> {hwm_large} kB \
         (x{rss_ratio:.2} for 10x the input)",
        large_bytes as f64 / 1e6,
    );
    if hwm_small > 0 {
        assert!(
            rss_ratio < 1.5,
            "peak RSS must be independent of input size (got x{rss_ratio:.2})"
        );
    }

    let mut workload = Json::object();
    workload.set("small_events", Json::UInt(small_events));
    workload.set("large_events", Json::UInt(large_events));
    workload.set("large_log_bytes", Json::UInt(large_bytes));
    workload.set("distinct_cycles", Json::UInt(cycles as u64));
    workload.set("runs_in_large_log", Json::UInt(8));

    let mut timing = Json::object();
    timing.set("small_secs", Json::Float(small_secs));
    timing.set("large_secs", Json::Float(large_secs));
    timing.set("events_per_sec", Json::Float(events_per_sec));
    timing.set(
        "mb_per_sec",
        Json::Float(large_bytes as f64 / 1e6 / large_secs),
    );

    let mut memory = Json::object();
    memory.set("vmhwm_small_kb", Json::UInt(hwm_small));
    memory.set("vmhwm_large_kb", Json::UInt(hwm_large));
    memory.set("rss_ratio_10x_input", Json::Float(rss_ratio));

    let mut root = Json::object();
    root.set("bench", Json::Str("analytics".to_string()));
    root.set("quick", Json::Bool(quick));
    root.set("workload", workload);
    root.set("timing", timing);
    root.set("memory", memory);
    root.set("loops_deduped", Json::UInt(large_loops as u64));
    let rendered = root.render_pretty();

    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out, &rendered).expect("write benchmark output");
    eprintln!("wrote {out}");

    let _ = std::fs::remove_file(small_path);
    let _ = std::fs::remove_file(large_path);
}
