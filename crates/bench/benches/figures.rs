//! Benchmarks of the figure-regeneration kernels: the cost of producing
//! one data point of each sensitivity figure (Figures 2–7) at a reduced
//! run count. The actual figure *values* come from the experiment
//! binaries (`cargo run --release -p unroller-experiments --bin fig2`
//! etc.); these benches track how expensive regeneration is and catch
//! performance regressions in the hot detection loop.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use unroller_core::UnrollerParams;
use unroller_experiments::false_positives::false_positive_rate;
use unroller_experiments::sweeps::{avg_detection_ratio, SweepConfig};

fn cfg() -> SweepConfig {
    SweepConfig {
        runs: 2_000,
        seed: 1,
        threads: 1, // benches measure single-thread kernel cost
        max_hops: 1 << 20,
    }
}

fn bench_detection_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_point");
    group.sample_size(10);
    let cfg = cfg();

    // Figure 2 kernel: one (b, L) point.
    for b in [2u32, 4, 6] {
        group.bench_with_input(BenchmarkId::new("fig2_L20", b), &b, |bench, &b| {
            let params = UnrollerParams::default().with_b(b);
            bench.iter(|| black_box(avg_detection_ratio(params, 5, 20, &cfg)))
        });
    }

    // Figure 4 kernel: chunked/multi-hash configurations.
    for (cc, h) in [(1u32, 1u32), (2, 2), (4, 4)] {
        group.bench_with_input(
            BenchmarkId::new("fig4_L20", format!("c{cc}h{h}")),
            &(cc, h),
            |bench, &(cc, h)| {
                let params = UnrollerParams::default().with_c(cc).with_h(h);
                bench.iter(|| black_box(avg_detection_ratio(params, 5, 20, &cfg)))
            },
        );
    }

    // Figure 7 kernel: threshold configurations.
    for th in [1u32, 2, 4] {
        group.bench_with_input(BenchmarkId::new("fig7_L20", th), &th, |bench, &th| {
            let params = UnrollerParams::default().with_th(th);
            bench.iter(|| black_box(avg_detection_ratio(params, 5, 20, &cfg)))
        });
    }

    group.finish();
}

fn bench_fp_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure6_point");
    group.sample_size(10);
    let cfg = cfg();
    for z in [4u32, 8, 12] {
        group.bench_with_input(BenchmarkId::new("fp_rate", z), &z, |bench, &z| {
            let params = UnrollerParams::default().with_z(z);
            bench.iter(|| black_box(false_positive_rate(params, 20, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detection_points, bench_fp_points);
criterion_main!(benches);
