//! The wire-frame hot-path baseline: a machine-readable benchmark
//! comparing the three ways a packet moves through the Unroller control
//! block, plus the sharded engine end to end on the zero-copy path.
//!
//! Paths measured (single-threaded, default parameters, 64-byte
//! frames, 16 distinct switch pipelines round-robined so the walk
//! resembles a real multi-hop journey):
//!
//! * `struct_path` — [`UnrollerPipeline::process_header`] on a decoded
//!   [`WireHeader`]: the control block alone, no wire format in sight.
//! * `frame_alloc_path` — [`UnrollerPipeline::process_frame`]: parse
//!   the shim out of the frame bytes into a struct (allocating its
//!   `swids` vector), process, re-encode.
//! * `frame_in_place_path` — [`UnrollerPipeline::process_frame_in_place`]:
//!   read and rewrite shim bits directly in the frame buffer, no
//!   decode, no allocation.
//!
//! The engine section replays an identically-seeded synthetic stream
//! through the full runtime (dispatcher → rings → workers →
//! aggregator) per shard count; workers use the in-place path on
//! reusable scratch frames.
//!
//! Output is JSON (written with [`unroller_engine::Json`], schema
//! documented in `results/README.md`):
//!
//! ```text
//! cargo bench -p unroller-bench --bench hotpath -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks iteration counts for CI smoke runs; the committed
//! baseline `results/BENCH_hotpath.json` is a full run. CI's
//! `bench-smoke` job asserts the output parses and that the in-place
//! path is not slower than the allocating frame path.

use std::hint::black_box;
use std::time::Instant;
use unroller_core::UnrollerParams;
use unroller_dataplane::header::{HeaderLayout, WireHeader};
use unroller_dataplane::parser::build_frame;
use unroller_dataplane::{EthernetHeader, UnrollerPipeline};
use unroller_engine::{Engine, EngineConfig, FullPolicy, Json, SyntheticSource};

const SWITCHES: u32 = 16;
/// Reset the walked header/frame to its initial state every this many
/// hops, bounding `thcnt` growth the way a real TTL-bounded walk does.
const RESET_EVERY: usize = 64;

struct PathStats {
    ns_per_hop: f64,
    headers_per_sec: f64,
}

impl PathStats {
    fn from_total(total_ns: u128, iters: u64) -> Self {
        let ns_per_hop = total_ns as f64 / iters as f64;
        PathStats {
            ns_per_hop,
            headers_per_sec: 1.0e9 / ns_per_hop,
        }
    }

    fn to_json(&self, iters: u64) -> Json {
        let mut obj = Json::object();
        obj.set("iters", Json::UInt(iters));
        obj.set("ns_per_hop", Json::Float(self.ns_per_hop));
        obj.set("headers_per_sec", Json::Float(self.headers_per_sec));
        obj
    }
}

/// Times `hop` for `iters` iterations after a small warmup, taking the
/// best of three samples to shave scheduler noise.
fn time_path(iters: u64, mut hop: impl FnMut(usize)) -> u128 {
    for i in 0..(iters / 10).max(1) as usize {
        hop(i);
    }
    let mut best = u128::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        for i in 0..iters as usize {
            hop(i);
        }
        best = best.min(start.elapsed().as_nanos());
    }
    best
}

fn bench_struct_path(pipes: &[UnrollerPipeline], layout: &HeaderLayout, iters: u64) -> PathStats {
    let mut hdr = WireHeader::initial(layout);
    let total = time_path(iters, |i| {
        if i % RESET_EVERY == 0 {
            hdr = WireHeader::initial(layout);
        }
        black_box(pipes[i % pipes.len()].process_header(black_box(&mut hdr)));
    });
    PathStats::from_total(total, iters)
}

fn bench_frame_alloc_path(pipes: &[UnrollerPipeline], template: &[u8], iters: u64) -> PathStats {
    let mut frame = template.to_vec();
    let total = time_path(iters, |i| {
        if i % RESET_EVERY == 0 {
            frame.copy_from_slice(template);
        }
        black_box(
            pipes[i % pipes.len()]
                .process_frame(black_box(&mut frame))
                .unwrap(),
        );
    });
    PathStats::from_total(total, iters)
}

fn bench_frame_in_place_path(pipes: &[UnrollerPipeline], template: &[u8], iters: u64) -> PathStats {
    let mut frame = template.to_vec();
    let total = time_path(iters, |i| {
        if i % RESET_EVERY == 0 {
            frame.copy_from_slice(template);
        }
        black_box(
            pipes[i % pipes.len()]
                .process_frame_in_place(black_box(&mut frame))
                .unwrap(),
        );
    });
    PathStats::from_total(total, iters)
}

fn bench_engine(shards: usize, packets: u64) -> Json {
    let ids: Vec<u32> = (0..64).map(|i| 100 + i).collect();
    let engine = Engine::new(
        EngineConfig {
            shards,
            full_policy: FullPolicy::Block,
            ..EngineConfig::default()
        },
        &ids,
    )
    .expect("engine config");
    // Identically-seeded stream per shard count; every 8th of 32 flows
    // loops from a quarter of the way in.
    let mut best_wall_ns = u64::MAX;
    let mut report = None;
    for _ in 0..3 {
        let mut source = SyntheticSource::new(64, 32, packets, 8, packets / 4, 17);
        let r = engine.run(&mut source).expect("fault-free run");
        assert!(r.accounted(), "engine accounting must balance");
        if r.wall_ns < best_wall_ns {
            best_wall_ns = r.wall_ns;
            report = Some(r);
        }
    }
    let report = report.expect("at least one run");
    let mut obj = Json::object();
    obj.set("shards", Json::UInt(shards as u64));
    obj.set("packets", Json::UInt(packets));
    obj.set("wall_pps", Json::Float(report.wall_pps()));
    obj.set(
        "ns_per_packet",
        Json::Float(best_wall_ns as f64 / packets as f64),
    );
    let hops: u64 = report.shard_snapshots.iter().map(|s| s.hops).sum();
    obj.set("hops", Json::UInt(hops));
    obj.set("loop_detected", Json::Bool(report.loop_detected()));
    obj
}

fn main() {
    let mut quick = false;
    // `cargo bench` runs with the crate as CWD; anchor the default at
    // the workspace root so the baseline lands in the tracked results/.
    let mut out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_hotpath.json"
    )
    .to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("hotpath: --out requires an argument");
                    std::process::exit(2);
                })
            }
            // `cargo bench` forwards its own flags (e.g. --bench).
            "--bench" | "--test" => {}
            other => {
                eprintln!("hotpath: unknown argument `{other}` (--quick, --out PATH)");
                std::process::exit(2);
            }
        }
    }

    let iters: u64 = if quick { 200_000 } else { 2_000_000 };
    let engine_packets: u64 = if quick { 20_000 } else { 200_000 };
    let shard_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };

    let params = UnrollerParams::default();
    let layout = HeaderLayout::from_params(&params);
    let pipes: Vec<UnrollerPipeline> = (0..SWITCHES)
        .map(|i| UnrollerPipeline::new(0x3000 + i, params).unwrap())
        .collect();
    let payload = vec![0u8; 64usize.saturating_sub(14 + layout.total_bytes())];
    let template = build_frame(
        &layout,
        &EthernetHeader::for_hosts(1, 2),
        &WireHeader::initial(&layout),
        &payload,
    );

    eprintln!("hotpath: timing dataplane paths ({iters} hops each)...");
    let struct_path = bench_struct_path(&pipes, &layout, iters);
    let alloc_path = bench_frame_alloc_path(&pipes, &template, iters);
    let in_place_path = bench_frame_in_place_path(&pipes, &template, iters);
    for (name, s) in [
        ("struct_path", &struct_path),
        ("frame_alloc_path", &alloc_path),
        ("frame_in_place_path", &in_place_path),
    ] {
        eprintln!(
            "  {name:<22} {:>8.2} ns/hop  {:>12.0} headers/s",
            s.ns_per_hop, s.headers_per_sec
        );
    }

    let mut engine_runs = Vec::new();
    for &shards in shard_counts {
        eprintln!("hotpath: engine end-to-end at {shards} shard(s) ({engine_packets} packets)...");
        engine_runs.push(bench_engine(shards, engine_packets));
    }

    let mut dataplane = Json::object();
    dataplane.set("struct_path", struct_path.to_json(iters));
    dataplane.set("frame_alloc_path", alloc_path.to_json(iters));
    dataplane.set("frame_in_place_path", in_place_path.to_json(iters));

    let mut root = Json::object();
    root.set("bench", Json::Str("hotpath".to_string()));
    root.set("quick", Json::Bool(quick));
    root.set("frame_len", Json::UInt(template.len() as u64));
    root.set("switch_pipelines", Json::UInt(SWITCHES as u64));
    root.set("params", Json::Str(params.to_string()));
    root.set("dataplane", dataplane);
    let mut engine_obj = Json::object();
    engine_obj.set("runs", Json::Array(engine_runs));
    root.set("engine", engine_obj);
    let rendered = root.render_pretty();

    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out, &rendered).expect("write benchmark output");
    eprintln!("wrote {out}");

    let speedup = alloc_path.ns_per_hop / in_place_path.ns_per_hop;
    eprintln!("hotpath: in-place is {speedup:.2}x the allocating frame path");
}
