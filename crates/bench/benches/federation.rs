//! The federation chaos benchmark: cross-domain loop localization
//! recall and convergence latency as bus/controller fault rates scale
//! from fault-free to 4× the baseline plan plus controller crashes.
//!
//! Each level replays the same end-to-end scenario (fat-tree:4 split
//! into 4 contiguous domains, a cross-domain forwarding cycle injected
//! mid-stream, data-plane detection by the sharded engine, per-domain
//! digest federation over the faulty bus) across several seeds, with
//! the fault plan scaled by the level's multiplier and — at every
//! faulted level — seeded controller crash/restart windows on top.
//!
//! Committed gates, re-checked by CI's `federation-smoke` job:
//! * recall vs the forwarding-state oracle stays 1.0 at every level
//!   (the robustness invariant: nothing is silently dropped, and the
//!   step budget is enough to absorb 4× chaos), and
//! * engine packet accounting and bus message conservation balance in
//!   every run.
//!
//! ```text
//! cargo bench -p unroller-bench --bench federation -- [--quick] [--out PATH]
//! ```

use std::time::Instant;
use unroller_engine::Json;
use unroller_federation::{run_scenario, BusFaults, ScenarioConfig};

/// Baseline per-message fault rates; multipliers scale these.
const BASELINE: &str = "loss=0.05,dup=0.05,reorder=0.05,delay=0.05:4,partition=0.005:16";
/// Controller crash plan applied (scaled) at every faulted level. The
/// per-step rate is high because convergence is fast — a handful of
/// federation steps — and the chaos level must actually lose
/// controllers mid-exchange to prove the journal + resync path.
const CRASH: f64 = 0.02;
const CRASH_LEN: u64 = 12;
const CRASH_CAP: f64 = 0.08;

struct Level {
    mult: f64,
    runs: Vec<RunSample>,
    wall_secs: f64,
}

struct RunSample {
    seed: u64,
    recall: f64,
    converged_step: Option<u64>,
    steps: u64,
    crashes: u64,
    retransmits: u64,
    degraded: bool,
    unresolvable: usize,
    accounted: bool,
}

fn run_level(mult: f64, seeds: &[u64], quick: bool) -> Level {
    let start = Instant::now();
    let mut runs = Vec::new();
    for &seed in seeds {
        let mut faults = BusFaults::parse(&format!("seed={seed},{BASELINE}"))
            .expect("baseline plan parses")
            .scaled(mult);
        if mult > 0.0 {
            faults.crash = (CRASH * mult).min(CRASH_CAP);
            faults.crash_len = CRASH_LEN;
        }
        let cfg = ScenarioConfig {
            topology: "fat-tree:4".to_string(),
            domains: 4,
            flows: 16,
            packets: if quick { 6_000 } else { 12_000 },
            shards: 2,
            seed,
            faults,
            max_steps: 2_048,
        };
        let outcome = run_scenario(&cfg);
        assert!(
            outcome.engine.loop_detected(),
            "seed {seed}: traffic must hit the injected loop"
        );
        assert!(
            !outcome.oracle_cross.is_empty(),
            "seed {seed}: the injected cycle is cross-domain"
        );
        runs.push(RunSample {
            seed,
            recall: outcome.recall,
            converged_step: outcome.federation.converged_step,
            steps: outcome.federation.steps,
            crashes: outcome.federation.crashes,
            retransmits: outcome.controllers.iter().map(|s| s.retransmits).sum(),
            degraded: outcome.federation.degraded,
            unresolvable: outcome.federation.unresolvable.len(),
            accounted: outcome.accounted(),
        });
    }
    Level {
        mult,
        runs,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

fn level_json(level: &Level) -> Json {
    let n = level.runs.len() as f64;
    let recall_min = level.runs.iter().map(|r| r.recall).fold(f64::MAX, f64::min);
    let recall_mean = level.runs.iter().map(|r| r.recall).sum::<f64>() / n;
    let converged: Vec<u64> = level.runs.iter().filter_map(|r| r.converged_step).collect();
    let mut doc = Json::object();
    doc.set("fault_mult", Json::Float(level.mult))
        .set("runs", Json::UInt(level.runs.len() as u64))
        .set("recall_min", Json::Float(recall_min))
        .set("recall_mean", Json::Float(recall_mean))
        .set("converged_runs", Json::UInt(converged.len() as u64))
        .set(
            "convergence_steps_mean",
            if converged.is_empty() {
                Json::Null
            } else {
                Json::Float(converged.iter().sum::<u64>() as f64 / converged.len() as f64)
            },
        )
        .set(
            "convergence_steps_max",
            converged
                .iter()
                .max()
                .map_or(Json::Null, |&s| Json::UInt(s)),
        )
        .set(
            "steps_max",
            level
                .runs
                .iter()
                .map(|r| r.steps)
                .max()
                .map_or(Json::Null, Json::UInt),
        )
        .set(
            "crashes",
            Json::UInt(level.runs.iter().map(|r| r.crashes).sum()),
        )
        .set(
            "retransmits",
            Json::UInt(level.runs.iter().map(|r| r.retransmits).sum()),
        )
        .set(
            "degraded_runs",
            Json::UInt(level.runs.iter().filter(|r| r.degraded).count() as u64),
        )
        .set(
            "unresolvable",
            Json::UInt(level.runs.iter().map(|r| r.unresolvable as u64).sum()),
        )
        .set("wall_secs", Json::Float(level.wall_secs))
        .set(
            "seeds",
            Json::Array(level.runs.iter().map(|r| Json::UInt(r.seed)).collect()),
        );
    doc
}

fn main() {
    let mut quick = false;
    let mut out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_federation.json"
    )
    .to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("federation: --out requires an argument");
                    std::process::exit(2);
                })
            }
            "--bench" | "--test" => {}
            other => {
                eprintln!("federation: unknown argument `{other}` (--quick, --out PATH)");
                std::process::exit(2);
            }
        }
    }

    let seeds: Vec<u64> = if quick {
        vec![3, 11]
    } else {
        vec![3, 7, 11, 19, 23]
    };
    let mults = [0.0, 1.0, 2.0, 4.0];

    let mut levels = Vec::new();
    for &mult in &mults {
        eprintln!("federation: {}x faults over {} seeds...", mult, seeds.len());
        let level = run_level(mult, &seeds, quick);
        for run in &level.runs {
            assert!(
                run.accounted,
                "seed {} at {mult}x: accounting identities violated",
                run.seed
            );
        }
        levels.push(level);
    }

    // Committed gates: full recall at every level, including 4× chaos
    // with controller crashes, and the fault-free level converges in
    // every run.
    for level in &levels {
        let recall_min = level.runs.iter().map(|r| r.recall).fold(f64::MAX, f64::min);
        assert_eq!(
            recall_min, 1.0,
            "recall regression at {}x faults",
            level.mult
        );
    }
    assert!(
        levels[0].runs.iter().all(|r| r.converged_step.is_some()),
        "fault-free runs must converge"
    );
    let chaos = levels.last().expect("levels non-empty");
    assert!(
        chaos.runs.iter().map(|r| r.crashes).sum::<u64>() > 0,
        "the 4x level must actually crash controllers"
    );

    let mut root = Json::object();
    root.set("bench", Json::Str("federation".to_string()))
        .set("quick", Json::Bool(quick))
        .set("topology", Json::Str("fat-tree:4".to_string()))
        .set("domains", Json::UInt(4))
        .set("baseline_faults", Json::Str(BASELINE.to_string()))
        .set(
            "crash_plan",
            Json::Str(format!("crash={CRASH}:{CRASH_LEN} (scaled per level)")),
        )
        .set(
            "levels",
            Json::Array(levels.iter().map(level_json).collect()),
        )
        .set("gates", {
            let mut g = Json::object();
            g.set("recall_min", Json::Float(1.0))
                .set("accounting", Json::Bool(true));
            g
        });
    let rendered = root.render_pretty();
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out, &rendered).expect("write benchmark output");
    println!("{rendered}");
    eprintln!("federation: wrote {out}");
}
