//! The detect-vs-verify benchmark: what incremental forwarding-state
//! verification costs per rule update, against the two alternatives it
//! is measured between — full from-scratch recomputation (the
//! non-incremental static checker) and data-plane Unroller detection
//! (the paper's approach, which pays nothing per update but one loop
//! traversal per *packet* caught).
//!
//! Workload: a converged distance-vector process on a WAN-scale
//! topology is hit with update storms (S concurrent link failures,
//! rounds to re-convergence, then restoration) at several storm sizes.
//! Every emitted rule delta is recorded, then replayed twice over
//! identical starting state:
//!
//! * `incremental` — one timed [`FwdChecker::apply`] per delta
//!   (affected-set walk, `O(Σ degree(affected))`);
//! * `full_recompute` — one timed [`classify_column`] of the updated
//!   destination's column per delta (`O(n)` — what a checker without
//!   delta maintenance pays).
//!
//! After both passes the incremental state is cross-checked against
//! the final columns bit-for-bit, so the timing can't silently come
//! from a wrong answer. The data-plane side measures Unroller's
//! per-packet detection walk (ns per detection, hops to report) on
//! loops of several lengths.
//!
//! Output is JSON (schema in `results/README.md`):
//!
//! ```text
//! cargo bench -p unroller-bench --bench oracle -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the topology for CI's `oracle-smoke` job, which
//! asserts `summary.speedup_incremental_vs_full >= 1.0`; the committed
//! baseline `results/BENCH_oracle.json` is a full run on 1500 nodes,
//! where the gate is ≥ 10×.

use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;
use unroller_control::distvec::{DistanceVector, RuleDelta};
use unroller_core::prelude::*;
use unroller_core::walk::run_detector_with;
use unroller_engine::Json;
use unroller_topology::generators::wan_like;
use unroller_topology::{Graph, NodeId};
use unroller_verify::{classify_column, FwdChecker};

/// One update storm: fail `concurrent` links at once, run the routing
/// process to quiescence (bounded), restore them, run to quiescence
/// again. Returns the recorded delta stream.
fn record_storm(
    base: &DistanceVector,
    graph: &Graph,
    concurrent: usize,
    seed: u64,
) -> Vec<RuleDelta> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x73746f726d);
    let edges = graph.edges();
    let mut dv = base.clone();
    let mut deltas = Vec::new();
    let mut failed = Vec::with_capacity(concurrent);
    while failed.len() < concurrent {
        let e = edges[rng.gen_range(0..edges.len())];
        if !failed.contains(&e) {
            dv.fail_link_record(e.0, e.1, |d| deltas.push(d));
            failed.push(e);
        }
    }
    let cap = 80;
    for _ in 0..cap {
        if !dv.step_record(|d| deltas.push(d)) {
            break;
        }
    }
    for &(u, v) in &failed {
        dv.restore_link(u, v);
    }
    for _ in 0..cap {
        if !dv.step_record(|d| deltas.push(d)) {
            break;
        }
    }
    deltas
}

/// Replays `deltas` through the incremental checker, timing only the
/// `apply` loop. Returns (total_ns, checker) — the checker is handed
/// back so the caller can cross-check its final state.
fn timed_incremental(base: &DistanceVector, deltas: &[RuleDelta]) -> (u64, FwdChecker) {
    let mut checker = FwdChecker::from_dv(base);
    let start = Instant::now();
    for d in deltas {
        checker.apply(d);
    }
    let ns = start.elapsed().as_nanos() as u64;
    (ns, checker)
}

/// Replays `deltas` over shadow columns, timing one from-scratch
/// [`classify_column`] per delta — the per-update cost of a checker
/// with no delta maintenance. Returns (total_ns, final shadow columns).
#[allow(clippy::type_complexity)]
fn timed_full_recompute(
    base: &DistanceVector,
    graph: &Graph,
    deltas: &[RuleDelta],
) -> (u64, Vec<Vec<Option<NodeId>>>) {
    let mut shadow: Vec<Vec<Option<NodeId>>> =
        graph.nodes().map(|dst| base.forwarding(dst)).collect();
    let start = Instant::now();
    for d in deltas {
        shadow[d.dst][d.node] = d.new;
        black_box(classify_column(graph, d.dst, &shadow[d.dst]));
    }
    let ns = start.elapsed().as_nanos() as u64;
    (ns, shadow)
}

/// Mean ns per data-plane detection and hops-to-report for Unroller on
/// a `pre`-hop walk entering an `l`-switch loop, best of 3 aggregate
/// runs of `iters` detections each.
fn dataplane_detection(pre: usize, l: usize, iters: u64) -> (f64, u64) {
    let det = Unroller::from_params(UnrollerParams::default()).expect("default params");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xdead ^ (l as u64));
    let walk = Walk::random(pre, l, &mut rng);
    let mut state = det.init_state();
    let out = run_detector_with(&det, &walk, 100_000, &mut state);
    let hops = out.reported_at.expect("a looping walk must be detected");
    let mut best = u64::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(run_detector_with(&det, &walk, 100_000, &mut state));
        }
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    (best as f64 / iters as f64, hops)
}

fn main() {
    let mut quick = false;
    let mut out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_oracle.json"
    )
    .to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("oracle: --out requires an argument");
                    std::process::exit(2);
                })
            }
            "--bench" | "--test" => {}
            other => {
                eprintln!("oracle: unknown argument `{other}` (--quick, --out PATH)");
                std::process::exit(2);
            }
        }
    }

    // ≥1k nodes for the committed baseline; CI smoke shrinks the graph
    // but keeps every stage (and the correctness cross-check).
    let (spec, n, d) = if quick {
        ("wan:256:10:1", 256usize, 10usize)
    } else {
        ("wan:1500:12:1", 1500usize, 12usize)
    };
    let graph = wan_like(n, d, n / 4, 1);
    let storms: &[usize] = if quick { &[1, 4] } else { &[1, 4, 16] };
    let det_iters: u64 = if quick { 20_000 } else { 200_000 };

    eprintln!("oracle: converging distance-vector on {spec} ({n} nodes)...");
    let base = DistanceVector::new(graph.clone(), false);

    let mut storm_rows = Vec::new();
    let mut updates_total = 0u64;
    let mut inc_ns_total = 0u64;
    let mut full_ns_total = 0u64;
    for &concurrent in storms {
        eprintln!("oracle: storm of {concurrent} concurrent link failure(s)...");
        let deltas = record_storm(&base, &graph, concurrent, 11 + concurrent as u64);
        assert!(!deltas.is_empty(), "a storm must change routes");

        // Best-of-3 for both passes; correctness checked on the last.
        let mut inc_ns = u64::MAX;
        let mut checker = None;
        for _ in 0..3 {
            let (ns, c) = timed_incremental(&base, &deltas);
            inc_ns = inc_ns.min(ns);
            checker = Some(c);
        }
        let checker = checker.expect("three runs happened");
        let mut full_ns = u64::MAX;
        let mut shadow = None;
        for _ in 0..3 {
            let (ns, s) = timed_full_recompute(&base, &graph, &deltas);
            full_ns = full_ns.min(ns);
            shadow = Some(s);
        }
        let shadow = shadow.expect("three runs happened");

        // The timing is only meaningful if the incremental state is
        // *right*: bit-for-bit against the final columns.
        checker
            .check_all(|dst| shadow[dst].clone())
            .expect("incremental state must match from-scratch recompute");

        let count = deltas.len() as u64;
        let inc_per = inc_ns as f64 / count as f64;
        let full_per = full_ns as f64 / count as f64;
        eprintln!(
            "  {count} updates: incremental {inc_per:>9.1} ns/update \
             (affected mean {:.2}, max {}), full {full_per:>9.1} ns/update, {:.1}x",
            checker.stats.affected_mean(),
            checker.stats.affected_max,
            full_per / inc_per,
        );
        updates_total += count;
        inc_ns_total += inc_ns;
        full_ns_total += full_ns;

        let mut row = Json::object();
        row.set("concurrent_failures", Json::UInt(concurrent as u64));
        row.set("updates", Json::UInt(count));
        row.set("incremental_ns_per_update", Json::Float(inc_per));
        row.set("full_ns_per_update", Json::Float(full_per));
        row.set("affected_mean", Json::Float(checker.stats.affected_mean()));
        row.set("affected_max", Json::UInt(checker.stats.affected_max));
        row.set(
            "speedup_incremental_vs_full",
            Json::Float(full_per / inc_per),
        );
        storm_rows.push(row);
    }

    let inc_per = inc_ns_total as f64 / updates_total as f64;
    let full_per = full_ns_total as f64 / updates_total as f64;
    let speedup = full_per / inc_per;

    eprintln!("oracle: data-plane Unroller detection walks ({det_iters} iters each)...");
    let mut dp_rows = Vec::new();
    let mut dp_ns_any = 0.0f64;
    for &l in &[2usize, 8, 32] {
        let (ns, hops) = dataplane_detection(8, l, det_iters);
        eprintln!("  loop L={l:<3} detected at hop {hops:<4} {ns:>9.1} ns/detection");
        if l == 2 {
            dp_ns_any = ns;
        }
        let mut row = Json::object();
        row.set("loop_len", Json::UInt(l as u64));
        row.set("pre_hops", Json::UInt(8));
        row.set("detected_at_hop", Json::UInt(hops));
        row.set("ns_per_detection", Json::Float(ns));
        dp_rows.push(row);
    }

    let mut topo = Json::object();
    topo.set("spec", Json::Str(spec.to_string()));
    topo.set("nodes", Json::UInt(graph.node_count() as u64));
    topo.set("edges", Json::UInt(graph.edge_count() as u64));
    topo.set("diameter_target", Json::UInt(d as u64));

    let mut summary = Json::object();
    summary.set("updates_total", Json::UInt(updates_total));
    summary.set("incremental_ns_per_update", Json::Float(inc_per));
    summary.set("full_ns_per_update", Json::Float(full_per));
    summary.set("speedup_incremental_vs_full", Json::Float(speedup));
    summary.set("dataplane_detection_ns_short_loop", Json::Float(dp_ns_any));

    let mut root = Json::object();
    root.set("bench", Json::Str("oracle".to_string()));
    root.set("quick", Json::Bool(quick));
    root.set("topology", topo);
    root.set("storms", Json::Array(storm_rows));
    root.set("dataplane", Json::Array(dp_rows));
    root.set("summary", summary);
    let rendered = root.render_pretty();

    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out, &rendered).expect("write benchmark output");
    eprintln!("wrote {out}");
    eprintln!(
        "oracle: incremental check is {speedup:.1}x full recompute \
         ({inc_per:.1} vs {full_per:.1} ns/update over {updates_total} updates)"
    );
}
