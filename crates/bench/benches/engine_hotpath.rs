//! The engine hot-path amortization benchmark: what route interning,
//! batched ring dispatch, and per-route verdict memoization buy over
//! the naive per-packet design.
//!
//! Five measurements, one JSON report:
//!
//! * `legacy_per_packet_vec` — a faithful in-bench reproduction of the
//!   engine's pre-interning shape: every packet carries its own
//!   heap-allocated route `Vec`, crosses a `sync_channel` one `send`
//!   at a time, and is bounds-checked against the pipeline array at
//!   every hop. Same pipelines, same walks, same zero-copy
//!   `process_frame_in_place` per hop — only the amortization differs.
//! * `interned` — the real [`Engine`] (dispatcher → batched SPSC rings
//!   → workers) over the *same* flow walks via
//!   [`ReplaySource::from_paths`]: routes interned once into a shared
//!   [`RouteSet`], packets carrying a `u32` [`RouteId`], validity
//!   precomputed, bursts published with one index store per shard.
//! * `memoized` — the same engine with `--memo` semantics: the first
//!   packet per route walks and caches `(verdict, final shim)`; every
//!   later packet on that route settles from the cache, with 1-in-64
//!   hits re-walked and bit-compared (divergence asserted zero).
//! * `memoized_stepped` — memoization plus the hop-stepped lane pool
//!   for the residual (unmemoized) walks.
//! * `ring` — the SPSC ring in isolation: single `push` per item
//!   versus `push_batch` bursts of 64, ns/item.
//!
//! Output is JSON (schema in `results/README.md`):
//!
//! ```text
//! cargo bench -p unroller-bench --bench engine_hotpath -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks workloads for CI's `engine-hotpath-smoke` job,
//! which asserts `speedup_interned_vs_legacy >= 1.0`; the committed
//! baseline `results/BENCH_engine_hotpath.json` is a full run.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::mpsc;
use std::time::Instant;
use unroller_core::UnrollerParams;
use unroller_dataplane::parser::build_frame;
use unroller_dataplane::{
    EthernetHeader, HeaderLayout, UnrollerPipeline, WireHeader, ETH_HEADER_LEN,
};
use unroller_engine::ring::ring;
use unroller_engine::{
    Engine, EngineConfig, FlowKey, FullPolicy, Json, MemoConfig, PathSpec, ReplaySource,
};

const NODES: usize = 64;
const FLOWS: usize = 32;
const MAX_HOPS: u32 = 64;
const BATCH: usize = 64;
const WALK_SEED: u64 = 17;

/// The shared workload: deterministic loop-free walks (3–12 hops over
/// `NODES` virtual switches), one per flow. Both the legacy
/// reproduction and the real engine process exactly these walks.
fn flow_walks() -> Vec<(FlowKey, Vec<usize>)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(WALK_SEED);
    let all: Vec<usize> = (0..NODES).collect();
    (0..FLOWS)
        .map(|f| {
            let len = rng.gen_range(3..=12);
            let mut pool = all.clone();
            pool.shuffle(&mut rng);
            let walk = pool[..len].to_vec();
            let key = FlowKey::synthetic(walk[0] as u32, walk[len - 1] as u32, f as u32);
            (key, walk)
        })
        .collect()
}

fn scratch_frame(layout: &HeaderLayout) -> Vec<u8> {
    let mut frame = build_frame(
        layout,
        &EthernetHeader::for_hosts(0, 1),
        &WireHeader::initial(layout),
        &[],
    );
    frame.resize(frame.len().max(64), 0);
    frame
}

/// What the engine looked like before interning and batched dispatch:
/// the route rides in the packet as an owned `Vec`, allocated fresh
/// per packet.
struct LegacyPacket {
    #[allow(dead_code)]
    flow: FlowKey,
    #[allow(dead_code)]
    seq: u64,
    route: Vec<usize>,
}

/// One timed legacy run: a producer thread clones each flow's walk
/// into a per-packet `Vec` and `send`s packets one at a time through a
/// `sync_channel`; the consumer pulls one blocking `recv` then drains
/// up to a batch with `try_recv`, walking each packet hop by hop with
/// a per-hop bounds check. Returns wall nanoseconds.
fn legacy_run_ns(
    walks: &[(FlowKey, Vec<usize>)],
    pipelines: &[UnrollerPipeline],
    layout: &HeaderLayout,
    packets: u64,
) -> u64 {
    let (tx, rx) = mpsc::sync_channel::<LegacyPacket>(1024);
    let start = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut next_flow = 0usize;
            for seq in 0..packets {
                let (flow, walk) = &walks[next_flow];
                next_flow = (next_flow + 1) % walks.len();
                let packet = LegacyPacket {
                    flow: *flow,
                    seq,
                    route: walk.clone(), // the per-packet allocation
                };
                if tx.send(packet).is_err() {
                    break;
                }
            }
        });
        scope.spawn(move || {
            let mut scratch = scratch_frame(layout);
            let shim_end = ETH_HEADER_LEN + layout.total_bytes();
            let mut delivered = 0u64;
            let mut hops_total = 0u64;
            // One blocking pull, then drain a batch opportunistically
            // — the pre-ring dispatch pattern.
            'consume: while let Ok(first) = rx.recv() {
                let mut batch = Vec::with_capacity(BATCH);
                batch.push(first);
                while batch.len() < BATCH {
                    match rx.try_recv() {
                        Ok(p) => batch.push(p),
                        Err(mpsc::TryRecvError::Empty) => break,
                        Err(mpsc::TryRecvError::Disconnected) => {
                            // Process what we hold, then stop.
                            for p in &batch {
                                scratch[ETH_HEADER_LEN..shim_end].fill(0);
                                walk_legacy(p, pipelines, &mut scratch, &mut hops_total);
                                delivered += 1;
                            }
                            break 'consume;
                        }
                    }
                }
                for p in &batch {
                    scratch[ETH_HEADER_LEN..shim_end].fill(0);
                    walk_legacy(p, pipelines, &mut scratch, &mut hops_total);
                    delivered += 1;
                }
            }
            assert_eq!(delivered, packets, "legacy path must process everything");
            black_box(hops_total);
        });
    });
    start.elapsed().as_nanos() as u64
}

/// The legacy per-hop walk: bounds-check the node on every hop (no
/// precomputed validity), process the frame in place, honor the TTL.
fn walk_legacy(
    packet: &LegacyPacket,
    pipelines: &[UnrollerPipeline],
    frame: &mut [u8],
    hops_total: &mut u64,
) {
    let mut hops = 0u32;
    for &node in &packet.route {
        let Some(pipeline) = pipelines.get(node) else {
            break;
        };
        hops += 1;
        if pipeline.process_frame_in_place(frame).is_err() {
            break;
        }
        if hops >= MAX_HOPS {
            break;
        }
    }
    *hops_total += hops as u64;
}

/// One timed engine run over the same walks at `shards` shards, with
/// the memo/stepped fast paths as configured. Returns (wall_ns,
/// capacity_pps).
fn interned_run(
    walks: &[(FlowKey, Vec<usize>)],
    shards: usize,
    packets: u64,
    memo: Option<MemoConfig>,
    stepped: bool,
) -> (u64, f64) {
    let ids: Vec<u32> = (0..NODES as u32).map(|i| 100 + i).collect();
    let memoized = memo.is_some();
    let engine = Engine::new(
        EngineConfig {
            shards,
            batch_size: BATCH,
            max_hops: MAX_HOPS,
            full_policy: FullPolicy::Block,
            memo,
            stepped,
            ..EngineConfig::default()
        },
        &ids,
    )
    .expect("engine config");
    let flows: Vec<(FlowKey, PathSpec, Option<PathSpec>)> = walks
        .iter()
        .map(|(key, walk)| (*key, PathSpec::linear(walk.clone()), None))
        .collect();
    let mut source = ReplaySource::from_paths(flows, packets, None);
    assert!(!source.any_looping_flow(), "workload is loop-free");
    let report = engine.run(&mut source).expect("fault-free run");
    assert!(report.accounted(), "accounting must balance");
    assert_eq!(report.processed(), packets, "nothing dropped under Block");
    if memoized {
        assert_eq!(report.memo_divergence(), 0, "sampled cross-checks agree");
        assert!(report.memo_hits() > 0, "the cache was exercised");
    }
    (report.wall_ns, report.aggregate_capacity_pps())
}

/// Best-of-3 `interned_run`s per shard count; returns the per-shard
/// JSON rows and the 1-shard wall pps (the headline number).
fn sweep_shards(
    label: &str,
    walks: &[(FlowKey, Vec<usize>)],
    shard_counts: &[usize],
    packets: u64,
    memo: Option<MemoConfig>,
    stepped: bool,
) -> (Vec<Json>, f64) {
    let mut runs = Vec::new();
    let mut one_shard_pps = 0.0f64;
    for &shards in shard_counts {
        eprintln!("engine_hotpath: {label} at {shards} shard(s) (best of 3)...");
        let mut best_ns = u64::MAX;
        let mut best_cap = 0.0f64;
        for _ in 0..3 {
            let (ns, cap) = interned_run(walks, shards, packets, memo, stepped);
            if ns < best_ns {
                best_ns = ns;
                best_cap = cap;
            }
        }
        let pps = packets as f64 * 1.0e9 / best_ns as f64;
        if shards == 1 {
            one_shard_pps = pps;
        }
        eprintln!(
            "  shards={shards:<2}             {:>8.1} ns/pkt  {:>12.0} pps",
            best_ns as f64 / packets as f64,
            pps
        );
        let mut obj = Json::object();
        obj.set("shards", Json::UInt(shards as u64));
        obj.set("wall_pps", Json::Float(pps));
        obj.set(
            "ns_per_packet",
            Json::Float(best_ns as f64 / packets as f64),
        );
        obj.set("capacity_pps", Json::Float(best_cap));
        runs.push(obj);
    }
    (runs, one_shard_pps)
}

/// Ring in isolation: ns/item for single-push vs batched-push bursts,
/// same drain pattern on the consumer side. Single-threaded, sized so
/// the ring never fills (what's measured is enqueue cost, not waiting).
fn ring_ns_per_item(iters: u64, batched: bool) -> f64 {
    let burst = 512usize;
    let rounds = (iters as usize / burst).max(1);
    let run = || -> u64 {
        let (producer, consumer, _) = ring::<u64>(1024, FullPolicy::Drop);
        let mut out: Vec<u64> = Vec::with_capacity(burst);
        let mut batch: Vec<u64> = Vec::with_capacity(BATCH);
        let start = Instant::now();
        for round in 0..rounds {
            if batched {
                for chunk in 0..burst / BATCH {
                    batch.extend((0..BATCH as u64).map(|i| round as u64 + chunk as u64 + i));
                    let result = producer.push_batch(&mut batch);
                    assert_eq!(result.dropped, 0, "ring never fills");
                }
            } else {
                for i in 0..burst as u64 {
                    assert!(producer.push(round as u64 + i), "ring never fills");
                }
            }
            let mut drained = 0;
            while drained < burst {
                out.clear();
                assert!(consumer.recv_batch(&mut out, burst));
                drained += out.len();
                black_box(&out);
            }
        }
        start.elapsed().as_nanos() as u64
    };
    let mut best = u64::MAX;
    for _ in 0..3 {
        best = best.min(run());
    }
    best as f64 / (rounds * burst) as f64
}

fn main() {
    let mut quick = false;
    let mut out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_engine_hotpath.json"
    )
    .to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("engine_hotpath: --out requires an argument");
                    std::process::exit(2);
                })
            }
            "--bench" | "--test" => {}
            other => {
                eprintln!("engine_hotpath: unknown argument `{other}` (--quick, --out PATH)");
                std::process::exit(2);
            }
        }
    }

    let packets: u64 = if quick { 40_000 } else { 200_000 };
    let ring_iters: u64 = if quick { 200_000 } else { 2_000_000 };
    let shard_counts: &[usize] = if quick { &[1] } else { &[1, 2, 4] };

    let walks = flow_walks();
    let params = UnrollerParams::default();
    let layout = HeaderLayout::from_params(&params);
    let pipelines: Vec<UnrollerPipeline> = (0..NODES as u32)
        .map(|i| UnrollerPipeline::new(100 + i, params).unwrap())
        .collect();

    eprintln!("engine_hotpath: legacy per-packet-Vec path ({packets} packets, best of 3)...");
    let mut legacy_ns = u64::MAX;
    for _ in 0..3 {
        legacy_ns = legacy_ns.min(legacy_run_ns(&walks, &pipelines, &layout, packets));
    }
    let legacy_pps = packets as f64 * 1.0e9 / legacy_ns as f64;
    eprintln!(
        "  legacy                {:>8.1} ns/pkt  {:>12.0} pps",
        legacy_ns as f64 / packets as f64,
        legacy_pps
    );

    let (interned_runs, interned_1shard_pps) = sweep_shards(
        "interned+batched engine",
        &walks,
        shard_counts,
        packets,
        None,
        false,
    );
    let memo = Some(MemoConfig::default());
    let (memo_runs, memo_1shard_pps) = sweep_shards(
        "memoized engine",
        &walks,
        shard_counts,
        packets,
        memo,
        false,
    );
    let (memo_stepped_runs, memo_stepped_1shard_pps) = sweep_shards(
        "memoized+stepped engine",
        &walks,
        shard_counts,
        packets,
        memo,
        true,
    );

    eprintln!("engine_hotpath: ring push vs push_batch ({ring_iters} items each)...");
    let push_ns = ring_ns_per_item(ring_iters, false);
    let push_batch_ns = ring_ns_per_item(ring_iters, true);
    eprintln!("  push                  {push_ns:>8.2} ns/item");
    eprintln!("  push_batch(64)        {push_batch_ns:>8.2} ns/item");

    let speedup = interned_1shard_pps / legacy_pps;
    let speedup_memo = memo_1shard_pps / interned_1shard_pps;

    let mut legacy_obj = Json::object();
    legacy_obj.set("wall_pps", Json::Float(legacy_pps));
    legacy_obj.set(
        "ns_per_packet",
        Json::Float(legacy_ns as f64 / packets as f64),
    );

    let mut interned_obj = Json::object();
    interned_obj.set("runs", Json::Array(interned_runs));

    let mut memo_obj = Json::object();
    memo_obj.set(
        "sample_every",
        Json::UInt(unroller_engine::DEFAULT_SAMPLE_EVERY),
    );
    memo_obj.set("runs", Json::Array(memo_runs));

    let mut memo_stepped_obj = Json::object();
    memo_stepped_obj.set(
        "sample_every",
        Json::UInt(unroller_engine::DEFAULT_SAMPLE_EVERY),
    );
    memo_stepped_obj.set("runs", Json::Array(memo_stepped_runs));

    let mut ring_obj = Json::object();
    ring_obj.set("items", Json::UInt(ring_iters));
    ring_obj.set("batch", Json::UInt(BATCH as u64));
    ring_obj.set("push_ns_per_item", Json::Float(push_ns));
    ring_obj.set("push_batch_ns_per_item", Json::Float(push_batch_ns));
    ring_obj.set("batch_speedup", Json::Float(push_ns / push_batch_ns));

    let mut root = Json::object();
    root.set("bench", Json::Str("engine_hotpath".to_string()));
    root.set("quick", Json::Bool(quick));
    root.set("packets", Json::UInt(packets));
    root.set("flows", Json::UInt(FLOWS as u64));
    root.set("nodes", Json::UInt(NODES as u64));
    root.set("legacy_per_packet_vec", legacy_obj);
    root.set("interned", interned_obj);
    root.set("memoized", memo_obj);
    root.set("memoized_stepped", memo_stepped_obj);
    root.set("ring", ring_obj);
    root.set("speedup_interned_vs_legacy", Json::Float(speedup));
    root.set("speedup_memoized_vs_walked", Json::Float(speedup_memo));
    root.set(
        "speedup_memoized_stepped_vs_walked",
        Json::Float(memo_stepped_1shard_pps / interned_1shard_pps),
    );
    let rendered = root.render_pretty();

    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out, &rendered).expect("write benchmark output");
    eprintln!("wrote {out}");
    eprintln!("engine_hotpath: interned+batched is {speedup:.2}x the per-packet-Vec path");
    eprintln!("engine_hotpath: memoization is {speedup_memo:.2}x the interned walk at 1 shard");
}
