//! Synthetic walks — the paper's §5 workload generator.
//!
//! The evaluation generates paths "based on the required number of hops
//! before entering a loop (B) and the number of hops comprising the loop
//! itself (L)", with uniformly random 32-bit switch identifiers. A
//! [`Walk`] is exactly that: a pre-loop segment of `B` distinct switches
//! followed by a cycle of `L` distinct switches which the packet then
//! traverses forever (or a loop-free path when `L = 0`, used by the
//! false-positive experiments of Figure 6).

use crate::detector::InPacketDetector;
use crate::SwitchId;
use rand::Rng;
use std::collections::HashSet;

/// A synthetic packet trajectory: `B` pre-loop hops then an `L`-switch
/// loop repeated indefinitely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// Switches on the path leading to the loop (length `B`).
    pub pre: Vec<SwitchId>,
    /// Switches on the loop (length `L`); empty for a loop-free path.
    pub cycle: Vec<SwitchId>,
}

impl Walk {
    /// Builds a walk from explicit segments.
    pub fn new(pre: Vec<SwitchId>, cycle: Vec<SwitchId>) -> Self {
        Walk { pre, cycle }
    }

    /// Draws a walk with `b` pre-loop hops and an `l`-switch loop, all
    /// identifiers distinct uniform 32-bit values.
    ///
    /// Identifiers are drawn *without replacement*: the paper draws with
    /// replacement, but a duplicate among ≤ a few hundred draws from
    /// 2³² values occurs with probability < 10⁻⁵ and would contaminate
    /// the false-positive accounting, so we exclude it outright.
    pub fn random<R: Rng + ?Sized>(b: usize, l: usize, rng: &mut R) -> Self {
        let ids = distinct_ids(b + l, rng);
        let (pre, cycle) = split_ids(ids, b);
        Walk { pre, cycle }
    }

    /// Draws a loop-free path of `len` hops (the Figure 6 workload:
    /// `B = 20`, `L = 0`).
    pub fn random_loop_free<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        Self::random(len, 0, rng)
    }

    /// Draws a random walk and then swaps the globally minimal identifier
    /// to 1-based hop position `min_pos` (`1 ..= b + l`). Used to build
    /// adversarial instances: the single-ID algorithm is slowest when the
    /// minimum sits just before the loop or at specific loop offsets
    /// (Appendix A).
    ///
    /// # Panics
    ///
    /// Panics if `min_pos` is not in `1 ..= b + l`.
    pub fn random_with_min_at<R: Rng + ?Sized>(
        b: usize,
        l: usize,
        min_pos: usize,
        rng: &mut R,
    ) -> Self {
        assert!((1..=b + l).contains(&min_pos), "min_pos out of range");
        let mut ids = distinct_ids(b + l, rng);
        let min_idx = ids
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| v)
            .map(|(i, _)| i)
            .expect("b + l >= 1");
        ids.swap(min_idx, min_pos - 1);
        let (pre, cycle) = split_ids(ids, b);
        Walk { pre, cycle }
    }

    /// Number of hops before the loop (`B`).
    pub fn b(&self) -> usize {
        self.pre.len()
    }

    /// Number of switches in the loop (`L`).
    pub fn l(&self) -> usize {
        self.cycle.len()
    }

    /// `X = B + L`: the trivial lower bound on hops before *any* switch
    /// can be reached twice.
    pub fn x(&self) -> usize {
        self.pre.len() + self.cycle.len()
    }

    /// True if the walk never revisits a switch.
    pub fn is_loop_free(&self) -> bool {
        self.cycle.is_empty()
    }

    /// The switch visited at 1-based hop `hop`, or `None` when a
    /// loop-free walk has ended.
    pub fn switch_at(&self, hop: u64) -> Option<SwitchId> {
        debug_assert!(hop >= 1);
        let b = self.pre.len() as u64;
        if hop <= b {
            return Some(self.pre[(hop - 1) as usize]);
        }
        if self.cycle.is_empty() {
            return None;
        }
        let l = self.cycle.len() as u64;
        Some(self.cycle[((hop - b - 1) % l) as usize])
    }

    /// True if the switch visited at hop `hop` was already visited at an
    /// earlier hop (exact check, independent of identifier values).
    pub fn is_revisit(&self, hop: u64) -> bool {
        let b = self.pre.len() as u64;
        let l = self.cycle.len() as u64;
        // Positions strictly after the first full loop pass revisit by
        // construction; earlier positions are first visits because
        // generated identifiers are distinct. For hand-built walks with
        // duplicated IDs the notion of "same switch" is the position in
        // the pre/cycle structure, which this check captures.
        l > 0 && hop > b + l
    }
}

fn distinct_ids<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<SwitchId> {
    let mut seen = HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id: u32 = rng.gen();
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

fn split_ids(mut ids: Vec<SwitchId>, b: usize) -> (Vec<SwitchId>, Vec<SwitchId>) {
    let cycle = ids.split_off(b);
    (ids, cycle)
}

/// The result of running a detector along a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionOutcome {
    /// 1-based hop at which a loop was reported; `None` if the walk ended
    /// (loop-free) or the `max_hops` budget ran out first.
    pub reported_at: Option<u64>,
    /// True if the reporting switch had genuinely been visited before
    /// (i.e. the report is not a hash-collision false positive).
    pub true_positive: bool,
}

impl DetectionOutcome {
    /// True if a loop was reported but the reporting hop was *not* a
    /// revisit — a false positive.
    pub fn false_positive(&self) -> bool {
        self.reported_at.is_some() && !self.true_positive
    }

    /// Detection time normalized by `X = B + L` (the paper's
    /// "Avg Time (#hops/X)" metric). `None` when nothing was reported or
    /// `x == 0`.
    pub fn time_ratio(&self, x: usize) -> Option<f64> {
        match (self.reported_at, x) {
            (Some(h), x) if x > 0 => Some(h as f64 / x as f64),
            _ => None,
        }
    }
}

/// Runs `detector` along `walk` for at most `max_hops` hops with a fresh
/// state.
pub fn run_detector<D: InPacketDetector>(
    detector: &D,
    walk: &Walk,
    max_hops: u64,
) -> DetectionOutcome {
    let mut state = detector.init_state();
    run_detector_with(detector, walk, max_hops, &mut state)
}

/// Like [`run_detector`] but reuses `state` (reset first); this is the
/// hot path of the multi-million-run experiments.
pub fn run_detector_with<D: InPacketDetector>(
    detector: &D,
    walk: &Walk,
    max_hops: u64,
    state: &mut D::State,
) -> DetectionOutcome {
    detector.reset_state(state);
    for hop in 1..=max_hops {
        let Some(switch) = walk.switch_at(hop) else {
            // Loop-free walk ended without a report.
            return DetectionOutcome {
                reported_at: None,
                true_positive: false,
            };
        };
        if detector.on_switch(state, switch).reported() {
            return DetectionOutcome {
                reported_at: Some(hop),
                true_positive: walk.is_revisit(hop),
            };
        }
    }
    DetectionOutcome {
        reported_at: None,
        true_positive: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Unroller;
    use crate::params::UnrollerParams;

    #[test]
    fn walk_geometry() {
        let mut rng = crate::test_rng(1);
        let w = Walk::random(5, 20, &mut rng);
        assert_eq!(w.b(), 5);
        assert_eq!(w.l(), 20);
        assert_eq!(w.x(), 25);
        assert!(!w.is_loop_free());
    }

    #[test]
    fn switch_at_cycles_correctly() {
        let w = Walk::new(vec![1, 2], vec![10, 11, 12]);
        let expect = [1u32, 2, 10, 11, 12, 10, 11, 12, 10];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(w.switch_at(i as u64 + 1), Some(e), "hop {}", i + 1);
        }
    }

    #[test]
    fn loop_free_walk_ends() {
        let w = Walk::new(vec![1, 2, 3], vec![]);
        assert_eq!(w.switch_at(3), Some(3));
        assert_eq!(w.switch_at(4), None);
        assert!(w.is_loop_free());
    }

    #[test]
    fn revisit_starts_after_x() {
        let w = Walk::new(vec![1, 2], vec![10, 11, 12]);
        for hop in 1..=5 {
            assert!(!w.is_revisit(hop), "hop {hop}");
        }
        for hop in 6..=12 {
            assert!(w.is_revisit(hop), "hop {hop}");
        }
    }

    #[test]
    fn random_ids_are_distinct() {
        let mut rng = crate::test_rng(2);
        let w = Walk::random(50, 100, &mut rng);
        let mut all: Vec<u32> = w.pre.iter().chain(w.cycle.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 150);
    }

    #[test]
    fn min_placement_lands_where_requested() {
        let mut rng = crate::test_rng(3);
        for pos in 1..=10 {
            let w = Walk::random_with_min_at(4, 6, pos, &mut rng);
            let all: Vec<u32> = w.pre.iter().chain(w.cycle.iter()).copied().collect();
            let min = *all.iter().min().unwrap();
            assert_eq!(all[pos - 1], min, "pos {pos}");
        }
    }

    #[test]
    fn runner_reports_true_positive_on_loops() {
        let d = Unroller::from_params(UnrollerParams::default()).unwrap();
        let mut rng = crate::test_rng(4);
        for _ in 0..50 {
            let w = Walk::random(5, 20, &mut rng);
            let out = run_detector(&d, &w, 100_000);
            assert!(out.reported_at.is_some());
            assert!(out.true_positive);
            assert!(!out.false_positive());
            assert!(out.time_ratio(w.x()).unwrap() >= 1.0);
        }
    }

    #[test]
    fn runner_returns_none_on_loop_free_full_ids() {
        let d = Unroller::from_params(UnrollerParams::default()).unwrap();
        let mut rng = crate::test_rng(5);
        for _ in 0..50 {
            let w = Walk::random_loop_free(20, &mut rng);
            let out = run_detector(&d, &w, 100_000);
            assert_eq!(out.reported_at, None);
            assert!(!out.false_positive());
        }
    }

    #[test]
    fn runner_respects_max_hops() {
        let d = Unroller::from_params(UnrollerParams::default()).unwrap();
        let w = Walk::new(vec![], vec![1, 2, 3]);
        let out = run_detector(&d, &w, 3); // too few hops to detect
        assert_eq!(out.reported_at, None);
    }

    #[test]
    fn time_ratio_edge_cases() {
        let detected = DetectionOutcome {
            reported_at: Some(10),
            true_positive: true,
        };
        assert_eq!(detected.time_ratio(5), Some(2.0));
        assert_eq!(detected.time_ratio(0), None, "X = 0 has no ratio");
        let silent = DetectionOutcome {
            reported_at: None,
            true_positive: false,
        };
        assert_eq!(silent.time_ratio(5), None);
        assert!(!silent.false_positive());
    }

    #[test]
    fn state_reuse_equals_fresh_state() {
        let d = Unroller::from_params(UnrollerParams::default().with_c(2).with_h(2)).unwrap();
        let mut rng = crate::test_rng(6);
        let mut st = d.init_state();
        for _ in 0..20 {
            let w = Walk::random(3, 8, &mut rng);
            let a = run_detector(&d, &w, 10_000);
            let b = run_detector_with(&d, &w, 10_000, &mut st);
            assert_eq!(a, b);
        }
    }
}
