//! Unroller configuration parameters (the paper's Table 2).
//!
//! | symbol | field | meaning |
//! |---|---|---|
//! | `b`  | [`UnrollerParams::b`]  | phase growth base; the *i*-th phase lasts `bⁱ` hops |
//! | `z`  | [`UnrollerParams::z`]  | bits per stored (hashed) switch identifier |
//! | `c`  | [`UnrollerParams::c`]  | chunks each phase is partitioned into |
//! | `H`  | [`UnrollerParams::h`]  | number of independent hash functions |
//! | `Th` | [`UnrollerParams::th`] | number of matches required before reporting |

use crate::phase::PhaseSchedule;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised by [`UnrollerParams::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// `b` must be at least 2: with `b = 1` every phase has the same
    /// length and the resetting intervals never grow, so detection is not
    /// guaranteed (Appendix A, case `β ≤ 0.5`).
    BaseTooSmall(u32),
    /// `z` must be between 1 and 32 — identifiers are 32-bit values and a
    /// zero-width hash can never distinguish switches.
    BadHashWidth(u32),
    /// `c` must be at least 1 (one chunk per phase is the base algorithm).
    NoChunks,
    /// `H` must be at least 1 (one hash function is the base algorithm).
    NoHashes,
    /// `Th` must be at least 1 (report on the first match).
    NoThreshold,
    /// Storing more than 64 identifiers per packet exceeds any plausible
    /// header budget; the paper evaluates up to `c = 8`, `H = 10`.
    TooManySlots {
        /// requested `c · H` slots
        slots: u32,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::BaseTooSmall(b) => write!(
                f,
                "phase base b={b} is too small: resetting intervals must grow \
                 geometrically (b >= 2) for detection to be guaranteed"
            ),
            ParamError::BadHashWidth(z) => {
                write!(f, "hash width z={z} out of range 1..=32")
            }
            ParamError::NoChunks => write!(f, "chunk count c must be >= 1"),
            ParamError::NoHashes => write!(f, "hash count H must be >= 1"),
            ParamError::NoThreshold => write!(f, "threshold Th must be >= 1"),
            ParamError::TooManySlots { slots } => {
                write!(f, "c*H = {slots} identifier slots exceed the limit of 64")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// Configuration of the Unroller detector.
///
/// [`UnrollerParams::default`] matches the paper's evaluation defaults
/// (§5): `b = 4`, `z = 32`, `c = 1`, `H = 1`, `Th = 1`, power-boundary
/// phase schedule, `Xcnt` carried in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnrollerParams {
    /// Phase growth base `b`. Larger `b` resets less aggressively, which
    /// lowers detection time for long loops but raises it when the
    /// pre-loop path dominates (Figure 2).
    pub b: u32,
    /// Width in bits of each stored identifier (`z`). `z = 32` stores the
    /// full identifier and cannot produce hash-collision false positives.
    pub z: u32,
    /// Number of chunks per phase (`c`). Each chunk keeps the minimum over
    /// a `1/c` fraction of the phase (Appendix B).
    pub c: u32,
    /// Number of independent hash functions (`H`).
    pub h: u32,
    /// Reporting threshold (`Th`): the loop is reported on the `Th`-th
    /// match (§3.3's counting technique).
    pub th: u32,
    /// Which phase schedule drives identifier resets.
    pub schedule: PhaseSchedule,
    /// Whether the hop counter `Xcnt` is carried in the packet header
    /// (8 bits). When the hop number can be inferred from the TTL
    /// (paper footnote 3) this can be `false`, saving 8 bits.
    pub xcnt_in_header: bool,
}

impl Default for UnrollerParams {
    fn default() -> Self {
        UnrollerParams {
            b: 4,
            z: 32,
            c: 1,
            h: 1,
            th: 1,
            schedule: PhaseSchedule::PowerBoundary,
            xcnt_in_header: true,
        }
    }
}

impl UnrollerParams {
    /// The paper's default evaluation configuration (§5).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Single full-ID configuration with the analysis phase schedule, as
    /// used by the Theorem 1 proofs.
    pub fn analysis(b: u32) -> Self {
        UnrollerParams {
            b,
            schedule: PhaseSchedule::CumulativeGeometric,
            ..Self::default()
        }
    }

    /// Builder-style setter for the phase base `b`.
    pub fn with_b(mut self, b: u32) -> Self {
        self.b = b;
        self
    }

    /// Builder-style setter for the hash width `z`.
    pub fn with_z(mut self, z: u32) -> Self {
        self.z = z;
        self
    }

    /// Builder-style setter for the chunk count `c`.
    pub fn with_c(mut self, c: u32) -> Self {
        self.c = c;
        self
    }

    /// Builder-style setter for the hash-function count `H`.
    pub fn with_h(mut self, h: u32) -> Self {
        self.h = h;
        self
    }

    /// Builder-style setter for the reporting threshold `Th`.
    pub fn with_th(mut self, th: u32) -> Self {
        self.th = th;
        self
    }

    /// Builder-style setter for the phase schedule.
    pub fn with_schedule(mut self, schedule: PhaseSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Checks parameter consistency.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.b < 2 {
            return Err(ParamError::BaseTooSmall(self.b));
        }
        if self.z == 0 || self.z > 32 {
            return Err(ParamError::BadHashWidth(self.z));
        }
        if self.c == 0 {
            return Err(ParamError::NoChunks);
        }
        if self.h == 0 {
            return Err(ParamError::NoHashes);
        }
        if self.th == 0 {
            return Err(ParamError::NoThreshold);
        }
        let slots = self.c.saturating_mul(self.h);
        if slots > 64 {
            return Err(ParamError::TooManySlots { slots });
        }
        Ok(())
    }

    /// Number of identifier slots carried in the packet (`c · H`).
    pub fn slots(&self) -> usize {
        (self.c * self.h) as usize
    }

    /// Bit mask selecting the low `z` bits of a hash output.
    pub fn z_mask(&self) -> u32 {
        if self.z >= 32 {
            u32::MAX
        } else {
            (1u32 << self.z) - 1
        }
    }

    /// Bits needed for the threshold counter `Thcnt`.
    ///
    /// The paper (§3.3, footnote 2) reports on the hop that sees a match
    /// while the counter equals `Th − 1`, so the counter only needs to
    /// represent `0 ..= Th − 1`, i.e. `⌈log₂ Th⌉` bits (0 bits for
    /// `Th = 1`).
    pub fn thcnt_bits(&self) -> u32 {
        32 - (self.th - 1).leading_zeros()
    }

    /// Total per-packet overhead in bits (the paper's Table 3 layout):
    /// `Xcnt` (8 bits, unless inferred from the TTL) + `c·H·z` identifier
    /// bits + `⌈log₂ Th⌉` threshold-counter bits.
    pub fn overhead_bits(&self) -> u32 {
        let xcnt = if self.xcnt_in_header { 8 } else { 0 };
        xcnt + self.c * self.h * self.z + self.thcnt_bits()
    }

    /// Builds the [`crate::Unroller`] detector this configuration
    /// describes (with the default hash family). Every caller that
    /// replicates detection state — one detector per worker shard in
    /// the `unroller-engine` runtime, one per switch in the simulator —
    /// goes through here, so replicas are guaranteed to share hash
    /// seeds and therefore behave identically, as a controller-managed
    /// deployment requires.
    pub fn detector(&self) -> Result<crate::Unroller, ParamError> {
        crate::Unroller::from_params(*self)
    }
}

impl fmt::Display for UnrollerParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b={},z={},c={},h={},th={},schedule={}{}",
            self.b,
            self.z,
            self.c,
            self.h,
            self.th,
            match self.schedule {
                PhaseSchedule::PowerBoundary => "power",
                PhaseSchedule::CumulativeGeometric => "cumulative",
            },
            if self.xcnt_in_header { "" } else { ",xcnt=ttl" },
        )
    }
}

/// Error parsing an [`UnrollerParams`] configuration string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseParamsError {
    /// An entry was not `key=value`.
    BadEntry(String),
    /// Unknown key.
    UnknownKey(String),
    /// Value failed to parse for the given key.
    BadValue(String),
    /// The parsed parameters failed [`UnrollerParams::validate`].
    Invalid(ParamError),
}

impl fmt::Display for ParseParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseParamsError::BadEntry(e) => write!(f, "expected key=value, got `{e}`"),
            ParseParamsError::UnknownKey(k) => write!(f, "unknown parameter `{k}`"),
            ParseParamsError::BadValue(k) => write!(f, "bad value for `{k}`"),
            ParseParamsError::Invalid(e) => write!(f, "invalid parameters: {e}"),
        }
    }
}

impl std::error::Error for ParseParamsError {}

impl std::str::FromStr for UnrollerParams {
    type Err = ParseParamsError;

    /// Parses a comma-separated configuration string, e.g.
    /// `"b=4,z=7,th=4"` or `"b=3,schedule=cumulative,xcnt=ttl"`.
    /// Omitted keys keep their paper defaults; the result is validated.
    ///
    /// ```
    /// use unroller_core::params::UnrollerParams;
    /// let p: UnrollerParams = "b=4,z=7,th=4".parse().unwrap();
    /// assert_eq!((p.z, p.th), (7, 4));
    /// assert_eq!(p.overhead_bits(), 8 + 7 + 2);
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut p = UnrollerParams::default();
        for entry in s.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let Some((key, value)) = entry.split_once('=') else {
                return Err(ParseParamsError::BadEntry(entry.to_string()));
            };
            let (key, value) = (key.trim(), value.trim());
            let num = || {
                value
                    .parse::<u32>()
                    .map_err(|_| ParseParamsError::BadValue(key.to_string()))
            };
            match key.to_ascii_lowercase().as_str() {
                "b" => p.b = num()?,
                "z" => p.z = num()?,
                "c" => p.c = num()?,
                "h" => p.h = num()?,
                "th" => p.th = num()?,
                "schedule" => {
                    p.schedule = match value.to_ascii_lowercase().as_str() {
                        "power" | "power-boundary" | "powerboundary" => {
                            PhaseSchedule::PowerBoundary
                        }
                        "cumulative" | "cumulative-geometric" | "analysis" => {
                            PhaseSchedule::CumulativeGeometric
                        }
                        _ => return Err(ParseParamsError::BadValue(key.to_string())),
                    }
                }
                "xcnt" => {
                    p.xcnt_in_header = match value.to_ascii_lowercase().as_str() {
                        "header" => true,
                        "ttl" => false,
                        _ => return Err(ParseParamsError::BadValue(key.to_string())),
                    }
                }
                _ => return Err(ParseParamsError::UnknownKey(key.to_string())),
            }
        }
        p.validate().map_err(ParseParamsError::Invalid)?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_display() {
        for p in [
            UnrollerParams::default(),
            UnrollerParams::default().with_z(7).with_th(4),
            UnrollerParams::analysis(3).with_c(2).with_h(2),
            UnrollerParams {
                xcnt_in_header: false,
                ..UnrollerParams::default()
            },
        ] {
            let text = p.to_string();
            let back: UnrollerParams = text.parse().unwrap_or_else(|e| {
                panic!("failed to reparse `{text}`: {e}");
            });
            assert_eq!(back, p, "roundtrip of `{text}`");
        }
    }

    #[test]
    fn parse_partial_and_whitespace() {
        let p: UnrollerParams = " z=7 , th=4 ".parse().unwrap();
        assert_eq!((p.b, p.z, p.th), (4, 7, 4));
        let p: UnrollerParams = "".parse().unwrap();
        assert_eq!(p, UnrollerParams::default());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            "banana".parse::<UnrollerParams>(),
            Err(ParseParamsError::BadEntry(_))
        ));
        assert!(matches!(
            "q=4".parse::<UnrollerParams>(),
            Err(ParseParamsError::UnknownKey(_))
        ));
        assert!(matches!(
            "b=lots".parse::<UnrollerParams>(),
            Err(ParseParamsError::BadValue(_))
        ));
        assert!(matches!(
            "b=1".parse::<UnrollerParams>(),
            Err(ParseParamsError::Invalid(ParamError::BaseTooSmall(1)))
        ));
        assert!(matches!(
            "schedule=sometimes".parse::<UnrollerParams>(),
            Err(ParseParamsError::BadValue(_))
        ));
    }

    #[test]
    fn default_is_paper_default() {
        let p = UnrollerParams::default();
        assert_eq!((p.b, p.z, p.c, p.h, p.th), (4, 32, 1, 1, 1));
        assert_eq!(p.schedule, PhaseSchedule::PowerBoundary);
        p.validate().unwrap();
    }

    #[test]
    fn validation_rejects_degenerate_base() {
        assert_eq!(
            UnrollerParams::default().with_b(1).validate(),
            Err(ParamError::BaseTooSmall(1))
        );
        assert_eq!(
            UnrollerParams::default().with_b(0).validate(),
            Err(ParamError::BaseTooSmall(0))
        );
    }

    #[test]
    fn validation_rejects_bad_z() {
        assert_eq!(
            UnrollerParams::default().with_z(0).validate(),
            Err(ParamError::BadHashWidth(0))
        );
        assert_eq!(
            UnrollerParams::default().with_z(33).validate(),
            Err(ParamError::BadHashWidth(33))
        );
        UnrollerParams::default().with_z(32).validate().unwrap();
        UnrollerParams::default().with_z(1).validate().unwrap();
    }

    #[test]
    fn validation_rejects_zero_counts() {
        assert_eq!(
            UnrollerParams::default().with_c(0).validate(),
            Err(ParamError::NoChunks)
        );
        assert_eq!(
            UnrollerParams::default().with_h(0).validate(),
            Err(ParamError::NoHashes)
        );
        assert_eq!(
            UnrollerParams::default().with_th(0).validate(),
            Err(ParamError::NoThreshold)
        );
    }

    #[test]
    fn validation_rejects_slot_blowup() {
        let p = UnrollerParams::default().with_c(16).with_h(8);
        assert_eq!(p.validate(), Err(ParamError::TooManySlots { slots: 128 }));
    }

    #[test]
    fn thcnt_bits_matches_paper() {
        // Th = 1 needs no counter at all; Th = 4 needs 2 bits (§3.3's
        // "7 + 2 bits of overhead" example uses z = 7, Th = 4).
        assert_eq!(UnrollerParams::default().with_th(1).thcnt_bits(), 0);
        assert_eq!(UnrollerParams::default().with_th(2).thcnt_bits(), 1);
        assert_eq!(UnrollerParams::default().with_th(3).thcnt_bits(), 2);
        assert_eq!(UnrollerParams::default().with_th(4).thcnt_bits(), 2);
        assert_eq!(UnrollerParams::default().with_th(5).thcnt_bits(), 3);
    }

    #[test]
    fn overhead_matches_table3_layout() {
        // Default: 8 (Xcnt) + 32 (one full ID) + 0 (Th = 1).
        assert_eq!(UnrollerParams::default().overhead_bits(), 40);
        // The §3.3 example: z = 7, Th = 4 and Xcnt inferred from TTL
        // costs 7 + 2 = 9 bits.
        let p = UnrollerParams {
            z: 7,
            th: 4,
            xcnt_in_header: false,
            ..UnrollerParams::default()
        };
        assert_eq!(p.overhead_bits(), 9);
        // c = 2, H = 2, z = 8: 8 + 2*2*8 + 0 = 40.
        let p = UnrollerParams::default().with_c(2).with_h(2).with_z(8);
        assert_eq!(p.overhead_bits(), 40);
    }

    #[test]
    fn z_mask_widths() {
        assert_eq!(UnrollerParams::default().with_z(1).z_mask(), 0b1);
        assert_eq!(UnrollerParams::default().with_z(7).z_mask(), 0x7f);
        assert_eq!(UnrollerParams::default().with_z(32).z_mask(), u32::MAX);
    }
}
