//! # unroller-core
//!
//! A from-scratch Rust implementation of **Unroller**, the real-time
//! in-dataplane routing-loop detection algorithm from *"Detecting Routing
//! Loops in the Data Plane"* (Kučera, Ben Basat, Kuka, Antichi, Yu,
//! Mitzenmacher — CoNEXT 2020).
//!
//! ## The idea
//!
//! A routing loop can be detected by a switch that sees its own identifier
//! already recorded on an incoming packet. Recording *every* traversed
//! switch (as INT would) costs header space linear in the path length.
//! Unroller instead records a *varying fixed-size subset* of the path —
//! in the simplest configuration a single switch ID — and still guarantees
//! detection within a constant factor of the trivial lower bound:
//!
//! * The packet's journey is divided into *phases* whose lengths grow
//!   geometrically with base `b` (1, b, b², …).
//! * Within a phase the packet keeps the **minimum** switch ID it has seen.
//! * At the start of each new phase the stored ID is **reset** (overwritten
//!   with the current switch's ID), which unsticks minima that were
//!   recorded on the pre-loop path.
//! * A switch whose ID equals the stored value reports the loop.
//!
//! With `B` hops before the loop, a loop of `L` switches, and `X = B + L`,
//! the deterministic single-ID algorithm detects the loop within `4.67·X`
//! hops for `b = 4` ([`bounds::worst_case_bound`]), while *any*
//! deterministic single-ID algorithm needs at least `≈ 3.73·X` hops in the
//! worst case ([`bounds::LOWER_BOUND_CONSTANT`]).
//!
//! ## Extensions implemented
//!
//! * **Hashed z-bit identifiers** (§3.3): store `z`-bit hashes of switch
//!   IDs instead of the full 32-bit values, trading header bits for a
//!   small false-positive probability.
//! * **Threshold counting `Th`** (§3.3): only report after `Th` matches,
//!   which reduces the false-positive probability exponentially at the
//!   cost of `(Th − 1)·L` extra hops.
//! * **Chunks `c` and multiple hash functions `H`** (§3.4, Appendix B):
//!   store `c·H` identifiers — `c` per-chunk minima for each of `H`
//!   independent hash functions — to cut the expected detection time.
//!
//! ## Crate layout
//!
//! * [`params`] — the [`params::UnrollerParams`] configuration
//!   (`b`, `z`, `c`, `H`, `Th`, phase schedule) with validation.
//! * [`phase`] — phase schedules: the power-boundary schedule used by the
//!   paper's P4 implementation and the cumulative-geometric schedule used
//!   by its analysis.
//! * [`hashing`] — seeded hash families (multiply-shift, SplitMix,
//!   tabulation) for randomizing switch identifiers.
//! * [`detector`] — the [`detector::Unroller`] detector and the
//!   [`detector::InPacketDetector`] trait shared with
//!   the baseline detectors.
//! * [`walk`] — synthetic `B`/`L` walks (the paper's §5 workload
//!   generator) and a detector runner.
//! * [`bounds`] — closed-form bounds from Theorems 1 and 5 and Appendix B,
//!   plus adversarial instance builders used by the property tests.
//! * [`cycle`] — rotation-invariant canonical cycle keys, the one
//!   implementation shared by the analytics loop store and the
//!   federated control plane's loop digests.
//! * [`profile`] — the qualitative design-space classification of Table 1.
//!
//! ## Quick example
//!
//! ```
//! use unroller_core::prelude::*;
//!
//! // Default paper configuration: b = 4, full 32-bit IDs, c = H = Th = 1.
//! let detector = Unroller::from_params(UnrollerParams::default()).unwrap();
//!
//! // A walk with 5 hops before a 20-switch loop (IDs drawn at random).
//! let mut rng = unroller_core::test_rng(7);
//! let walk = Walk::random(5, 20, &mut rng);
//!
//! let outcome = run_detector(&detector, &walk, 10_000);
//! let hops = outcome.reported_at.expect("loops are always detected");
//! assert!(outcome.true_positive);
//! // Detection within the worst-case bound of Theorem 1.
//! assert!(hops as f64 <= 4.67 * walk.x() as f64 + 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod cycle;
pub mod detector;
pub mod hashing;
pub mod params;
pub mod phase;
pub mod profile;
pub mod walk;

/// A switch identifier.
///
/// The paper models switch identifiers as uniformly random 32-bit values;
/// when identifiers are not random (e.g. sequentially assigned by an
/// operator), Unroller hashes them first (see [`hashing`]).
pub type SwitchId = u32;

pub use cycle::CycleKey;
pub use detector::{InPacketDetector, Unroller, UnrollerState, Verdict};
pub use params::{ParamError, UnrollerParams};
pub use phase::PhaseSchedule;
pub use walk::{run_detector, DetectionOutcome, Walk};

/// Convenience prelude re-exporting the types most users need.
pub mod prelude {
    pub use crate::bounds;
    pub use crate::detector::{InPacketDetector, Unroller, UnrollerState, Verdict};
    pub use crate::hashing::{HashFamily, HashKind};
    pub use crate::params::UnrollerParams;
    pub use crate::phase::PhaseSchedule;
    pub use crate::profile::{DetectorProfile, OverheadLevel};
    pub use crate::walk::{run_detector, DetectionOutcome, Walk};
    pub use crate::SwitchId;
}

/// A small deterministic RNG for examples and tests.
///
/// This is a seeded [`rand::rngs::StdRng`]; identical seeds produce
/// identical walks, which keeps doctests and experiments reproducible.
pub fn test_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
