//! Canonical forwarding-cycle keys, shared by every layer that names
//! loops.
//!
//! A loop's membership arrives as the cycle's switch IDs *in traversal
//! order from whichever switch happened to trigger detection* — two
//! observations of the same loop are rotations of one another.
//! [`CycleKey`] canonicalizes rotation away (and only rotation: a cycle
//! and its reversal are different forwarding states), so every starting
//! point maps to one key. The analytics loop store keys its persistent
//! records by it, and the federated control plane's loop-membership
//! digests use the same keys so digests from different domains merge
//! into one entry; both consume this single implementation (no
//! copy-paste), which is property-tested below.

/// A forwarding cycle in canonical rotation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CycleKey(Vec<u32>);

impl CycleKey {
    /// Canonicalizes `members`: among all rotations, the
    /// lexicographically smallest (so the minimal switch ID comes
    /// first; ties between equal minimal IDs resolve by comparing whole
    /// rotations). Every rotation of the same cycle maps to the same
    /// key; reversals do not, deliberately — the reverse cycle is a
    /// different forwarding state.
    pub fn canonicalize(members: &[u32]) -> CycleKey {
        if members.is_empty() {
            return CycleKey(Vec::new());
        }
        let min = *members.iter().min().expect("non-empty");
        let mut best: Option<Vec<u32>> = None;
        for (i, &m) in members.iter().enumerate() {
            if m != min {
                continue;
            }
            let mut rotation = Vec::with_capacity(members.len());
            rotation.extend_from_slice(&members[i..]);
            rotation.extend_from_slice(&members[..i]);
            if best.as_ref().is_none_or(|b| rotation < *b) {
                best = Some(rotation);
            }
        }
        CycleKey(best.expect("at least one rotation starts at the minimum"))
    }

    /// The canonical member sequence.
    pub fn members(&self) -> &[u32] {
        &self.0
    }

    /// Cycle length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the cycle is empty (an event with no membership).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rotations_share_one_key() {
        let base = CycleKey::canonicalize(&[104, 101, 103]);
        assert_eq!(base.members(), &[101, 103, 104]);
        assert_eq!(CycleKey::canonicalize(&[101, 103, 104]), base);
        assert_eq!(CycleKey::canonicalize(&[103, 104, 101]), base);
        // The reversal is a *different* forwarding cycle.
        assert_ne!(CycleKey::canonicalize(&[104, 103, 101]), base);
    }

    #[test]
    fn duplicate_minimum_ties_break_lexicographically() {
        // Rotations of [1, 9, 1, 2]: starting at either 1 gives
        // [1, 9, 1, 2] and [1, 2, 1, 9]; the latter is smaller.
        let k = CycleKey::canonicalize(&[1, 9, 1, 2]);
        assert_eq!(k.members(), &[1, 2, 1, 9]);
        assert_eq!(CycleKey::canonicalize(&[9, 1, 2, 1]), k);
        assert_eq!(CycleKey::canonicalize(&[2, 1, 9, 1]), k);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(CycleKey::canonicalize(&[]).is_empty());
        assert_eq!(CycleKey::canonicalize(&[7]).members(), &[7]);
        assert_eq!(CycleKey::canonicalize(&[7]).len(), 1);
    }

    proptest! {
        #[test]
        fn every_rotation_maps_to_the_same_key(
            members in prop::collection::vec(0u32..64, 1..10),
            rot in 0usize..10,
        ) {
            let base = CycleKey::canonicalize(&members);
            let r = rot % members.len();
            let mut rotated = members[r..].to_vec();
            rotated.extend_from_slice(&members[..r]);
            prop_assert_eq!(CycleKey::canonicalize(&rotated), base);
        }

        #[test]
        fn canonicalization_is_idempotent_and_preserves_multiset(
            members in prop::collection::vec(0u32..64, 1..10),
        ) {
            let key = CycleKey::canonicalize(&members);
            prop_assert_eq!(
                CycleKey::canonicalize(key.members()),
                key.clone()
            );
            let mut a = members.clone();
            let mut b = key.members().to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "canonicalization only rotates");
            prop_assert_eq!(key.members()[0], *members.iter().min().unwrap());
        }
    }
}
