//! Seeded hash families for randomizing switch identifiers.
//!
//! The average-case analysis (§3.2) assumes each switch is equally likely
//! to hold the minimum identifier. When operator-assigned IDs are not
//! random, Unroller hashes them; and to compress identifiers to `z` bits
//! (§3.3) or run with `H` independent functions (Appendix B) it needs a
//! *family* of independent hash functions that every switch evaluates
//! identically (they share the seed, distributed by the controller).
//!
//! Three families are provided, all implementable in a programmable
//! dataplane:
//!
//! * [`HashKind::MultiplyShift`] — the classic universal
//!   `h(x) = (a·x + b) >> (64 − 32)` with odd `a`; one multiply per hash.
//! * [`HashKind::SplitMix`] — a SplitMix64-style avalanche mix of
//!   `x ⊕ seed`; strong bit diffusion, three multiplies.
//! * [`HashKind::Tabulation`] — 4-way tabulation hashing (four 256-entry
//!   tables XORed); 3-independent and matches what FPGA targets do with
//!   block RAM.
//! * [`HashKind::Identity`] — pass-through, for the `z = 32` "store the
//!   raw ID" configuration where the paper's simulator already draws IDs
//!   uniformly at random.

use crate::SwitchId;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// Selects a hash family implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum HashKind {
    /// Pass the identifier through unchanged (only sensible with `H = 1`).
    Identity,
    /// Multiply-shift universal hashing (`(a·x + b) >> 32` over u64).
    MultiplyShift,
    /// SplitMix64 finalizer applied to `x ⊕ seed`.
    #[default]
    SplitMix,
    /// 4-way tabulation hashing.
    Tabulation,
}

/// A seeded family of `H` independent hash functions
/// `h_i : SwitchId → u32`.
///
/// Cloning is cheap for all kinds except [`HashKind::Tabulation`], which
/// owns `H · 4 · 256` table entries.
#[derive(Debug, Clone)]
pub struct HashFamily {
    kind: HashKind,
    /// Per-function parameters.
    funcs: Vec<FuncParams>,
}

#[derive(Debug, Clone)]
enum FuncParams {
    Identity,
    MultiplyShift { a: u64, b: u64 },
    SplitMix { seed: u64 },
    Tabulation { tables: Box<[[u32; 256]; 4]> },
}

impl HashFamily {
    /// Creates a family of `h` independent functions of the given kind,
    /// seeded deterministically from `seed`.
    pub fn new(kind: HashKind, h: u32, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x756e_726f_6c6c_6572); // "unroller"
        let funcs = (0..h)
            .map(|_| match kind {
                HashKind::Identity => FuncParams::Identity,
                HashKind::MultiplyShift => FuncParams::MultiplyShift {
                    a: rng.gen::<u64>() | 1,
                    b: rng.gen::<u64>(),
                },
                HashKind::SplitMix => FuncParams::SplitMix { seed: rng.gen() },
                HashKind::Tabulation => {
                    let mut tables = Box::new([[0u32; 256]; 4]);
                    for t in tables.iter_mut() {
                        for e in t.iter_mut() {
                            *e = rng.next_u32();
                        }
                    }
                    FuncParams::Tabulation { tables }
                }
            })
            .collect();
        HashFamily { kind, funcs }
    }

    /// The family used when no hashing is wanted (`H = 1`, identity).
    pub fn identity() -> Self {
        HashFamily::new(HashKind::Identity, 1, 0)
    }

    /// The default family for a `(z, H)` configuration: the identity for
    /// the uncompressed single-hash case (`z = 32`, `H = 1`, where the
    /// evaluation's switch IDs are already uniform), a fixed-seed
    /// SplitMix family otherwise. Both the software detector
    /// ([`crate::Unroller::from_params`]) and the dataplane pipeline
    /// model derive their family from here, so they hash identically.
    pub fn default_for(z: u32, h: u32) -> Self {
        if z == 32 && h == 1 {
            Self::identity()
        } else {
            Self::new(HashKind::SplitMix, h, 0x1badb002)
        }
    }

    /// Which implementation this family uses.
    pub fn kind(&self) -> HashKind {
        self.kind
    }

    /// Number of functions in the family (`H`).
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True if the family is empty (never the case for validated params).
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Evaluates function `func` on `id`, returning the full 32-bit
    /// output. Callers mask to `z` bits.
    ///
    /// # Panics
    ///
    /// Panics if `func >= self.len()`.
    #[inline]
    pub fn hash(&self, func: usize, id: SwitchId) -> u32 {
        match &self.funcs[func] {
            FuncParams::Identity => id,
            FuncParams::MultiplyShift { a, b } => {
                (a.wrapping_mul(id as u64).wrapping_add(*b) >> 32) as u32
            }
            FuncParams::SplitMix { seed } => {
                let mut x = (id as u64) ^ seed;
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                x as u32
            }
            FuncParams::Tabulation { tables } => {
                let b = id.to_le_bytes();
                tables[0][b[0] as usize]
                    ^ tables[1][b[1] as usize]
                    ^ tables[2][b[2] as usize]
                    ^ tables[3][b[3] as usize]
            }
        }
    }

    /// Evaluates every function in the family on `id`, masking each
    /// output to `z` bits, into `out` (which must have length `H`).
    #[inline]
    pub fn hash_all_into(&self, id: SwitchId, z_mask: u32, out: &mut [u32]) {
        debug_assert_eq!(out.len(), self.funcs.len());
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.hash(i, id) & z_mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> [HashKind; 4] {
        [
            HashKind::Identity,
            HashKind::MultiplyShift,
            HashKind::SplitMix,
            HashKind::Tabulation,
        ]
    }

    #[test]
    fn deterministic_across_instances() {
        for kind in kinds() {
            let f1 = HashFamily::new(kind, 4, 42);
            let f2 = HashFamily::new(kind, 4, 42);
            for func in 0..4 {
                for id in [0u32, 1, 7, 0xdead_beef, u32::MAX] {
                    assert_eq!(f1.hash(func, id), f2.hash(func, id), "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        for kind in [
            HashKind::MultiplyShift,
            HashKind::SplitMix,
            HashKind::Tabulation,
        ] {
            let f1 = HashFamily::new(kind, 1, 1);
            let f2 = HashFamily::new(kind, 1, 2);
            let diffs = (0..1000u32)
                .filter(|&x| f1.hash(0, x) != f2.hash(0, x))
                .count();
            assert!(diffs > 900, "{kind:?}: only {diffs} of 1000 outputs differ");
        }
    }

    #[test]
    fn functions_within_family_are_independent_looking() {
        for kind in [
            HashKind::MultiplyShift,
            HashKind::SplitMix,
            HashKind::Tabulation,
        ] {
            let f = HashFamily::new(kind, 2, 7);
            let diffs = (0..1000u32)
                .filter(|&x| f.hash(0, x) != f.hash(1, x))
                .count();
            assert!(diffs > 900, "{kind:?}: functions 0 and 1 nearly identical");
        }
    }

    #[test]
    fn identity_passes_through() {
        let f = HashFamily::identity();
        for id in [0u32, 5, 1 << 31, u32::MAX] {
            assert_eq!(f.hash(0, id), id);
        }
    }

    #[test]
    fn output_distribution_is_roughly_uniform() {
        // Chi-squared-ish sanity check on the low byte: with 65536 samples
        // over 256 buckets the expected count is 256 per bucket; allow a
        // wide band since this is a smoke test, not a statistics suite.
        for kind in [
            HashKind::MultiplyShift,
            HashKind::SplitMix,
            HashKind::Tabulation,
        ] {
            let f = HashFamily::new(kind, 1, 99);
            let mut buckets = [0u32; 256];
            for x in 0..65536u32 {
                buckets[(f.hash(0, x) & 0xff) as usize] += 1;
            }
            for (i, &count) in buckets.iter().enumerate() {
                assert!(
                    (100..=500).contains(&count),
                    "{kind:?}: bucket {i} has {count} hits (expected ~256)"
                );
            }
        }
    }

    #[test]
    fn mask_limits_output_width() {
        let f = HashFamily::new(HashKind::SplitMix, 3, 5);
        let mut out = [0u32; 3];
        for id in 0..100u32 {
            f.hash_all_into(id, 0x7f, &mut out);
            assert!(out.iter().all(|&v| v <= 0x7f));
        }
    }

    #[test]
    fn collision_rate_matches_z_bits() {
        // With z = 8 two random distinct IDs collide with probability
        // ~2^-8. Check the empirical rate over 100k pairs is in a
        // generous band around 1/256.
        let f = HashFamily::new(HashKind::SplitMix, 1, 11);
        let mut rng = crate::test_rng(3);
        let mut collisions = 0u32;
        let trials = 100_000;
        for _ in 0..trials {
            let a: u32 = rng.gen();
            let b: u32 = rng.gen();
            if a != b && (f.hash(0, a) & 0xff) == (f.hash(0, b) & 0xff) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        assert!((0.002..0.006).contains(&rate), "collision rate {rate}");
    }
}
