//! Qualitative design-space classification (the paper's Table 1).
//!
//! Loop-detection proposals fall into four categories depending on where
//! the detection information lives; each category trades switch state,
//! network bandwidth, and real-time capability differently. The
//! [`DetectorProfile`] of every detector in this workspace reproduces the
//! row it occupies in Table 1, and the `table1` experiment binary prints
//! the assembled table.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse overhead classification used by Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverheadLevel {
    /// Negligible or constant overhead.
    Low,
    /// Overhead that grows with traffic volume, path length, or flow
    /// count.
    High,
}

impl fmt::Display for OverheadLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` (not `write!`) so callers' width/alignment specifiers
        // apply when laying out Table 1.
        f.pad(match self {
            OverheadLevel::Low => "low",
            OverheadLevel::High => "high",
        })
    }
}

/// Where a solution keeps the information needed to detect loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Category {
    /// Per-flow state on switches, periodically exported (FlowRadar,
    /// hash-based IP traceback).
    OnSwitchState,
    /// Mirroring packet headers to collectors (NetSight, Everflow,
    /// trajectory sampling).
    HeaderMirroring,
    /// The full path encoded on each packet (INT, TPP, PathDump).
    FullPathEncodingOnPackets,
    /// A bounded-size subset of the path encoded on each packet
    /// (Unroller).
    PartialEncodingOnPackets,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Category::OnSwitchState => "on-switch state",
            Category::HeaderMirroring => "header mirroring",
            Category::FullPathEncodingOnPackets => "full path encoding on packets",
            Category::PartialEncodingOnPackets => "partial encoding on packets",
        })
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorProfile {
    /// Solution name.
    pub name: &'static str,
    /// Design-space category.
    pub category: Category,
    /// Can the loop be detected while the packet is still in flight
    /// (enabling selective reporting and active rerouting)?
    pub real_time: bool,
    /// Overhead imposed on switch resources (SRAM, pipeline stages).
    pub switch_overhead: OverheadLevel,
    /// Overhead imposed on the network (header bits, mirrored traffic).
    pub network_overhead: OverheadLevel,
}

impl fmt::Display for DetectorProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} | {:<30} | {:^9} | {:^6} | {:^7}",
            self.name,
            self.category,
            if self.real_time { "yes" } else { "no" },
            self.switch_overhead,
            self.network_overhead,
        )
    }
}

/// Profiles of the solutions Table 1 lists that are *not* implemented as
/// runnable detectors in this workspace (they are not in-packet
/// real-time mechanisms, so there is nothing to execute per hop). Kept so
/// the `table1` binary can print the complete published table.
pub fn literature_profiles() -> Vec<DetectorProfile> {
    use Category::*;
    use OverheadLevel::*;
    vec![
        DetectorProfile {
            name: "FlowRadar",
            category: OnSwitchState,
            real_time: false,
            switch_overhead: High,
            network_overhead: Low,
        },
        DetectorProfile {
            name: "HashIPTrace",
            category: OnSwitchState,
            real_time: false,
            switch_overhead: High,
            network_overhead: Low,
        },
        DetectorProfile {
            name: "NetSight",
            category: HeaderMirroring,
            real_time: false,
            switch_overhead: Low,
            network_overhead: High,
        },
        DetectorProfile {
            name: "Everflow",
            category: HeaderMirroring,
            real_time: false,
            switch_overhead: Low,
            network_overhead: High,
        },
        DetectorProfile {
            name: "TrajSampling",
            category: HeaderMirroring,
            real_time: false,
            switch_overhead: Low,
            network_overhead: High,
        },
        DetectorProfile {
            name: "TPP",
            category: FullPathEncodingOnPackets,
            real_time: true,
            switch_overhead: Low,
            network_overhead: High,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_invariants() {
        // Every on-switch-state solution in the literature set is not
        // real-time and has high switch overhead; every mirroring /
        // full-path solution has high network overhead.
        for p in literature_profiles() {
            match p.category {
                Category::OnSwitchState => {
                    assert!(!p.real_time);
                    assert_eq!(p.switch_overhead, OverheadLevel::High);
                    assert_eq!(p.network_overhead, OverheadLevel::Low);
                }
                Category::HeaderMirroring => {
                    assert!(!p.real_time);
                    assert_eq!(p.network_overhead, OverheadLevel::High);
                }
                Category::FullPathEncodingOnPackets => {
                    assert!(p.real_time);
                    assert_eq!(p.network_overhead, OverheadLevel::High);
                }
                Category::PartialEncodingOnPackets => {}
            }
        }
    }

    #[test]
    fn display_renders_row() {
        let p = literature_profiles()[0];
        let row = p.to_string();
        assert!(row.contains("FlowRadar"));
        assert!(row.contains("on-switch state"));
    }
}
