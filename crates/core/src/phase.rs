//! Phase schedules: when does the stored identifier reset?
//!
//! Unroller's key trick is to divide a packet's journey into *phases*
//! whose lengths grow geometrically with base `b`, and to overwrite
//! ("reset") the stored identifier at the start of every phase. The paper
//! uses two slightly different schedules:
//!
//! * **Analysis schedule** ([`PhaseSchedule::CumulativeGeometric`], §3):
//!   the *i*-th phase lasts exactly `bⁱ` hops, so phase boundaries fall at
//!   cumulative sums `(bᵖ − 1)/(b − 1)`. Theorem 1's constants
//!   (`≤ 4.67·X` for `b = 4`) are proved for this schedule.
//!
//! * **Implementation schedule** ([`PhaseSchedule::PowerBoundary`], §4):
//!   the identifier resets whenever the hop counter `Xcnt` equals a power
//!   of `b`. For `b = 2` or `b = 4` this is a single bitwise test in
//!   hardware, which is why the P4 prototype uses it. Phase `k` spans hops
//!   `bᵏ ..= bᵏ⁺¹ − 1` and lasts `bᵏ·(b − 1)` hops — still geometric
//!   growth, so the same asymptotics hold with different constants.
//!
//! Both schedules also support the Appendix B *chunk* partition: each
//! phase is split into `c` chunks with boundaries at
//! `⌊len·j/c⌋` for `j = 0..c`, and each chunk tracks its own minimum.

use serde::{Deserialize, Serialize};

/// Which rule decides where phases begin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PhaseSchedule {
    /// Reset when `Xcnt` is a power of `b` (the paper's P4/FPGA
    /// implementation; the default).
    #[default]
    PowerBoundary,
    /// The *i*-th phase lasts `bⁱ` hops (the paper's analysis; Theorem 1
    /// constants apply to this schedule exactly).
    CumulativeGeometric,
}

/// Where a given hop falls within the phase/chunk structure.
///
/// Hops are numbered from 1 (the value of `Xcnt` *after* the increment a
/// switch performs on packet arrival).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopPosition {
    /// Phase index (0-based).
    pub phase: u32,
    /// First hop number belonging to this phase.
    pub phase_start: u64,
    /// Number of hops in this phase.
    pub phase_len: u64,
    /// Chunk index within the phase (0-based, `< c`).
    pub chunk: u32,
    /// First hop number belonging to this chunk.
    pub chunk_start: u64,
}

impl HopPosition {
    /// True if `xcnt` is the first hop of its phase (identifier reset).
    pub fn is_phase_start(&self, xcnt: u64) -> bool {
        xcnt == self.phase_start
    }

    /// True if `xcnt` is the first hop of its chunk (that chunk's slot is
    /// overwritten rather than min-updated).
    pub fn is_chunk_start(&self, xcnt: u64) -> bool {
        xcnt == self.chunk_start
    }
}

impl PhaseSchedule {
    /// Locates hop number `xcnt` (1-based) in the phase/chunk structure
    /// for base `b` and `c` chunks per phase.
    ///
    /// # Panics
    ///
    /// Panics if `xcnt == 0`, `b < 2` or `c == 0` — these are rejected by
    /// [`crate::params::UnrollerParams::validate`] before any detector is
    /// constructed.
    pub fn position(self, xcnt: u64, b: u32, c: u32) -> HopPosition {
        assert!(xcnt >= 1, "hop numbers are 1-based");
        assert!(b >= 2, "phase base must be at least 2");
        assert!(c >= 1, "chunk count must be at least 1");
        let b = b as u64;
        let (phase, phase_start, phase_len) = match self {
            PhaseSchedule::PowerBoundary => {
                // Phase k spans [b^k, b^{k+1} - 1].
                let mut k = 0u32;
                let mut start = 1u64; // b^0
                loop {
                    let next = start.saturating_mul(b);
                    if xcnt < next || next == start {
                        // `next == start` only when multiplication
                        // saturated at u64::MAX; treat the rest of the hop
                        // line as one final phase.
                        break (k, start, if next == start { 1 } else { next - start });
                    }
                    k += 1;
                    start = next;
                }
            }
            PhaseSchedule::CumulativeGeometric => {
                // Phase i spans [(b^i - 1)/(b-1) + 1, (b^{i+1} - 1)/(b-1)]
                // and lasts b^i hops.
                let mut i = 0u32;
                let mut start = 1u64;
                let mut len = 1u64; // b^0
                loop {
                    let end = start.saturating_add(len - 1);
                    if xcnt <= end {
                        break (i, start, len);
                    }
                    i += 1;
                    start = end + 1;
                    len = len.saturating_mul(b);
                }
            }
        };

        let (chunk, chunk_start) = chunk_of(xcnt - phase_start, phase_len, c);
        HopPosition {
            phase,
            phase_start,
            phase_len,
            chunk,
            chunk_start: phase_start + chunk_start,
        }
    }

    /// True if hop `xcnt` starts a new phase. For the power-boundary
    /// schedule with `b` a power of two this reduces to the bitwise check
    /// the hardware uses (a single `is_power_of_b` test on the counter).
    pub fn is_phase_start(self, xcnt: u64, b: u32) -> bool {
        self.position(xcnt, b, 1).phase_start == xcnt
    }

    /// Builds the phase-start lookup table the BMv2/FPGA implementation
    /// keeps for bases that are not powers of two (§4 "Compiling Unroller
    /// to programmable switches"): `table[x] == true` iff hop `x` starts a
    /// new phase. Index 0 is unused (hops are 1-based).
    pub fn phase_start_table(self, b: u32, size: usize) -> Vec<bool> {
        let mut table = vec![false; size];
        for (x, slot) in table.iter_mut().enumerate().skip(1) {
            *slot = self.is_phase_start(x as u64, b);
        }
        table
    }

    /// Builds the chunk-index lookup table the implementation keeps when
    /// `c > 1`: `table[x]` is the 0-based chunk hop `x` falls in. Index 0
    /// is unused (hops are 1-based). Both the controller's provisioning
    /// script and the `unroller-verify` phase-table pass derive their
    /// expected values from this single source.
    pub fn chunk_table(self, b: u32, c: u32, size: usize) -> Vec<u8> {
        let mut table = vec![0u8; size];
        for (x, slot) in table.iter_mut().enumerate().skip(1) {
            *slot = self.position(x as u64, b, c).chunk as u8;
        }
        table
    }
}

/// Locates 0-based offset `off` within a phase of `len` hops split into
/// `c` chunks with boundaries at `⌊len·j/c⌋`. Returns the chunk index and
/// the chunk's starting offset.
fn chunk_of(off: u64, len: u64, c: u32) -> (u32, u64) {
    debug_assert!(off < len);
    if c == 1 {
        return (0, 0);
    }
    let c = c as u128;
    let (off_w, len_w) = (off as u128, len as u128);
    // chunk j covers offsets [⌊len·j/c⌋, ⌊len·(j+1)/c⌋); pick the largest
    // j with ⌊len·j/c⌋ <= off, i.e. j = ⌊((off+1)·c − 1) / len⌋.
    // 128-bit intermediates: off·c can exceed u64 near the hop-count cap.
    let j = (((off_w + 1) * c - 1) / len_w).min(c - 1);
    // The chunk's first offset is the smallest off' with ⌊len·j/c⌋ <= off':
    let start = (len_w * j / c) as u64;
    let j = j as u64;
    debug_assert!(start <= off);
    (j as u32, start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_boundary_resets_at_powers() {
        let s = PhaseSchedule::PowerBoundary;
        for b in [2u32, 3, 4, 6, 8] {
            for x in 1u64..2000 {
                let expected = {
                    // x is a power of b?
                    let mut p = 1u64;
                    loop {
                        if p == x {
                            break true;
                        }
                        if p > x {
                            break false;
                        }
                        p *= b as u64;
                    }
                };
                assert_eq!(s.is_phase_start(x, b), expected, "b={b} x={x}");
            }
        }
    }

    #[test]
    fn cumulative_geometric_phase_lengths() {
        let s = PhaseSchedule::CumulativeGeometric;
        // For b = 4 phases last 1, 4, 16, 64 hops: boundaries at
        // 1, 2, 6, 22, 86.
        for (x, (phase, start, len)) in [
            (1u64, (0u32, 1u64, 1u64)),
            (2, (1, 2, 4)),
            (5, (1, 2, 4)),
            (6, (2, 6, 16)),
            (21, (2, 6, 16)),
            (22, (3, 22, 64)),
            (85, (3, 22, 64)),
            (86, (4, 86, 256)),
        ] {
            let pos = s.position(x, 4, 1);
            assert_eq!(
                (pos.phase, pos.phase_start, pos.phase_len),
                (phase, start, len),
                "x={x}"
            );
        }
    }

    #[test]
    fn power_boundary_phase_lengths() {
        let s = PhaseSchedule::PowerBoundary;
        // For b = 4: phase 0 = [1,3], phase 1 = [4,15], phase 2 = [16,63].
        for (x, (phase, start, len)) in [
            (1u64, (0u32, 1u64, 3u64)),
            (3, (0, 1, 3)),
            (4, (1, 4, 12)),
            (15, (1, 4, 12)),
            (16, (2, 16, 48)),
            (63, (2, 16, 48)),
            (64, (3, 64, 192)),
        ] {
            let pos = s.position(x, 4, 1);
            assert_eq!(
                (pos.phase, pos.phase_start, pos.phase_len),
                (phase, start, len),
                "x={x}"
            );
        }
    }

    #[test]
    fn phases_partition_the_hop_line() {
        // Every hop belongs to exactly one phase; phases are contiguous.
        for schedule in [
            PhaseSchedule::PowerBoundary,
            PhaseSchedule::CumulativeGeometric,
        ] {
            for b in [2u32, 3, 4, 7] {
                let mut prev = schedule.position(1, b, 1);
                assert_eq!(prev.phase_start, 1);
                for x in 2u64..5000 {
                    let pos = schedule.position(x, b, 1);
                    if pos.phase == prev.phase {
                        assert_eq!(pos.phase_start, prev.phase_start);
                        assert_eq!(pos.phase_len, prev.phase_len);
                    } else {
                        assert_eq!(pos.phase, prev.phase + 1, "phases advance one at a time");
                        assert_eq!(
                            pos.phase_start,
                            prev.phase_start + prev.phase_len,
                            "no gaps between phases (schedule {schedule:?}, b={b}, x={x})"
                        );
                    }
                    prev = pos;
                }
            }
        }
    }

    #[test]
    fn chunks_partition_each_phase() {
        for schedule in [
            PhaseSchedule::PowerBoundary,
            PhaseSchedule::CumulativeGeometric,
        ] {
            for b in [2u32, 4] {
                for c in [1u32, 2, 3, 4, 8] {
                    let mut prev: Option<HopPosition> = None;
                    for x in 1u64..2000 {
                        let pos = schedule.position(x, b, c);
                        assert!(pos.chunk < c);
                        assert!(pos.chunk_start <= x);
                        assert!(pos.chunk_start >= pos.phase_start);
                        if let Some(p) = prev {
                            if pos.phase == p.phase {
                                // Chunk indices never decrease within a phase.
                                assert!(pos.chunk >= p.chunk);
                            } else {
                                // A new phase restarts chunks at the first
                                // non-empty chunk (chunk 0 when len >= c).
                                if pos.phase_len >= c as u64 {
                                    assert_eq!(pos.chunk, 0, "x={x} b={b} c={c}");
                                }
                            }
                        }
                        prev = Some(pos);
                    }
                }
            }
        }
    }

    #[test]
    fn chunk_boundaries_match_paper_formula() {
        // Appendix B: chunk j gets hops ⌊len·(j−1)/c⌋ .. ⌊len·j/c⌋ − 1
        // (1-based j). Check against the closed form directly.
        for len in 1u64..200 {
            for c in 1u32..=8 {
                for off in 0..len {
                    let (j, start) = chunk_of(off, len, c);
                    let lo = len * j as u64 / c as u64;
                    let hi = len * (j as u64 + 1) / c as u64;
                    assert!(
                        lo <= off && (off < hi || j as u64 == c as u64 - 1),
                        "off={off} len={len} c={c} j={j} lo={lo} hi={hi}"
                    );
                    assert_eq!(start, lo);
                }
            }
        }
    }

    #[test]
    fn lookup_table_matches_direct_check() {
        // The 256-entry table used on BMv2 must agree with the bitwise
        // check for b = 4 and with the direct computation for b = 3.
        for b in [2u32, 3, 4, 5] {
            let table = PhaseSchedule::PowerBoundary.phase_start_table(b, 256);
            for x in 1..256u64 {
                assert_eq!(
                    table[x as usize],
                    PhaseSchedule::PowerBoundary.is_phase_start(x, b)
                );
            }
        }
        // For b = 4 the table marks exactly the powers of 4.
        let table = PhaseSchedule::PowerBoundary.phase_start_table(4, 256);
        let marked: Vec<usize> = (0..256).filter(|&i| table[i]).collect();
        assert_eq!(marked, vec![1, 4, 16, 64]);
    }

    #[test]
    fn chunk_table_matches_position() {
        for schedule in [
            PhaseSchedule::PowerBoundary,
            PhaseSchedule::CumulativeGeometric,
        ] {
            for (b, c) in [(4u32, 2u32), (3, 4), (2, 8), (6, 3)] {
                let t = schedule.chunk_table(b, c, 256);
                assert_eq!(t[0], 0, "index 0 unused");
                for x in 1..256u64 {
                    assert_eq!(
                        t[x as usize],
                        schedule.position(x, b, c).chunk as u8,
                        "schedule {schedule:?} b={b} c={c} x={x}"
                    );
                }
            }
        }
    }

    #[test]
    fn saturation_does_not_panic_at_huge_hop_counts() {
        for schedule in [
            PhaseSchedule::PowerBoundary,
            PhaseSchedule::CumulativeGeometric,
        ] {
            let pos = schedule.position(u64::MAX / 2, 2, 4);
            assert!(pos.phase_len > 0);
        }
    }
}
