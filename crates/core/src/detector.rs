//! The Unroller detector and the common in-packet detector interface.
//!
//! All detectors in this workspace (Unroller and the baselines in
//! `unroller-baselines`) share the [`InPacketDetector`] trait: a detector
//! is configuration that lives on switches, while its
//! [`State`](InPacketDetector::State) is the small record carried *on the
//! packet*. Each switch the packet traverses calls
//! [`on_switch`](InPacketDetector::on_switch) exactly once, mutating the
//! packet-carried state and possibly reporting a loop.

use crate::hashing::HashFamily;
use crate::params::{ParamError, UnrollerParams};
use crate::profile::{Category, DetectorProfile, OverheadLevel};
use crate::SwitchId;

/// Maximum number of identifier slots (`c · H`) a packet may carry;
/// enforced by [`UnrollerParams::validate`].
pub const MAX_SLOTS: usize = 64;

/// The outcome of processing one packet at one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No loop evidence (yet); forward the packet normally.
    Continue,
    /// This switch reports a routing loop: the packet carries evidence
    /// that it has visited this switch (or a hash-colliding one) before.
    LoopReported,
}

impl Verdict {
    /// True if this verdict reports a loop.
    pub fn reported(self) -> bool {
        matches!(self, Verdict::LoopReported)
    }
}

/// A loop detector whose working state travels on the packet.
///
/// Implementations must be *deterministic* given their configuration:
/// two switches holding the same configuration must behave identically,
/// because in a real deployment the controller installs the same
/// parameters (including hash seeds) on every switch.
pub trait InPacketDetector {
    /// The per-packet record (what a real deployment encodes into the
    /// packet header; see `unroller-dataplane` for the bit-exact layout).
    type State: Clone + std::fmt::Debug;

    /// Human-readable detector name (used in experiment output).
    fn name(&self) -> &'static str;

    /// The state a packet carries when it leaves its source host.
    fn init_state(&self) -> Self::State;

    /// Resets existing state in place (allows allocation reuse in the
    /// multi-million-run experiment loops).
    fn reset_state(&self, state: &mut Self::State) {
        *state = self.init_state();
    }

    /// Processes the packet at a switch: inspects/updates the carried
    /// state and decides whether this switch reports a loop.
    fn on_switch(&self, state: &mut Self::State, switch: SwitchId) -> Verdict;

    /// Per-packet overhead in bits after `hops` hops.
    ///
    /// Constant for Unroller, Bloom-filter and PathDump encodings; linear
    /// in `hops` for INT-style full path recording.
    fn overhead_bits(&self, hops: u64) -> u64;

    /// The qualitative design-space classification (paper Table 1).
    fn profile(&self) -> DetectorProfile;
}

/// The per-packet record of the Unroller algorithm (paper Table 3).
///
/// | field | bits on the wire |
/// |---|---|
/// | `xcnt` | 8 (or 0 when inferred from TTL) |
/// | `swids` | `c · H · z` |
/// | `thcnt` | `⌈log₂ Th⌉` |
///
/// The `occupied` bitmask is *not* carried on the wire: in a real header
/// the slots are initialized by the first hop of each chunk, and before
/// that they hold no meaningful value. Carrying occupancy here keeps the
/// software model exact without biasing matches toward a sentinel value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnrollerState {
    /// Hop counter (`Xcnt`): number of switches traversed so far.
    pub xcnt: u64,
    /// Stored identifier slots, indexed `hash_index · c + chunk_index`.
    pub swids: Vec<u32>,
    /// Bitmask of slots that have been written since the packet left its
    /// source.
    pub occupied: u64,
    /// Threshold counter (`Thcnt`): matches seen so far.
    pub thcnt: u32,
}

impl UnrollerState {
    fn new(slots: usize) -> Self {
        UnrollerState {
            xcnt: 0,
            swids: vec![0; slots],
            occupied: 0,
            thcnt: 0,
        }
    }

    fn clear(&mut self) {
        self.xcnt = 0;
        self.occupied = 0;
        self.thcnt = 0;
        // swids need no clearing: occupancy gates every read.
    }
}

/// The Unroller loop detector (paper §3–§4).
///
/// Holds the run-time configuration every switch shares: the parameters
/// of [`UnrollerParams`] plus the seeded [`HashFamily`].
///
/// ```
/// use unroller_core::prelude::*;
///
/// let det = Unroller::from_params(UnrollerParams::default()).unwrap();
/// let mut state = det.init_state();
///
/// // A two-switch loop: 7 → 9 → 7 → …
/// assert_eq!(det.on_switch(&mut state, 7), Verdict::Continue);
/// assert_eq!(det.on_switch(&mut state, 9), Verdict::Continue);
/// assert_eq!(det.on_switch(&mut state, 7), Verdict::LoopReported);
/// ```
#[derive(Debug, Clone)]
pub struct Unroller {
    params: UnrollerParams,
    hashes: HashFamily,
}

impl Unroller {
    /// Builds a detector from validated parameters, choosing a default
    /// hash family: the identity for the uncompressed single-hash
    /// configuration (`z = 32`, `H = 1`), a seeded SplitMix family
    /// otherwise.
    pub fn from_params(params: UnrollerParams) -> Result<Self, ParamError> {
        params.validate()?;
        let hashes = HashFamily::default_for(params.z, params.h);
        Ok(Unroller { params, hashes })
    }

    /// Builds a detector with an explicit hash family (e.g. a fresh seed
    /// per experiment batch, or a different [`crate::hashing::HashKind`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if the parameters are inconsistent, and
    /// [`ParamError::NoHashes`] if the family size differs from
    /// `params.h`.
    pub fn with_hashes(params: UnrollerParams, hashes: HashFamily) -> Result<Self, ParamError> {
        params.validate()?;
        if hashes.len() != params.h as usize {
            return Err(ParamError::NoHashes);
        }
        Ok(Unroller { params, hashes })
    }

    /// The detector's configuration.
    pub fn params(&self) -> &UnrollerParams {
        &self.params
    }

    /// The shared hash family.
    pub fn hashes(&self) -> &HashFamily {
        &self.hashes
    }
}

impl InPacketDetector for Unroller {
    type State = UnrollerState;

    fn name(&self) -> &'static str {
        "unroller"
    }

    fn init_state(&self) -> UnrollerState {
        UnrollerState::new(self.params.slots())
    }

    fn reset_state(&self, state: &mut UnrollerState) {
        debug_assert_eq!(state.swids.len(), self.params.slots());
        state.clear();
    }

    fn on_switch(&self, st: &mut UnrollerState, switch: SwitchId) -> Verdict {
        let p = &self.params;
        let (h, c) = (p.h as usize, p.c as usize);

        // (1) Increment the hop counter — Xcnt is the number of switches
        // traversed *including* this one.
        st.xcnt += 1;

        // (2) Evaluate the hash functions on the switch ID.
        let mut hashes = [0u32; MAX_SLOTS];
        self.hashes
            .hash_all_into(switch, p.z_mask(), &mut hashes[..h]);

        // (3) Compare against every stored identifier. A match means the
        // packet (probably) visited this switch before.
        let mut matched = false;
        'outer: for (i, &hv) in hashes[..h].iter().enumerate() {
            for j in 0..c {
                let slot = i * c + j;
                if st.occupied & (1 << slot) != 0 && st.swids[slot] == hv {
                    matched = true;
                    break 'outer;
                }
            }
        }
        if matched {
            st.thcnt += 1;
            if st.thcnt >= p.th {
                // (4) Report: drop/tag the packet and inform the
                // controller (the caller's job).
                return Verdict::LoopReported;
            }
        }

        // (5) Update the stored identifiers. The match check above runs
        // *before* any phase reset, so a loop closing exactly on a phase
        // boundary is still caught. Only the current chunk's slots are
        // written: overwritten at a chunk boundary, min-merged otherwise.
        let pos = p.schedule.position(st.xcnt, p.b, p.c);
        let j = pos.chunk as usize;
        let fresh = pos.is_chunk_start(st.xcnt);
        for (i, &hv) in hashes[..h].iter().enumerate() {
            let slot = i * c + j;
            let bit = 1u64 << slot;
            if fresh || st.occupied & bit == 0 {
                st.swids[slot] = hv;
                st.occupied |= bit;
            } else if hv < st.swids[slot] {
                st.swids[slot] = hv;
            }
        }
        Verdict::Continue
    }

    fn overhead_bits(&self, _hops: u64) -> u64 {
        self.params.overhead_bits() as u64
    }

    fn profile(&self) -> DetectorProfile {
        DetectorProfile {
            name: "Unroller",
            category: Category::PartialEncodingOnPackets,
            real_time: true,
            switch_overhead: OverheadLevel::Low,
            network_overhead: OverheadLevel::Low,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseSchedule;

    fn det(params: UnrollerParams) -> Unroller {
        Unroller::from_params(params).unwrap()
    }

    /// Drives a detector along a hop sequence; returns the 1-based hop at
    /// which a loop was reported, if any.
    fn drive(d: &Unroller, hops: &[SwitchId]) -> Option<usize> {
        let mut st = d.init_state();
        for (i, &s) in hops.iter().enumerate() {
            if d.on_switch(&mut st, s).reported() {
                return Some(i + 1);
            }
        }
        None
    }

    #[test]
    fn detector_types_are_send_and_sync() {
        // The unroller-engine runtime clones one detector per worker
        // shard and moves it across threads; that contract is
        // compile-time checked here so it can never silently regress.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Unroller>();
        assert_send_sync::<UnrollerState>();
        assert_send_sync::<Verdict>();
        assert_send_sync::<HashFamily>();
    }

    #[test]
    fn params_detector_builds_the_same_detector() {
        let params = UnrollerParams::default().with_z(12).with_h(2);
        let via_params = params.detector().unwrap();
        let direct = Unroller::from_params(params).unwrap();
        // Same configuration and identical hashing behaviour.
        assert_eq!(via_params.params(), direct.params());
        for id in [0u32, 7, 0xdead_beef] {
            for func in 0..2 {
                assert_eq!(
                    via_params.hashes().hash(func, id),
                    direct.hashes().hash(func, id)
                );
            }
        }
    }

    #[test]
    fn self_loop_detected_in_two_hops() {
        let d = det(UnrollerParams::default());
        assert_eq!(drive(&d, &[42, 42]), Some(2));
    }

    #[test]
    fn hand_traced_b4_power_boundary() {
        // b = 4, power-boundary. Pre-loop ID 5 (globally minimal), loop
        // IDs 10 → 20 → 30. Hop-by-hop:
        //   hop 1 (5):  phase start, store 5
        //   hops 2-3 (10, 20): min stays 5
        //   hop 4 (30): Xcnt = 4 is a power of 4 → reset, store 30
        //   hops 5-7 (10, 20, 30): min becomes 10
        //   hop 8 (10): match → report.
        let d = det(UnrollerParams::default());
        let walk = [5u32, 10, 20, 30, 10, 20, 30, 10, 20, 30, 10];
        assert_eq!(drive(&d, &walk), Some(8));
    }

    #[test]
    fn threshold_adds_l_hops_per_extra_match() {
        // Same walk as above with Th = 2: first match at hop 8 only
        // increments Thcnt; the next visit of switch 10 (hop 11 = 8 + L)
        // reports. This is the (Th−1)·L cost stated in §3.3.
        let d = det(UnrollerParams::default().with_th(2));
        let mut walk = vec![5u32];
        for _ in 0..10 {
            walk.extend_from_slice(&[10, 20, 30]);
        }
        assert_eq!(drive(&d, &walk), Some(11));
    }

    #[test]
    fn no_false_positive_on_loop_free_path_with_full_ids() {
        // z = 32 with distinct IDs ⇒ zero false positives, deterministic.
        let d = det(UnrollerParams::default());
        let walk: Vec<u32> = (1..=200).collect();
        assert_eq!(drive(&d, &walk), None);
    }

    #[test]
    fn minimum_on_preloop_path_is_unstuck_by_reset() {
        // The §3.5 scenario: the globally minimal ID sits on the pre-loop
        // path. Without resets the stored ID would never match a loop
        // switch; phases guarantee detection anyway.
        let d = det(UnrollerParams::default());
        let mut walk = vec![1u32, 9, 8, 7, 6]; // B = 5, min ID first
        for _ in 0..30 {
            walk.extend_from_slice(&[100, 200, 300, 400]); // L = 4
        }
        let hop = drive(&d, &walk).expect("loop must be detected");
        // Theorem 1 (cumulative schedule) gives 4.67X; the power-boundary
        // schedule has slightly different constants — just require
        // detection well before the walk ends.
        assert!(hop <= 6 * 9, "detected at hop {hop}");
    }

    #[test]
    fn detection_with_both_schedules() {
        for schedule in [
            PhaseSchedule::PowerBoundary,
            PhaseSchedule::CumulativeGeometric,
        ] {
            let d = det(UnrollerParams::default().with_schedule(schedule));
            let mut walk: Vec<u32> = vec![3, 1, 4, 1 + 10, 5]; // B = 5
            for _ in 0..50 {
                walk.extend((100..120).step_by(2)); // L = 10
            }
            assert!(drive(&d, &walk).is_some(), "{schedule:?}");
        }
    }

    #[test]
    fn chunked_configuration_detects() {
        for (c, h) in [(2u32, 1u32), (4, 1), (1, 2), (2, 2), (4, 4), (8, 8)] {
            let d = det(UnrollerParams::default().with_c(c).with_h(h));
            let mut walk: Vec<u32> = (1000..1005).collect(); // B = 5
            for _ in 0..60 {
                walk.extend(1..=20); // L = 20
            }
            assert!(drive(&d, &walk).is_some(), "c={c} H={h}");
        }
    }

    #[test]
    fn chunks_never_raise_detection_time_on_average() {
        // Appendix B: more chunks can only help (statistically). Compare
        // mean detection hops for c = 1 vs c = 4 over random walks.
        use crate::walk::{run_detector, Walk};
        let d1 = det(UnrollerParams::default());
        let d4 = det(UnrollerParams::default().with_c(4));
        let mut rng = crate::test_rng(17);
        let (mut sum1, mut sum4) = (0u64, 0u64);
        let runs = 300;
        for _ in 0..runs {
            let w = Walk::random(5, 20, &mut rng);
            sum1 += run_detector(&d1, &w, 100_000).reported_at.unwrap();
            sum4 += run_detector(&d4, &w, 100_000).reported_at.unwrap();
        }
        assert!(
            sum4 <= sum1,
            "c=4 mean {} should not exceed c=1 mean {}",
            sum4 as f64 / runs as f64,
            sum1 as f64 / runs as f64
        );
    }

    #[test]
    fn report_happens_even_on_phase_boundary_hop() {
        // Check-before-reset: construct a walk where the revisited switch
        // arrives exactly on a power-of-b hop. b = 2: boundaries at
        // 1,2,4,8,16. Walk: A B A' pattern with revisit at hop 4.
        // hop1: store 50. hop2: boundary, store 60. hop3: min(60,70)=60.
        // hop4 (60): match check first → report, despite 4 = 2².
        let d = det(UnrollerParams::default().with_b(2));
        assert_eq!(drive(&d, &[50, 60, 70, 60]), Some(4));
    }

    #[test]
    fn state_reset_reuses_allocation() {
        let d = det(UnrollerParams::default().with_c(4).with_h(2));
        let mut st = d.init_state();
        for s in [9u32, 8, 7, 6] {
            let _ = d.on_switch(&mut st, s);
        }
        assert!(st.xcnt > 0 && st.occupied != 0);
        d.reset_state(&mut st);
        assert_eq!(st.xcnt, 0);
        assert_eq!(st.occupied, 0);
        assert_eq!(st.thcnt, 0);
        assert_eq!(st.swids.len(), 8);
        // Behaves exactly like a fresh state afterwards.
        let mut fresh = d.init_state();
        for s in [5u32, 5] {
            let a = d.on_switch(&mut st, s);
            let b = d.on_switch(&mut fresh, s);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn hash_mismatch_family_size_rejected() {
        let fam = crate::hashing::HashFamily::new(crate::hashing::HashKind::SplitMix, 2, 1);
        let err = Unroller::with_hashes(UnrollerParams::default().with_h(4), fam);
        assert!(err.is_err());
    }

    #[test]
    fn zero_valued_identifiers_are_not_special() {
        // A switch ID of 0 (or one that hashes to 0) must behave like
        // any other value: occupancy gates validity, so a stored 0 is a
        // real record, not an "empty" sentinel.
        let d = det(UnrollerParams::default());
        // 0 on the loop: detected by matching the stored 0.
        assert_eq!(drive(&d, &[0, 7, 0]), Some(3));
        // 0 only on the pre-loop path: no false match from fresh state.
        let walk = [0u32, 10, 20, 30, 10, 20, 30, 10];
        let hop = drive(&d, &walk).expect("loop detected");
        assert!(hop >= 5, "must not match before a genuine revisit");
    }

    #[test]
    fn one_bit_hashes_still_detect_and_mostly_collide() {
        // z = 1 is the degenerate extreme: every pair of switches
        // collides with probability 1/2, so loop-free prefixes usually
        // false-positive quickly — but genuine loops are still always
        // reported (no false negatives).
        let d = det(UnrollerParams::default().with_z(1));
        let mut rng = crate::test_rng(23);
        let mut fp = 0;
        for _ in 0..100 {
            let w = crate::walk::Walk::random(5, 8, &mut rng);
            let out = crate::walk::run_detector(&d, &w, 10_000);
            assert!(out.reported_at.is_some(), "never a false negative");
            if out.false_positive() {
                fp += 1;
            }
        }
        assert!(fp > 50, "z = 1 should usually report early ({fp}/100)");
    }

    #[test]
    fn overhead_constant_in_hops() {
        let d = det(UnrollerParams::default());
        assert_eq!(d.overhead_bits(1), d.overhead_bits(1000));
        assert_eq!(d.overhead_bits(1), 40);
    }

    #[test]
    fn compressed_ids_still_detect_real_loops() {
        // z-bit compression introduces false positives but never false
        // negatives: a genuine revisit always hashes equal.
        for z in [4u32, 7, 12] {
            let d = det(UnrollerParams::default().with_z(z));
            let mut walk: Vec<u32> = (500..505).collect();
            for _ in 0..80 {
                walk.extend(1..=10);
            }
            assert!(drive(&d, &walk).is_some(), "z={z}");
        }
    }
}
