//! Closed-form performance bounds (paper §3.1–§3.2, Appendix A–B) and
//! adversarial instance builders used to validate them.
//!
//! All bounds below are stated for the *analysis* phase schedule
//! ([`crate::phase::PhaseSchedule::CumulativeGeometric`], the *i*-th
//! phase lasting `bⁱ` hops) with a single uncompressed identifier
//! (`z = 32`, `c = H = Th = 1`), which is the setting of the paper's
//! theorems. Notation: `B` pre-loop hops, `L` loop switches, `X = B + L`.

use crate::walk::Walk;
use crate::SwitchId;

/// Theorem 1: the single-identifier algorithm reports the loop after at
/// most `(2L − 1) + max((2bL − 1)/(b − 1), bB + 1)` hops, for any
/// placement of identifiers.
///
/// # Panics
///
/// Panics if `b < 2` or `l == 0` (a loop must have at least one switch).
pub fn worst_case_bound(b: u32, big_b: u64, l: u64) -> f64 {
    assert!(b >= 2, "phase base must be at least 2");
    assert!(l >= 1, "a loop has at least one switch");
    let (b, big_b, l) = (b as f64, big_b as f64, l as f64);
    let loop_term = (2.0 * b * l - 1.0) / (b - 1.0);
    let path_term = b * big_b + 1.0;
    (2.0 * l - 1.0) + loop_term.max(path_term)
}

/// The worst-case constant for base `b`: the supremum of
/// [`worst_case_bound`]`/X` over all `B ≥ 0`, `L ≥ 1`.
///
/// The bound has two regimes. When the pre-loop path dominates
/// (`bB + 1 ≥ (2bL − 1)/(b − 1)`) the ratio approaches `b` as `B → ∞`;
/// when the loop dominates it approaches `(4b − 2)/(b − 1)` as `B → 0`,
/// `L → ∞`. Hence the supremum is `max(b, (4b − 2)/(b − 1))`, which is
/// minimized over the integers at `b = 4` where it equals
/// `14/3 ≈ 4.67` — the paper's headline constant.
pub fn worst_case_constant(b: u32) -> f64 {
    assert!(b >= 2);
    let bf = b as f64;
    bf.max((4.0 * bf - 2.0) / (bf - 1.0))
}

/// The integer base minimizing [`worst_case_constant`] (the paper uses
/// `b = 4`, giving `≈ 4.67X`).
pub fn optimal_worst_case_base() -> u32 {
    (2..=16)
        .min_by(|&a, &b| {
            worst_case_constant(a)
                .partial_cmp(&worst_case_constant(b))
                .unwrap()
        })
        .unwrap()
}

/// Appendix B: with each phase partitioned into `c` chunks the bound
/// improves to `2L + max((2bL − 1)/(b − 1), B + (b − 1)B/c + 1)`.
pub fn chunked_worst_case_bound(b: u32, c: u32, big_b: u64, l: u64) -> f64 {
    assert!(b >= 2 && c >= 1);
    assert!(l >= 1);
    let (b, c, big_b, l) = (b as f64, c as f64, big_b as f64, l as f64);
    let loop_term = (2.0 * b * l - 1.0) / (b - 1.0);
    let path_term = big_b + (b - 1.0) * big_b / c + 1.0;
    2.0 * l + loop_term.max(path_term)
}

/// The worst-case constant of the chunked bound:
/// `max(1 + (b − 1)/c, (4b − 2)/(b − 1))`. Appendix B's example
/// `c = 2, b = 7` gives `max(4, 26/6) = 4.33`.
pub fn chunked_constant(b: u32, c: u32) -> f64 {
    assert!(b >= 2 && c >= 1);
    let (bf, cf) = (b as f64, c as f64);
    (1.0 + (bf - 1.0) / cf).max((4.0 * bf - 2.0) / (bf - 1.0))
}

/// Theorem 5 (Appendix A): any deterministic algorithm storing a single
/// identifier needs at least `(2 + √3)·X·(1 − o(1)) ≈ 3.73X` hops in the
/// worst case. Our `4.67X` upper bound is therefore within 25% of
/// optimal for deterministic single-ID schemes.
pub const LOWER_BOUND_CONSTANT: f64 = 3.732_050_807_568_877; // 2 + √3

/// §3.2: with random identifiers and `b = 3` the *expected* detection
/// time is at most `3X` hops.
pub const AVERAGE_CASE_CONSTANT_B3: f64 = 3.0;

/// The base optimizing the average-case analysis (§3.2).
pub const AVERAGE_CASE_OPTIMAL_BASE: u32 = 3;

/// The §3.2 average-case constant as a function of `b`: the expected
/// detection time with random identifiers is at most
/// `average_case_constant(b)·X`.
///
/// The paper's three-case analysis (by the length `q` of the first
/// phase beginning on the loop) yields, in units of `X`:
///
/// * `q = (1+α)L`: `(1+α)/(b−1) + 2.5 − α`, maximized at `α = 0` to
///   `1/(b−1) + 2.5`;
/// * `2L < q ≤ bL`: `b/(b−1) + 1.5`, which equals `1/(b−1) + 2.5`;
/// * `q > bL`: approaches `b` as `B → ∞`.
///
/// Hence the constant is `max(2.5 + 1/(b−1), b)`, minimized over the
/// integers at `b = 3` where it equals the paper's `3X`.
pub fn average_case_constant(b: u32) -> f64 {
    assert!(b >= 2);
    let bf = b as f64;
    (2.5 + 1.0 / (bf - 1.0)).max(bf)
}

/// The integer base minimizing [`average_case_constant`] (the paper's
/// §3.2 picks `b = 3`, "the best choice for b for the average case").
pub fn optimal_average_case_base() -> u32 {
    (2..=16)
        .min_by(|&a, &b| {
            average_case_constant(a)
                .partial_cmp(&average_case_constant(b))
                .unwrap()
        })
        .unwrap()
}

/// Builds a deterministic walk with `b_hops` pre-loop hops, an `l`-switch
/// loop, and the globally minimal identifier at 1-based position
/// `min_pos`; remaining identifiers increase along the walk. Together
/// with [`Walk::random_with_min_at`](crate::walk::Walk::random_with_min_at)
/// this drives the bound-validation property tests: Theorem 1 must hold
/// for *every* identifier arrangement, and the minimum's position is the
/// lever the Appendix A adversary uses.
pub fn walk_with_min_at(b_hops: usize, l: usize, min_pos: usize) -> Walk {
    assert!(l >= 1, "need a loop");
    assert!((1..=b_hops + l).contains(&min_pos));
    let n = b_hops + l;
    let mut ids: Vec<SwitchId> = (0..n as u32).map(|i| 1000 + i).collect();
    ids[min_pos - 1] = 1;
    let cycle = ids.split_off(b_hops);
    Walk::new(ids, cycle)
}

/// The Appendix A, Lemma 6 adversarial instance for a concrete reset
/// schedule: with resets at hops `r₁ < r₂ < …`, choose `B = rₙ − 1` and
/// `L = 2` and place the minimal identifier on the last pre-loop hop.
/// The algorithm stores the minimum just before a reset wipes it, then
/// must wait out the next full phase. Returns the walk and the hop count
/// below which no detection can occur (`rₙ₊₁ + 2L − 2`, i.e. the packet
/// must at least survive to the next reset and one further loop pass).
pub fn lemma6_instance(schedule: crate::phase::PhaseSchedule, b: u32, n: usize) -> (Walk, u64) {
    // Collect reset hops: hops (> 1) that start a new phase.
    let mut resets = Vec::new();
    let mut x = 2u64;
    while resets.len() < n + 1 {
        if schedule.is_phase_start(x, b) {
            resets.push(x);
        }
        x += 1;
        assert!(x < 1 << 40, "schedule produced too few resets");
    }
    let r_n = resets[n - 1];
    // The last pre-loop hop coincides with the n-th reset: the reset
    // stores the (globally minimal) identifier of hop B = rₙ, which then
    // survives every min-update because it is smaller than all loop IDs.
    let big_b = r_n as usize;
    let l = 2usize;
    let walk = walk_with_min_at(big_b, l, big_b);
    // No detection before the *next* reset plus one loop revisit: only at
    // hop r_{n+1} can a loop ID displace the stored minimum, and re-seeing
    // that loop switch takes at least L = 2 further hops.
    let lower = resets[n] + 2;
    (walk, lower)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Unroller;
    use crate::params::UnrollerParams;
    use crate::phase::PhaseSchedule;
    use crate::walk::run_detector;

    #[test]
    fn headline_constants_match_paper() {
        // "finds the loop after at most 4.67X hops" for b = 4.
        assert!((worst_case_constant(4) - 14.0 / 3.0).abs() < 1e-12);
        assert!(worst_case_constant(4) < 4.67);
        // Appendix B example: c = 2, b = 7 → 4.33X.
        assert!((chunked_constant(7, 2) - 13.0 / 3.0).abs() < 1e-12);
        assert!(chunked_constant(7, 2) < 4.34);
        // b = 4 is the best integer base for the worst case.
        assert_eq!(optimal_worst_case_base(), 4);
        // The lower bound is 2 + √3.
        assert!((LOWER_BOUND_CONSTANT - (2.0 + 3.0f64.sqrt())).abs() < 1e-12);
        // Upper and lower bounds bracket sensibly.
        assert!(LOWER_BOUND_CONSTANT < worst_case_constant(4));
    }

    #[test]
    fn constant_dominates_bound_for_all_small_instances() {
        for b in 2u32..=8 {
            let k = worst_case_constant(b);
            for big_b in 0u64..=40 {
                for l in 1u64..=40 {
                    let x = (big_b + l) as f64;
                    assert!(
                        worst_case_bound(b, big_b, l) <= k * x + 1.0,
                        "b={b} B={big_b} L={l}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunking_only_improves_the_bound() {
        for b in 2u32..=8 {
            for big_b in 0u64..=20 {
                for l in 1u64..=20 {
                    let mut prev = chunked_worst_case_bound(b, 1, big_b, l);
                    for c in 2u32..=8 {
                        let cur = chunked_worst_case_bound(b, c, big_b, l);
                        assert!(cur <= prev + 1e-9, "b={b} c={c} B={big_b} L={l}");
                        prev = cur;
                    }
                }
            }
        }
    }

    /// The empirical heart of the Theorem 1 validation: for every small
    /// (B, L) and every position of the minimal identifier, detection on
    /// the analysis schedule stays within the closed-form bound.
    #[test]
    fn theorem1_holds_for_all_min_positions_small_instances() {
        let det = Unroller::from_params(UnrollerParams::analysis(4)).unwrap();
        for big_b in 0usize..=10 {
            for l in 1usize..=12 {
                let bound = worst_case_bound(4, big_b as u64, l as u64);
                for pos in 1..=big_b + l {
                    let walk = walk_with_min_at(big_b, l, pos);
                    let out = run_detector(&det, &walk, 10_000);
                    let hops = out.reported_at.expect("must detect") as f64;
                    assert!(
                        hops <= bound,
                        "B={big_b} L={l} min@{pos}: {hops} > bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem1_holds_for_random_walks() {
        let det = Unroller::from_params(UnrollerParams::analysis(4)).unwrap();
        let mut rng = crate::test_rng(8);
        for _ in 0..2000 {
            let big_b = (rand::Rng::gen_range(&mut rng, 0..15)) as usize;
            let l = (rand::Rng::gen_range(&mut rng, 1..25)) as usize;
            let walk = Walk::random(big_b, l, &mut rng);
            let out = run_detector(&det, &walk, 100_000);
            let hops = out.reported_at.expect("must detect") as f64;
            let bound = worst_case_bound(4, big_b as u64, l as u64);
            assert!(hops <= bound, "B={big_b} L={l}: {hops} > {bound}");
        }
    }

    #[test]
    fn average_case_constant_algebra() {
        // b = 3 is optimal for the average case and gives exactly 3X.
        assert_eq!(optimal_average_case_base(), 3);
        assert!((average_case_constant(3) - 3.0).abs() < 1e-12);
        assert_eq!(average_case_constant(3), AVERAGE_CASE_CONSTANT_B3);
        // b = 2 is worse (3.5X, over-aggressive resets); b = 4 is worse
        // (4X, dominated by the q > bL regime).
        assert!((average_case_constant(2) - 3.5).abs() < 1e-12);
        assert!((average_case_constant(4) - 4.0).abs() < 1e-12);
        // Average-case and worst-case optima differ, as §3.2 notes.
        assert_ne!(optimal_average_case_base(), optimal_worst_case_base());
    }

    #[test]
    fn measured_mean_respects_average_case_constant() {
        // For every base, the empirical mean detection ratio over random
        // walks stays below the §3.2 constant.
        let mut rng = crate::test_rng(29);
        for b in [2u32, 3, 4, 6] {
            let det = Unroller::from_params(UnrollerParams::analysis(b)).unwrap();
            let bound = average_case_constant(b);
            let runs = 800;
            let mut total = 0.0;
            for _ in 0..runs {
                let big_b = rand::Rng::gen_range(&mut rng, 0..10usize);
                let l = rand::Rng::gen_range(&mut rng, 1..25usize);
                let walk = Walk::random(big_b, l, &mut rng);
                let out = run_detector(&det, &walk, 1 << 22);
                total += out.time_ratio(walk.x()).unwrap();
            }
            let mean = total / runs as f64;
            assert!(mean <= bound, "b={b}: mean {mean} > bound {bound}");
        }
    }

    #[test]
    fn average_case_three_x_for_b3() {
        // §3.2: expected detection ≤ 3X for b = 3 with random IDs.
        let det = Unroller::from_params(UnrollerParams::analysis(3)).unwrap();
        let mut rng = crate::test_rng(9);
        let mut total_ratio = 0.0;
        let runs = 2000;
        for _ in 0..runs {
            let walk = Walk::random(5, 20, &mut rng);
            let out = run_detector(&det, &walk, 100_000);
            total_ratio += out.time_ratio(walk.x()).unwrap();
        }
        let mean = total_ratio / runs as f64;
        assert!(
            mean <= AVERAGE_CASE_CONSTANT_B3,
            "mean detection ratio {mean} exceeds 3X"
        );
    }

    #[test]
    fn lemma6_adversary_delays_detection() {
        // The Lemma 6 instance really does force the algorithm past the
        // predicted hop count, demonstrating the lower-bound mechanism.
        for n in 2usize..=4 {
            let (walk, lower) = lemma6_instance(PhaseSchedule::CumulativeGeometric, 4, n);
            let det = Unroller::from_params(UnrollerParams::analysis(4)).unwrap();
            let out = run_detector(&det, &walk, 1 << 24);
            let hops = out.reported_at.expect("must detect");
            assert!(
                hops >= lower,
                "n={n}: detected at {hops}, adversary guarantees >= {lower}"
            );
            // And of course still within the Theorem 1 upper bound.
            let bound = worst_case_bound(4, walk.b() as u64, walk.l() as u64);
            assert!(hops as f64 <= bound);
        }
    }

    #[test]
    fn lemma6_ratio_exceeds_three_x() {
        // The adversarial family pushes the detection ratio well above
        // the average case, toward the 3.73X lower bound: the stored
        // minimum is wiped right before it would have matched.
        let (walk, _) = lemma6_instance(PhaseSchedule::CumulativeGeometric, 4, 4);
        let det = Unroller::from_params(UnrollerParams::analysis(4)).unwrap();
        let out = run_detector(&det, &walk, 1 << 24);
        let ratio = out.time_ratio(walk.x()).unwrap();
        assert!(ratio > 3.0, "adversarial ratio {ratio} should exceed 3");
    }
}
