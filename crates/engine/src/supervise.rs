//! Shard supervision: the stall watchdog and the overload shedder.
//!
//! Both close the loop between *observing* trouble and *acting* on it
//! inside the runtime, rather than leaving recovery to an operator:
//!
//! * The **watchdog** runs on its own thread while the engine is live
//!   and watches each shard's consumed-packet count (processed +
//!   panic-lost — see [`ShardMetrics::consumed`]). A shard whose count
//!   has not moved between polls *while its ring still holds packets*
//!   is stalled, whatever the cause; the watchdog records the detection
//!   and sets the shard's kick flag, which aborts injected stalls (and
//!   stands in for the recycle signal a production runtime would wire
//!   to thread replacement).
//! * The **shedder** watches enqueue outcomes per shard. A run of
//!   saturated outcomes (blocked or dropped pushes) marks the shard
//!   overloaded, and while it stays overloaded the dispatcher sheds
//!   packets of low-priority flows at ingress — counted, never silent,
//!   so `offered == enqueued + dropped + shed (+ quarantined)` still
//!   balances. Priority comes from [`FlowKey::priority`], so the same
//!   flows are shed on every run: deterministic degradation.

use crate::flow::FlowKey;
use crate::metrics::ShardMetrics;
use crate::ring::{BatchPush, PushOutcome, RingCounters};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Saturated-push streak at which a shard counts as overloaded.
pub const SATURATION_THRESHOLD: u32 = 8;

/// Flows below this priority class (see [`FlowKey::priority`], 0–7)
/// are shed while their shard is overloaded: the bottom half of the
/// priority space degrades first.
pub const SHED_PRIORITY_CUTOFF: u8 = 4;

/// Everything the watchdog needs to observe one shard.
pub struct WatchShard {
    /// The shard's metrics block (for the consumed-progress signal).
    pub metrics: Arc<ShardMetrics>,
    /// The shard's ring counters (for the backlog signal).
    pub counters: Arc<RingCounters>,
    /// Kick flag shared with the worker: set on a detected stall.
    pub kick: Arc<AtomicBool>,
}

/// What the watchdog saw over one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Poll rounds completed.
    pub polls: u64,
    /// Shard-polls that found a stalled shard (no consumption progress
    /// with a non-empty ring).
    pub stalls_detected: u64,
    /// Kick flags raised (one per stalled shard-poll).
    pub kicks: u64,
}

/// Polls the shards every `interval` until `stop` is raised, kicking
/// any shard that made no consumption progress while its ring held
/// packets. Returns the tally. Runs on the caller's thread — the
/// engine spawns it inside its worker scope.
pub fn run_watchdog(
    shards: &[WatchShard],
    interval: Duration,
    stop: &AtomicBool,
) -> WatchdogReport {
    let mut report = WatchdogReport::default();
    let mut last_consumed: Vec<u64> = shards.iter().map(|s| s.metrics.consumed()).collect();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(interval);
        if stop.load(Ordering::Relaxed) {
            break;
        }
        report.polls += 1;
        for (shard, watch) in shards.iter().enumerate() {
            let consumed = watch.metrics.consumed();
            let backlog = watch
                .counters
                .enqueued
                .load(Ordering::Relaxed)
                .saturating_sub(consumed);
            if consumed == last_consumed[shard] && backlog > 0 {
                report.stalls_detected += 1;
                // Raise (don't toggle) the kick: a stalled worker
                // clears it when it reacts.
                if !watch.kick.swap(true, Ordering::Relaxed) {
                    report.kicks += 1;
                }
            }
            last_consumed[shard] = consumed;
        }
    }
    report
}

/// Per-shard overload tracker driving ingress shedding.
#[derive(Debug)]
pub struct Shedder {
    streaks: Vec<u32>,
    enabled: bool,
}

impl Shedder {
    /// A shedder over `shards` rings; `enabled = false` makes it a
    /// no-op observer (the default engine configuration).
    pub fn new(shards: usize, enabled: bool) -> Self {
        Shedder {
            streaks: vec![0; shards],
            enabled,
        }
    }

    /// Feeds one enqueue outcome into the shard's saturation streak:
    /// saturated attempts build it, clean enqueues decay it — a single
    /// free slot does not end an overload episode.
    pub fn observe(&mut self, shard: usize, outcome: PushOutcome) {
        let streak = &mut self.streaks[shard];
        if outcome.saturated() {
            *streak = streak.saturating_add(1);
        } else {
            *streak = streak.saturating_sub(1);
        }
    }

    /// Feeds a whole [`BatchPush`] result into the shard's streak, with
    /// the same semantics as observing each item individually: clean
    /// enqueues decay, stalled enqueues and drops build. The batch is
    /// replayed in enqueued → stalled → dropped order, matching how a
    /// batched push actually unfolds (the ring fills, then stalls or
    /// drops the tail).
    pub fn observe_batch(&mut self, shard: usize, batch: &BatchPush) {
        if !self.enabled {
            return;
        }
        for _ in 0..batch.enqueued {
            self.observe(shard, PushOutcome::Enqueued);
        }
        for _ in 0..batch.stalled {
            self.observe(shard, PushOutcome::EnqueuedAfterStall);
        }
        for _ in 0..batch.dropped {
            self.observe(shard, PushOutcome::DroppedFull);
        }
    }

    /// Whether the dispatcher should shed this flow's packet at ingress
    /// instead of offering it: the shard is overloaded and the flow
    /// sits in the shed-first half of the priority space.
    pub fn should_shed(&self, shard: usize, flow: &FlowKey) -> bool {
        self.enabled
            && self.streaks[shard] >= SATURATION_THRESHOLD
            && flow.priority() < SHED_PRIORITY_CUTOFF
    }

    /// The shard's current saturation streak (for tests/reporting).
    pub fn streak(&self, shard: usize) -> u32 {
        self.streaks[shard]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_priority_flow() -> FlowKey {
        // Scan synthetic flows for one in the shed band; determinism
        // makes the first hit stable across runs.
        (0..256)
            .map(|i| FlowKey::synthetic(1, 2, i))
            .find(|f| f.priority() < SHED_PRIORITY_CUTOFF)
            .expect("8 priority classes over 256 flows")
    }

    fn high_priority_flow() -> FlowKey {
        (0..256)
            .map(|i| FlowKey::synthetic(3, 4, i))
            .find(|f| f.priority() >= SHED_PRIORITY_CUTOFF)
            .expect("8 priority classes over 256 flows")
    }

    #[test]
    fn shedder_needs_a_sustained_streak() {
        let mut s = Shedder::new(1, true);
        let flow = low_priority_flow();
        for _ in 0..SATURATION_THRESHOLD - 1 {
            s.observe(0, PushOutcome::DroppedFull);
            assert!(!s.should_shed(0, &flow), "below threshold");
        }
        s.observe(0, PushOutcome::DroppedFull);
        assert!(s.should_shed(0, &flow), "threshold reached");
    }

    #[test]
    fn shedder_spares_high_priority_flows() {
        let mut s = Shedder::new(1, true);
        for _ in 0..SATURATION_THRESHOLD {
            s.observe(0, PushOutcome::EnqueuedAfterStall);
        }
        assert!(s.should_shed(0, &low_priority_flow()));
        assert!(!s.should_shed(0, &high_priority_flow()));
    }

    #[test]
    fn clean_enqueues_decay_the_streak() {
        let mut s = Shedder::new(1, true);
        for _ in 0..SATURATION_THRESHOLD {
            s.observe(0, PushOutcome::DroppedFull);
        }
        assert!(s.should_shed(0, &low_priority_flow()));
        s.observe(0, PushOutcome::Enqueued);
        assert!(
            !s.should_shed(0, &low_priority_flow()),
            "one clean push below threshold again"
        );
        assert_eq!(s.streak(0), SATURATION_THRESHOLD - 1);
    }

    #[test]
    fn batched_observation_matches_per_item_observation() {
        let mut per_item = Shedder::new(1, true);
        let mut batched = Shedder::new(1, true);
        // A batch that filled the ring (3 clean), stalled twice, and
        // dropped the rest — the same stream observed both ways.
        for _ in 0..3 {
            per_item.observe(0, PushOutcome::Enqueued);
        }
        for _ in 0..2 {
            per_item.observe(0, PushOutcome::EnqueuedAfterStall);
        }
        for _ in 0..SATURATION_THRESHOLD as usize {
            per_item.observe(0, PushOutcome::DroppedFull);
        }
        batched.observe_batch(
            0,
            &BatchPush {
                enqueued: 3,
                stalled: 2,
                dropped: SATURATION_THRESHOLD as usize,
            },
        );
        assert_eq!(per_item.streak(0), batched.streak(0));
        let flow = low_priority_flow();
        assert!(batched.should_shed(0, &flow), "saturated tail trips it");
    }

    #[test]
    fn disabled_shedder_never_sheds() {
        let mut s = Shedder::new(1, false);
        for _ in 0..100 {
            s.observe(0, PushOutcome::DroppedFull);
        }
        assert!(!s.should_shed(0, &low_priority_flow()));
    }

    #[test]
    fn streaks_are_per_shard() {
        let mut s = Shedder::new(2, true);
        for _ in 0..SATURATION_THRESHOLD {
            s.observe(1, PushOutcome::DroppedFull);
        }
        let flow = low_priority_flow();
        assert!(!s.should_shed(0, &flow));
        assert!(s.should_shed(1, &flow));
    }

    #[test]
    fn watchdog_kicks_a_stalled_shard() {
        let metrics = Arc::new(ShardMetrics::default());
        let counters = Arc::new(RingCounters::default());
        let kick = Arc::new(AtomicBool::new(false));
        // 5 packets enqueued, none consumed: a stalled shard.
        counters.enqueued.store(5, Ordering::Relaxed);
        let shards = [WatchShard {
            metrics: metrics.clone(),
            counters,
            kick: kick.clone(),
        }];
        let stop = AtomicBool::new(false);
        let report = std::thread::scope(|scope| {
            let handle = scope.spawn(|| run_watchdog(&shards, Duration::from_millis(5), &stop));
            while !kick.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
            stop.store(true, Ordering::Relaxed);
            handle.join().expect("watchdog thread")
        });
        assert!(report.stalls_detected >= 1);
        assert!(report.kicks >= 1);
        assert!(report.polls >= 1);
    }

    #[test]
    fn watchdog_ignores_an_idle_shard() {
        // No backlog: a shard with an empty ring is idle, not stalled.
        let shards = [WatchShard {
            metrics: Arc::new(ShardMetrics::default()),
            counters: Arc::new(RingCounters::default()),
            kick: Arc::new(AtomicBool::new(false)),
        }];
        let stop = AtomicBool::new(false);
        let report = std::thread::scope(|scope| {
            let handle = scope.spawn(|| run_watchdog(&shards, Duration::from_millis(2), &stop));
            std::thread::sleep(Duration::from_millis(20));
            stop.store(true, Ordering::Relaxed);
            handle.join().expect("watchdog thread")
        });
        assert_eq!(report.stalls_detected, 0);
        assert!(!shards[0].kick.load(Ordering::Relaxed));
    }
}
