//! The engine runtime: dispatcher → sharded workers → aggregator.
//!
//! ```text
//!                        ┌─ ring 0 ─▶ worker 0 (pipelines clone) ─┐
//!   TrafficSource ─▶ dispatcher (RSS by flow)                     ├─▶ MPSC ─▶ aggregator
//!                        └─ ring N ─▶ worker N (pipelines clone) ─┘        (dedupe → sink)
//! ```
//!
//! Invariants the runtime maintains:
//!
//! * **Flow affinity** — the dispatcher shards by
//!   [`FlowKey::shard`](crate::flow::FlowKey::shard), so a flow's
//!   packets always hit the same worker and its per-flow detection
//!   state is single-threaded by construction.
//! * **Bounded memory** — every ring has a fixed capacity; when full,
//!   the configured [`FullPolicy`] drops (counted) or blocks. Nothing
//!   queues unboundedly.
//! * **No hot-path locks** — workers own their pipelines and metrics;
//!   the only cross-thread traffic is ring hand-off and the (rare)
//!   loop-event channel.
//! * **Total accounting, even under faults** — every offered packet is
//!   enqueued, dropped at a full ring, shed under overload, or
//!   quarantined at ingress; every enqueued packet is processed or
//!   counted lost to a (supervised) worker panic. [`EngineReport::accounted`]
//!   checks the full identity and holds with an active
//!   [`FaultPlan`](crate::faults::FaultPlan).

use crate::aggregate::{aggregate_with, AggregatorReport, LoopEvent};
use crate::epoch::EpochRouteTable;
use crate::eventlog::{EventLogWriter, RunMeta};
use crate::faults::{
    inject_panic, install_quiet_panic_hook, EventFaults, FaultPlan, InjectedPanic,
};
use crate::flow::FlowKey;
use crate::json::Json;
use crate::memo::MemoConfig;
use crate::metrics::{ShardMetrics, ShardSnapshot};
use crate::packet::EnginePacket;
use crate::ring::{ring, FullPolicy, RingCounters, RingCountersSnapshot};
use crate::source::TrafficSource;
use crate::supervise::{run_watchdog, Shedder, WatchShard, WatchdogReport};
use crate::worker::ShardWorker;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use unroller_core::params::{ParamError, UnrollerParams};
use unroller_core::SwitchId;
use unroller_dataplane::{HeaderLayout, UnrollerPipeline};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker shard count.
    pub shards: usize,
    /// Max packets per ring pull / processing batch.
    pub batch_size: usize,
    /// Per-shard ring capacity (packets).
    pub ring_capacity: usize,
    /// Hop budget per packet (the TTL).
    pub max_hops: u32,
    /// Detector parameters provisioned into every pipeline.
    pub params: UnrollerParams,
    /// Backpressure policy on full rings.
    pub full_policy: FullPolicy,
    /// When set, a monitor thread prints a JSON metrics snapshot to
    /// stderr at this interval while the run is live.
    pub snapshot_every: Option<Duration>,
    /// Fault-injection plan; [`FaultPlan::default`] (all rates zero)
    /// runs fault-free with zero hot-path overhead.
    pub faults: FaultPlan,
    /// Enables ingress overload shedding: saturated rings shed the
    /// lowest-priority flows (counted) instead of degrading everyone.
    pub shed: bool,
    /// When set, a watchdog thread polls shard progress at this
    /// interval and kicks shards that stop consuming a non-empty ring.
    pub watchdog: Option<Duration>,
    /// Flows quarantined at ingress (dropped before sharding, counted)
    /// — the controller's degraded-mode answer to a loop it failed to
    /// heal.
    pub quarantine: Vec<FlowKey>,
    /// Pin each shard's worker thread to a CPU core (`shard % cpus`,
    /// via `sched_setaffinity`; Linux only, no-op elsewhere). Off by
    /// default: pinning helps on dedicated cores and hurts on
    /// oversubscribed ones. Which core each shard landed on is
    /// recorded per shard in the metrics JSON (`pinned_core`).
    pub pin_cores: bool,
    /// When set, the aggregator streams every deduplicated loop event
    /// to a JSONL log *during* the run (one flush per record), so runs
    /// that die mid-flight — supervised worker restarts, injected
    /// panics, even a killed process — still leave a parseable log
    /// behind instead of losing everything to a post-run export that
    /// never happens.
    pub events_log: Option<EventsLogConfig>,
    /// Per-route verdict memoization for generated traffic
    /// ([`MemoConfig::sample_every`] sets the 1-in-N cross-check rate);
    /// `None` walks every packet.
    pub memo: Option<MemoConfig>,
    /// Advance unmemoized generated walks through the hop-stepped lane
    /// pool (`dataplane::pipeline::process_frame_batch_stepped`)
    /// instead of one packet at a time.
    pub stepped: bool,
}

/// Where and under what identity [`EngineConfig::events_log`] writes.
#[derive(Debug, Clone)]
pub struct EventsLogConfig {
    /// Log file path (created/truncated; parent dirs made as needed).
    pub path: String,
    /// Run identity stamped into the log header.
    pub meta: RunMeta,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 2,
            batch_size: 64,
            ring_capacity: 1024,
            max_hops: 64,
            params: UnrollerParams::default(),
            full_policy: FullPolicy::Drop,
            snapshot_every: None,
            faults: FaultPlan::default(),
            shed: false,
            watchdog: None,
            quarantine: Vec::new(),
            pin_cores: false,
            events_log: None,
            memo: None,
            stepped: false,
        }
    }
}

/// Engine errors: configuration problems caught before any thread
/// spawns, plus the one runtime failure the engine cannot absorb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `shards` was 0.
    NoShards,
    /// `batch_size` was 0.
    ZeroBatch,
    /// `ring_capacity` was 0.
    ZeroRing,
    /// `max_hops` was 0.
    ZeroTtl,
    /// No switch IDs were provisioned.
    NoSwitches,
    /// The detector parameters failed validation.
    BadParams(ParamError),
    /// The event log file could not be created (checked before any
    /// thread spawns; carries the I/O error's message).
    EventLogIo(String),
    /// The aggregator thread panicked; carries the panic payload's
    /// message. Workers are supervised and restartable, but a dead
    /// aggregator means loop events were lost unobserved — the run's
    /// detection claims are void, so this surfaces as an error instead
    /// of a report.
    AggregatorPanicked(String),
    /// The watchdog thread panicked; carries the panic payload's
    /// message. Unlike an aggregator loss this does **not** void the
    /// run — detection and accounting are untouched — so
    /// [`Engine::run`] degrades to a default watchdog summary and
    /// reports the panic in
    /// [`EngineReport::watchdog_panic`]; this typed error is what
    /// [`EngineReport::watchdog_error`] hands callers that want to
    /// treat a dead watchdog as fatal.
    WatchdogPanicked(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoShards => write!(f, "shard count must be >= 1"),
            EngineError::ZeroBatch => write!(f, "batch size must be >= 1"),
            EngineError::ZeroRing => write!(f, "ring capacity must be >= 1"),
            EngineError::ZeroTtl => write!(f, "max hops must be >= 1"),
            EngineError::NoSwitches => write!(f, "at least one switch ID required"),
            EngineError::BadParams(e) => write!(f, "invalid detector parameters: {e}"),
            EngineError::EventLogIo(e) => write!(f, "cannot open event log: {e}"),
            EngineError::AggregatorPanicked(msg) => {
                write!(f, "loop-event aggregator panicked: {msg}")
            }
            EngineError::WatchdogPanicked(msg) => {
                write!(f, "watchdog panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Extracts a human-readable message from a panic payload (the
/// `Box<dyn Any>` that `JoinHandle::join` returns on the `Err` path).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The complete result of one engine run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Shard count the run used.
    pub shards: usize,
    /// Per-shard metrics.
    pub shard_snapshots: Vec<ShardSnapshot>,
    /// Per-shard ring counters (same indexing).
    pub ring_snapshots: Vec<RingCountersSnapshot>,
    /// Aggregated, deduplicated loop events.
    pub aggregator: AggregatorReport,
    /// Packets the source offered to the dispatcher.
    pub offered: u64,
    /// Packets dropped at ingress because their flow was quarantined.
    pub quarantined: u64,
    /// What the watchdog observed (all-zero when it was disabled).
    pub watchdog: WatchdogReport,
    /// Panic message if the watchdog thread died mid-run. The run
    /// itself — detection, accounting — is unaffected; `watchdog` holds
    /// the default (all-zero) summary in that case.
    pub watchdog_panic: Option<String>,
    /// The fault plan the run executed (inactive by default).
    pub faults: FaultPlan,
    /// Whether shard-to-core pinning was requested for this run (the
    /// per-shard `pinned_core` metric records where each shard landed).
    pub pin_cores: bool,
    /// Event records streamed to the JSONL log (`None` when no log was
    /// configured).
    pub events_logged: Option<u64>,
    /// The first I/O error hit while streaming the event log, if any.
    /// Logging degrades (stops writing, keeps counting the run) rather
    /// than voiding detection results over a full disk.
    pub event_log_error: Option<String>,
    /// Whether per-route verdict memoization was enabled for this run.
    pub memo_enabled: bool,
    /// Wall-clock duration of the run.
    pub wall_ns: u64,
    /// Host cores available — read this before comparing shard counts:
    /// with fewer cores than shards, wall throughput time-shares while
    /// `aggregate_capacity_pps` still measures true per-shard cost.
    pub cpus: usize,
}

impl EngineReport {
    /// Packets processed across all shards.
    pub fn processed(&self) -> u64 {
        self.shard_snapshots.iter().map(|s| s.packets).sum()
    }

    /// Packets dropped at ring enqueue (backpressure).
    pub fn dropped_full(&self) -> u64 {
        self.ring_snapshots.iter().map(|r| r.dropped_full).sum()
    }

    /// Packets shed at ingress under overload.
    pub fn shed(&self) -> u64 {
        self.ring_snapshots.iter().map(|r| r.shed).sum()
    }

    /// Packets lost to supervised worker panics.
    pub fn panic_lost(&self) -> u64 {
        self.shard_snapshots.iter().map(|s| s.panic_lost).sum()
    }

    /// Worker restarts performed by the supervisor.
    pub fn restarts(&self) -> u64 {
        self.shard_snapshots.iter().map(|s| s.restarts).sum()
    }

    /// Wall-clock throughput: processed packets per second of run time.
    pub fn wall_pps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.processed() as f64 * 1e9 / self.wall_ns as f64
    }

    /// Aggregate processing capacity: the sum over shards of packets
    /// per second of *CPU time*. On a machine with ≥ `shards` free
    /// cores this converges to wall throughput; on fewer cores it is
    /// the honest scaling measure (time-sharing inflates wall time but
    /// not CPU cost).
    pub fn aggregate_capacity_pps(&self) -> f64 {
        self.shard_snapshots.iter().map(|s| s.capacity_pps()).sum()
    }

    /// Whether at least one loop was detected and reported.
    pub fn loop_detected(&self) -> bool {
        self.aggregator.unique_flows > 0
    }

    /// Memo-table hits across all shards.
    pub fn memo_hits(&self) -> u64 {
        self.shard_snapshots.iter().map(|s| s.memo_hits).sum()
    }

    /// Memo-table misses (warming walks) across all shards.
    pub fn memo_misses(&self) -> u64 {
        self.shard_snapshots.iter().map(|s| s.memo_misses).sum()
    }

    /// Sampled cross-check walks across all shards.
    pub fn memo_sampled_walks(&self) -> u64 {
        self.shard_snapshots
            .iter()
            .map(|s| s.memo_sampled_walks)
            .sum()
    }

    /// Cache/walk divergences across all shards — must be 0; any other
    /// value means the memoized fast path disagreed with a full walk.
    pub fn memo_divergence(&self) -> u64 {
        self.shard_snapshots.iter().map(|s| s.memo_divergence).sum()
    }

    /// The typed error for a watchdog panic, when one occurred — for
    /// callers that treat losing stall supervision as fatal even though
    /// the run's detection claims still hold.
    pub fn watchdog_error(&self) -> Option<EngineError> {
        self.watchdog_panic
            .as_ref()
            .map(|msg| EngineError::WatchdogPanicked(msg.clone()))
    }

    /// Every offered packet is accounted for — enqueued, dropped at
    /// the ring, shed under overload, or quarantined at ingress — and
    /// everything enqueued was processed or counted lost to a
    /// supervised panic. Holds under an active fault plan; that is the
    /// point.
    pub fn accounted(&self) -> bool {
        let enqueued: u64 = self.ring_snapshots.iter().map(|r| r.enqueued).sum();
        self.offered == enqueued + self.dropped_full() + self.shed() + self.quarantined
            && enqueued == self.processed() + self.panic_lost()
    }

    /// Serializes the full report.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("shards", Json::UInt(self.shards as u64));
        obj.set("cpus", Json::UInt(self.cpus as u64));
        obj.set("offered", Json::UInt(self.offered));
        obj.set("processed", Json::UInt(self.processed()));
        obj.set("dropped_full", Json::UInt(self.dropped_full()));
        obj.set("shed", Json::UInt(self.shed()));
        obj.set("quarantined", Json::UInt(self.quarantined));
        obj.set("panic_lost", Json::UInt(self.panic_lost()));
        obj.set("restarts", Json::UInt(self.restarts()));
        obj.set("pin_cores", Json::Bool(self.pin_cores));
        obj.set("wall_ns", Json::UInt(self.wall_ns));
        obj.set("wall_pps", Json::Float(self.wall_pps()));
        obj.set(
            "aggregate_capacity_pps",
            Json::Float(self.aggregate_capacity_pps()),
        );
        obj.set("loop_detected", Json::Bool(self.loop_detected()));
        obj.set("accounted", Json::Bool(self.accounted()));
        let mut memo = Json::object();
        memo.set("enabled", Json::Bool(self.memo_enabled));
        memo.set("hits", Json::UInt(self.memo_hits()));
        memo.set("misses", Json::UInt(self.memo_misses()));
        memo.set("sampled_walks", Json::UInt(self.memo_sampled_walks()));
        memo.set("divergence", Json::UInt(self.memo_divergence()));
        obj.set("memo", memo);
        if let Some(n) = self.events_logged {
            obj.set("events_logged", Json::UInt(n));
        }
        if let Some(err) = &self.event_log_error {
            obj.set("event_log_error", Json::Str(err.clone()));
        }
        if self.faults.active() {
            obj.set("fault_plan", self.faults.to_json());
        }
        let mut watchdog = Json::object();
        watchdog.set("polls", Json::UInt(self.watchdog.polls));
        watchdog.set("stalls_detected", Json::UInt(self.watchdog.stalls_detected));
        watchdog.set("kicks", Json::UInt(self.watchdog.kicks));
        if let Some(msg) = &self.watchdog_panic {
            watchdog.set("panicked", Json::Str(msg.clone()));
        }
        obj.set("watchdog", watchdog);
        obj.set(
            "rings",
            Json::Array(
                self.ring_snapshots
                    .iter()
                    .map(|r| {
                        let mut o = Json::object();
                        o.set("enqueued", Json::UInt(r.enqueued));
                        o.set("dropped_full", Json::UInt(r.dropped_full));
                        o.set("stalls", Json::UInt(r.stalls));
                        o.set("shed", Json::UInt(r.shed));
                        o
                    })
                    .collect(),
            ),
        );
        obj.set(
            "shard_metrics",
            Json::Array(self.shard_snapshots.iter().map(|s| s.to_json()).collect()),
        );
        obj.set("aggregator", self.aggregator.to_json());
        obj
    }
}

/// The sharded engine. Construction validates the configuration and
/// compiles one pipeline per switch; [`Engine::run`] clones that
/// pipeline set into each worker.
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
    ids: Arc<[SwitchId]>,
    pipelines: Arc<Vec<UnrollerPipeline>>,
    layout: HeaderLayout,
}

impl Engine {
    /// Builds an engine over the given switch-ID assignment
    /// (`ids[node]` is node's switch ID, matching the simulator's).
    pub fn new(cfg: EngineConfig, ids: &[SwitchId]) -> Result<Self, EngineError> {
        if cfg.shards == 0 {
            return Err(EngineError::NoShards);
        }
        if cfg.batch_size == 0 {
            return Err(EngineError::ZeroBatch);
        }
        if cfg.ring_capacity == 0 {
            return Err(EngineError::ZeroRing);
        }
        if cfg.max_hops == 0 {
            return Err(EngineError::ZeroTtl);
        }
        if ids.is_empty() {
            return Err(EngineError::NoSwitches);
        }
        let pipelines = ids
            .iter()
            .map(|&id| UnrollerPipeline::new(id, cfg.params))
            .collect::<Result<Vec<_>, _>>()
            .map_err(EngineError::BadParams)?;
        Ok(Engine {
            layout: HeaderLayout::from_params(&cfg.params),
            ids: ids.into(),
            pipelines: Arc::new(pipelines),
            cfg,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Drives the source to exhaustion through the sharded pipeline and
    /// returns the full report. The dispatcher runs on the calling
    /// thread; workers, the aggregator, the watchdog, and the optional
    /// metrics monitor run on scoped threads that are all joined before
    /// this returns.
    ///
    /// # Errors
    ///
    /// [`EngineError::AggregatorPanicked`] if the aggregator thread
    /// died: worker panics are supervised in place, but an aggregator
    /// loss silently voids every detection claim, so it is the one
    /// runtime failure reported as an error rather than absorbed.
    pub fn run(&self, source: &mut dyn TrafficSource) -> Result<EngineReport, EngineError> {
        let shards = self.cfg.shards;
        let mut producers = Vec::with_capacity(shards);
        let mut consumers = Vec::with_capacity(shards);
        let mut ring_counters: Vec<Arc<RingCounters>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (p, c, counters) = ring(self.cfg.ring_capacity, self.cfg.full_policy);
            producers.push(p);
            consumers.push(c);
            ring_counters.push(counters);
        }
        let metrics: Vec<Arc<ShardMetrics>> = (0..shards)
            .map(|_| Arc::new(ShardMetrics::default()))
            .collect();
        let kicks: Vec<Arc<AtomicBool>> = (0..shards)
            .map(|_| Arc::new(AtomicBool::new(false)))
            .collect();
        let (ev_tx, ev_rx) = std::sync::mpsc::channel::<LoopEvent>();
        // Open the event log before spawning anything: a bad path is a
        // configuration error, not a mid-run surprise.
        let log_writer = match &self.cfg.events_log {
            Some(log) => Some(
                EventLogWriter::create(&log.path, &log.meta)
                    .map_err(|e| EngineError::EventLogIo(e.to_string()))?,
            ),
            None => None,
        };
        let plan = &self.cfg.faults;
        let quarantine: HashSet<FlowKey> = self.cfg.quarantine.iter().copied().collect();
        // The run's route table. A churn-capable source hands over the
        // live epoch table it publishes new generations into; every
        // other source gets its frozen route set wrapped as generation
        // 1 of a table that never swaps. Either way each worker holds a
        // lock-free reader onto it.
        let route_table = source
            .route_table()
            .unwrap_or_else(|| Arc::new(EpochRouteTable::new(source.routes())));
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);

        let start = Instant::now();
        let mut offered = 0u64;
        let mut quarantined = 0u64;
        let done = AtomicBool::new(false);
        let watchdog_stop = AtomicBool::new(false);

        let joined = std::thread::scope(|scope| {
            for (shard, consumer) in consumers.into_iter().enumerate() {
                let worker = ShardWorker {
                    shard,
                    pipelines: self.pipelines.clone(),
                    ids: self.ids.clone(),
                    routes: route_table.reader(),
                    layout: self.layout,
                    max_hops: self.cfg.max_hops,
                    batch_size: self.cfg.batch_size,
                    metrics: metrics[shard].clone(),
                    events: ev_tx.clone(),
                    consumer,
                    faults: plan.active().then(|| plan.for_shard(shard)),
                    event_faults: if plan.active() {
                        plan.event_faults(shard)
                    } else {
                        EventFaults::inactive()
                    },
                    kick: kicks[shard].clone(),
                    pin_core: self.cfg.pin_cores.then_some(shard % cpus),
                    memo: self.cfg.memo,
                    stepped: self.cfg.stepped,
                };
                scope.spawn(move || worker.run());
            }
            // Workers hold their own senders now; dropping ours lets the
            // aggregator terminate once every worker has exited.
            drop(ev_tx);
            // The aggregator owns the log writer: each first-per-flow
            // event is written and flushed as it arrives, so the log on
            // disk is always a whole-line prefix of the final log. If
            // the aggregator thread dies mid-run, `BufWriter`'s drop
            // still flushes during unwind — partial runs stay parseable.
            let agg_handle = scope.spawn(move || {
                let mut writer = log_writer;
                let mut io_error: Option<String> = None;
                let report = aggregate_with(ev_rx, |event| {
                    if io_error.is_some() {
                        return;
                    }
                    if let Some(w) = writer.as_mut() {
                        if let Err(e) = w.write_event(event).and_then(|()| w.flush()) {
                            io_error = Some(e.to_string());
                        }
                    }
                });
                let logged = match (writer, &io_error) {
                    (Some(w), None) => w.finish().ok(),
                    _ => None,
                };
                (report, logged, io_error)
            });

            let watchdog_handle = self.cfg.watchdog.map(|interval| {
                let watch: Vec<WatchShard> = (0..shards)
                    .map(|shard| WatchShard {
                        metrics: metrics[shard].clone(),
                        counters: ring_counters[shard].clone(),
                        kick: kicks[shard].clone(),
                    })
                    .collect();
                let stop = &watchdog_stop;
                let wdpanic = plan.watchdog_panic;
                scope.spawn(move || {
                    if wdpanic {
                        install_quiet_panic_hook();
                        inject_panic(usize::MAX);
                    }
                    run_watchdog(&watch, interval, stop)
                })
            });

            if let Some(every) = self.cfg.snapshot_every {
                let metrics = &metrics;
                let ring_counters = &ring_counters;
                let done = &done;
                scope.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        std::thread::sleep(every);
                        let mut snap = Json::object();
                        snap.set(
                            "packets",
                            Json::UInt(metrics.iter().map(|m| m.snapshot().packets).sum::<u64>()),
                        );
                        snap.set(
                            "dropped_full",
                            Json::UInt(
                                ring_counters
                                    .iter()
                                    .map(|r| r.snapshot().dropped_full)
                                    .sum::<u64>(),
                            ),
                        );
                        snap.set(
                            "loop_events",
                            Json::UInt(
                                metrics
                                    .iter()
                                    .map(|m| m.snapshot().loop_events)
                                    .sum::<u64>(),
                            ),
                        );
                        eprintln!("{}", snap.render());
                    }
                });
            }

            // The dispatcher: pull bursts from the source, RSS each
            // packet into a per-shard staging buffer — minus
            // quarantined flows (dropped at ingress) and, under
            // overload, shed ones — then hand each shard its slice of
            // the burst in ONE batched ring push. Staging buffers are
            // reused across bursts, so steady-state dispatch allocates
            // nothing.
            let mut shedder = Shedder::new(shards, self.cfg.shed);
            let mut burst: Vec<EnginePacket> = Vec::with_capacity(self.cfg.batch_size * shards);
            let mut staged: Vec<Vec<EnginePacket>> = (0..shards)
                .map(|_| Vec::with_capacity(self.cfg.batch_size * shards))
                .collect();
            loop {
                burst.clear();
                if source.fill(self.cfg.batch_size * shards, &mut burst) == 0 {
                    break;
                }
                offered += burst.len() as u64;
                for packet in burst.drain(..) {
                    if !quarantine.is_empty() && quarantine.contains(&packet.flow) {
                        quarantined += 1;
                        continue;
                    }
                    let shard = packet.flow.shard(shards);
                    if shedder.should_shed(shard, &packet.flow) {
                        producers[shard].record_shed();
                        continue;
                    }
                    staged[shard].push(packet);
                }
                for (shard, stage) in staged.iter_mut().enumerate() {
                    if stage.is_empty() {
                        continue;
                    }
                    let result = producers[shard].push_batch(stage);
                    shedder.observe_batch(shard, &result);
                }
            }
            // Closing the rings ends the workers; their event senders
            // drop as they exit, which ends the aggregator.
            drop(producers);
            let aggregator = agg_handle.join();
            done.store(true, Ordering::Relaxed);
            watchdog_stop.store(true, Ordering::Relaxed);
            // A watchdog panic must not abort a finished run: every
            // packet is already accounted, so degrade to the default
            // (all-zero) summary and surface the panic message instead
            // of losing the report to an `expect`.
            let (watchdog, watchdog_panic) = match watchdog_handle.map(|h| h.join()) {
                None => (WatchdogReport::default(), None),
                Some(Ok(report)) => (report, None),
                Some(Err(payload)) => {
                    let msg = if payload.is::<InjectedPanic>() {
                        "injected watchdog panic (fault plan)".to_string()
                    } else {
                        panic_message(payload)
                    };
                    (WatchdogReport::default(), Some(msg))
                }
            };
            (aggregator, watchdog, watchdog_panic)
        });
        let wall_ns = start.elapsed().as_nanos() as u64;
        let (aggregator, watchdog, watchdog_panic) = joined;
        let (aggregator, events_logged, event_log_error) = aggregator
            .map_err(|payload| EngineError::AggregatorPanicked(panic_message(payload)))?;

        Ok(EngineReport {
            shards,
            shard_snapshots: metrics.iter().map(|m| m.snapshot()).collect(),
            ring_snapshots: ring_counters.iter().map(|r| r.snapshot()).collect(),
            aggregator,
            offered,
            quarantined,
            watchdog,
            watchdog_panic,
            faults: self.cfg.faults.clone(),
            pin_cores: self.cfg.pin_cores,
            events_logged,
            event_log_error,
            memo_enabled: self.cfg.memo.is_some(),
            wall_ns,
            cpus,
        })
    }
}

/// Convenience: RSS mapping for an arbitrary flow (used by tests and
/// the proptest suite to cross-check the dispatcher).
pub fn shard_of(flow: &FlowKey, shards: usize) -> usize {
    flow.shard(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SyntheticSource;

    fn ids(n: u32) -> Vec<SwitchId> {
        (0..n).map(|i| 1000 + i).collect()
    }

    #[test]
    fn config_validation_rejects_zeroes() {
        let ids = ids(4);
        for (cfg, err) in [
            (
                EngineConfig {
                    shards: 0,
                    ..EngineConfig::default()
                },
                EngineError::NoShards,
            ),
            (
                EngineConfig {
                    batch_size: 0,
                    ..EngineConfig::default()
                },
                EngineError::ZeroBatch,
            ),
            (
                EngineConfig {
                    ring_capacity: 0,
                    ..EngineConfig::default()
                },
                EngineError::ZeroRing,
            ),
            (
                EngineConfig {
                    max_hops: 0,
                    ..EngineConfig::default()
                },
                EngineError::ZeroTtl,
            ),
        ] {
            assert_eq!(Engine::new(cfg, &ids).unwrap_err(), err);
        }
        assert_eq!(
            Engine::new(EngineConfig::default(), &[]).unwrap_err(),
            EngineError::NoSwitches
        );
    }

    #[test]
    fn clean_traffic_flows_through_all_shards() {
        let engine = Engine::new(
            EngineConfig {
                shards: 4,
                full_policy: FullPolicy::Block,
                ..EngineConfig::default()
            },
            &ids(64),
        )
        .unwrap();
        let mut source = SyntheticSource::new(64, 32, 2_000, 0, 0, 9);
        let report = engine.run(&mut source).expect("fault-free run");
        assert_eq!(report.offered, 2_000);
        assert_eq!(report.processed(), 2_000);
        assert!(report.accounted(), "{report:?}");
        assert!(!report.loop_detected());
        assert_eq!(report.dropped_full(), 0, "Block policy never drops");
        let busy_shards = report
            .shard_snapshots
            .iter()
            .filter(|s| s.packets > 0)
            .count();
        assert!(busy_shards >= 3, "RSS should spread 32 flows over 4 shards");
    }

    #[test]
    fn looping_traffic_is_detected_and_deduplicated() {
        let engine = Engine::new(
            EngineConfig {
                shards: 2,
                full_policy: FullPolicy::Block,
                ..EngineConfig::default()
            },
            &ids(64),
        )
        .unwrap();
        // Every 4th of 16 flows loops from packet 500 of 4000.
        let mut source = SyntheticSource::new(64, 16, 4_000, 4, 500, 10);
        let report = engine.run(&mut source).expect("fault-free run");
        assert!(report.loop_detected());
        assert!(report.accounted());
        assert_eq!(report.aggregator.unique_flows, 4);
        assert!(
            report.aggregator.duplicates_suppressed > 0,
            "trapped flows re-detect every packet; dedupe must kick in"
        );
        let events: u64 = report.shard_snapshots.iter().map(|s| s.loop_events).sum();
        assert_eq!(report.aggregator.events_received, events);
    }

    #[test]
    fn run_report_serializes() {
        let engine = Engine::new(EngineConfig::default(), &ids(16)).unwrap();
        let mut source = SyntheticSource::new(16, 4, 100, 0, 0, 3);
        let report = engine.run(&mut source).expect("fault-free run");
        let rendered = report.to_json().render_pretty();
        for key in [
            "wall_pps",
            "aggregate_capacity_pps",
            "dropped_full",
            "cpus",
            "shard_metrics",
            "shed",
            "quarantined",
            "watchdog",
            "pin_cores",
            "pinned_core",
            "memo",
            "sampled_walks",
        ] {
            assert!(rendered.contains(key), "missing {key}");
        }
    }

    #[test]
    fn pinned_run_records_cores_and_still_accounts() {
        let engine = Engine::new(
            EngineConfig {
                shards: 2,
                full_policy: FullPolicy::Block,
                pin_cores: true,
                ..EngineConfig::default()
            },
            &ids(64),
        )
        .unwrap();
        let mut source = SyntheticSource::new(64, 8, 1_000, 0, 0, 21);
        let report = engine.run(&mut source).expect("fault-free run");
        assert!(report.pin_cores);
        assert!(report.accounted(), "{report:?}");
        assert_eq!(report.processed(), 1_000);
        if cfg!(target_os = "linux") {
            for (shard, snap) in report.shard_snapshots.iter().enumerate() {
                assert_eq!(
                    snap.pinned_core,
                    Some((shard % report.cpus) as u64),
                    "shard {shard} pinned round-robin"
                );
            }
        }
    }

    #[test]
    fn events_log_streams_and_survives_injected_panics() {
        let path = std::env::temp_dir()
            .join(format!("unroller_evlog_{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let meta = RunMeta {
            run_id: RunMeta::derived_run_id("synthetic:64", 10, 1),
            seed: 10,
            topology: "synthetic:64".to_string(),
            nodes: 64,
            flows: 16,
            packets: 4_000,
            shards: 2,
            epoch: 1,
            id_base: 1000,
            injection: None,
        };
        let engine = Engine::new(
            EngineConfig {
                shards: 2,
                full_policy: FullPolicy::Block,
                // Panics mid-run exercise the supervised-restart path
                // while the log is live.
                faults: FaultPlan::parse("seed=5,panic=0.002,restarts=8").unwrap(),
                events_log: Some(EventsLogConfig {
                    path: path.clone(),
                    meta,
                }),
                ..EngineConfig::default()
            },
            &ids(64),
        )
        .unwrap();
        let mut source = SyntheticSource::new(64, 16, 4_000, 4, 500, 10);
        let report = engine.run(&mut source).expect("supervised run completes");
        assert!(report.restarts() > 0, "panic faults should have fired");
        assert!(report.loop_detected());
        assert_eq!(report.event_log_error, None);
        let logged = report.events_logged.expect("log was configured");
        assert_eq!(logged, report.aggregator.events.len() as u64);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, logged + 1, "header + one per event");
        assert!(lines[0].starts_with("{\"unroller_event_log\":1,"));
        assert!(lines.iter().all(|l| l.ends_with('}')), "whole lines only");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_events_log_path_fails_before_spawning() {
        let engine = Engine::new(
            EngineConfig {
                events_log: Some(EventsLogConfig {
                    path: "/dev/null/not-a-dir/log.jsonl".to_string(),
                    meta: RunMeta {
                        run_id: "x".to_string(),
                        seed: 0,
                        topology: "synthetic:4".to_string(),
                        nodes: 4,
                        flows: 1,
                        packets: 1,
                        shards: 1,
                        epoch: 0,
                        id_base: 1000,
                        injection: None,
                    },
                }),
                ..EngineConfig::default()
            },
            &ids(4),
        )
        .unwrap();
        let mut source = SyntheticSource::new(4, 1, 10, 0, 0, 1);
        match engine.run(&mut source) {
            Err(EngineError::EventLogIo(_)) => {}
            other => panic!("expected EventLogIo, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_panic_degrades_to_default_summary() {
        let engine = Engine::new(
            EngineConfig {
                shards: 2,
                full_policy: FullPolicy::Block,
                watchdog: Some(Duration::from_millis(5)),
                faults: FaultPlan::parse("wdpanic=1").unwrap(),
                ..EngineConfig::default()
            },
            &ids(64),
        )
        .unwrap();
        let mut source = SyntheticSource::new(64, 8, 2_000, 4, 100, 13);
        let report = engine
            .run(&mut source)
            .expect("a dead watchdog must not abort the run");
        assert!(report.accounted(), "{report:?}");
        assert!(report.loop_detected());
        assert_eq!(
            report.watchdog,
            WatchdogReport::default(),
            "default summary"
        );
        let msg = report
            .watchdog_panic
            .clone()
            .expect("the panic is surfaced, not swallowed");
        match report.watchdog_error() {
            Some(EngineError::WatchdogPanicked(m)) => assert_eq!(m, msg),
            other => panic!("expected WatchdogPanicked, got {other:?}"),
        }
        assert!(report.to_json().render().contains("panicked"));
    }

    #[test]
    fn tiny_rings_with_drop_policy_account_for_losses() {
        let engine = Engine::new(
            EngineConfig {
                shards: 2,
                ring_capacity: 1,
                batch_size: 1,
                full_policy: FullPolicy::Drop,
                ..EngineConfig::default()
            },
            &ids(64),
        )
        .unwrap();
        let mut source = SyntheticSource::new(64, 32, 5_000, 0, 0, 4);
        let report = engine.run(&mut source).expect("fault-free run");
        assert!(report.accounted(), "drops must be counted, never silent");
        assert_eq!(report.processed() + report.dropped_full(), 5_000);
    }

    #[test]
    fn quarantined_flows_are_dropped_at_ingress_and_accounted() {
        // Quarantine a flow the source actually emits (keys derive from
        // the flow's random walk endpoints, so probe the source for one).
        let looping = SyntheticSource::new(64, 8, 2_000, 1, 0, 11).looping_flow_keys()[0];
        let clean_run = |quarantine: Vec<FlowKey>| {
            let engine = Engine::new(
                EngineConfig {
                    shards: 2,
                    full_policy: FullPolicy::Block,
                    quarantine,
                    ..EngineConfig::default()
                },
                &ids(64),
            )
            .unwrap();
            let mut source = SyntheticSource::new(64, 8, 2_000, 1, 0, 11);
            engine.run(&mut source).expect("fault-free run")
        };
        let before = clean_run(Vec::new());
        assert!(before.loop_detected(), "every flow loops in this source");
        let after = clean_run(vec![looping]);
        assert!(after.quarantined > 0, "the flow's packets were intercepted");
        assert!(after.accounted(), "{after:?}");
        assert_eq!(
            after.processed() + after.quarantined,
            2_000,
            "quarantine drops exactly the intercepted packets"
        );
    }

    #[test]
    fn overload_shedding_sheds_low_priority_and_accounts() {
        let engine = Engine::new(
            EngineConfig {
                shards: 2,
                ring_capacity: 1,
                batch_size: 1,
                full_policy: FullPolicy::Drop,
                shed: true,
                ..EngineConfig::default()
            },
            &ids(64),
        )
        .unwrap();
        // Heavy traffic into capacity-1 rings: rings saturate, the
        // shedder engages, and every outcome is still accounted.
        let mut source = SyntheticSource::new(64, 64, 20_000, 0, 0, 12);
        let report = engine.run(&mut source).expect("fault-free run");
        assert!(report.accounted(), "{report:?}");
        assert!(report.shed() > 0, "saturated rings shed under overload");
        assert_eq!(
            report.processed() + report.dropped_full() + report.shed(),
            20_000
        );
    }
}
