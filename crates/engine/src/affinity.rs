//! Shard-to-core pinning via `sched_setaffinity`.
//!
//! Pinning stops the scheduler migrating a worker between cores
//! mid-run, which would drag its cache-warm pipeline clones and ring
//! lines along with it. It is opt-in
//! ([`EngineConfig::pin_cores`](crate::engine::EngineConfig::pin_cores)):
//! on a busy or oversubscribed machine pinning can *hurt* by stacking
//! shards behind other load on the chosen core, so the default leaves
//! placement to the OS.
//!
//! This is the one place the crate steps outside safe Rust: there is no
//! std API for CPU affinity and the workspace vendors no libc binding,
//! so the raw syscall wrapper is declared here, in the smallest
//! possible scope (`deny(unsafe_code)` guards the rest of the crate).
//! Non-Linux builds compile the same public function and simply report
//! failure.

/// Pins the *calling thread* to `core` (0-based). Returns `true` on
/// success; `false` when the OS refuses (core offline or outside the
/// process's cpuset) or the platform does not support pinning — callers
/// treat failure as "run unpinned", never as an error.
pub fn pin_to_core(core: usize) -> bool {
    imp::pin_to_core(core)
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    extern "C" {
        /// glibc/musl wrapper for the `sched_setaffinity(2)` syscall.
        /// `pid == 0` targets the calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    pub fn pin_to_core(core: usize) -> bool {
        // A fixed 1024-bit mask (16 × u64), the kernel's traditional
        // cpu_set_t width; cores beyond it are refused, not truncated.
        let mut mask = [0u64; 16];
        let Some(word) = mask.get_mut(core / 64) else {
            return false;
        };
        *word = 1u64 << (core % 64);
        // SAFETY: the mask outlives the call, the length matches the
        // buffer, and the syscall only reads from the pointer.
        let rc = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
        rc == 0
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub fn pin_to_core(_core: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_to_core_zero_succeeds_on_linux() {
        // Core 0 exists on every machine; off Linux the call must fail
        // gracefully rather than pretend.
        assert_eq!(pin_to_core(0), cfg!(target_os = "linux"));
    }

    #[test]
    fn absurd_core_is_refused_not_ub() {
        assert!(!pin_to_core(1 << 20), "mask width exceeded");
    }
}
