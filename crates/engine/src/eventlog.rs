//! The engine's loop-event log: a line-oriented JSON (JSONL) export of
//! every deduplicated loop detection, stamped with enough run metadata
//! to join artifacts from different runs offline.
//!
//! Layout: the first line is a header object carrying the run's
//! identity ([`RunMeta`] — seed, topology spec, epoch, shard count, and
//! the injected loop, if any); every following line is one
//! [`LoopEvent`] record. Logs from several runs concatenate cleanly —
//! a reader treats each header line as switching run context — which is
//! exactly how `unroller-analytics` consumes multi-run archives.

use crate::aggregate::LoopEvent;
use crate::json::Json;
use crate::source::LoopInjection;
use std::io::{BufWriter, Write};

/// The format version stamped into every log header.
pub const EVENT_LOG_VERSION: u64 = 1;

/// Identity and provenance of one engine run, stamped into both the
/// metrics JSON (`run_meta` section) and the event log header so the
/// two artifacts can be joined after the fact.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Stable identifier joining this run's artifacts (derived from
    /// topology, seed, and epoch unless overridden).
    pub run_id: String,
    /// Traffic seed.
    pub seed: u64,
    /// Topology spec string (`ring:32`, `fat-tree:4`, ...).
    pub topology: String,
    /// Node count of the generated topology.
    pub nodes: usize,
    /// Concurrent flows offered.
    pub flows: usize,
    /// Total packets offered.
    pub packets: u64,
    /// Worker shard count.
    pub shards: usize,
    /// Operator-assigned epoch of this run (analytics classifies loops
    /// seen across ≥ 2 epochs as persistent).
    pub epoch: u64,
    /// Base of the sequential switch-ID assignment (`ids[node] =
    /// id_base + node`), so analytics can map switch IDs back to nodes.
    pub id_base: u32,
    /// The loop injected into the routing state, if any.
    pub injection: Option<LoopInjection>,
}

impl RunMeta {
    /// The default run identifier: deterministic in (topology, seed,
    /// epoch) so re-runs of the same configuration merge as one run.
    pub fn derived_run_id(topology: &str, seed: u64, epoch: u64) -> String {
        format!("{topology}-seed{seed}-epoch{epoch}")
    }

    /// The metadata as a JSON object (the metrics report's `run_meta`
    /// section and the payload of the log header).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("run_id", Json::Str(self.run_id.clone()));
        obj.set("seed", Json::UInt(self.seed));
        obj.set("topology", Json::Str(self.topology.clone()));
        obj.set("nodes", Json::UInt(self.nodes as u64));
        obj.set("flows", Json::UInt(self.flows as u64));
        obj.set("packets", Json::UInt(self.packets));
        obj.set("shards", Json::UInt(self.shards as u64));
        obj.set("epoch", Json::UInt(self.epoch));
        obj.set("id_base", Json::UInt(self.id_base as u64));
        match &self.injection {
            Some(inj) => {
                let mut j = Json::object();
                j.set(
                    "cycle",
                    Json::Array(inj.cycle.iter().map(|&n| Json::UInt(n as u64)).collect()),
                );
                j.set("dst", Json::UInt(inj.dst as u64));
                j.set("at_packet", Json::UInt(inj.at_packet));
                obj.set("injection", j);
            }
            None => {
                obj.set("injection", Json::Null);
            }
        }
        obj
    }

    /// The log's header line (no trailing newline).
    pub fn header_line(&self) -> String {
        let mut obj = Json::object();
        obj.set("unroller_event_log", Json::UInt(EVENT_LOG_VERSION));
        obj.set("run", self.to_json());
        obj.render()
    }
}

/// One [`LoopEvent`] as a single-line JSON record, stamped with the
/// run's epoch.
pub fn event_line(event: &LoopEvent, epoch: u64) -> String {
    let mut flow = Json::object();
    flow.set("src_ip", Json::UInt(event.flow.src_ip as u64));
    flow.set("dst_ip", Json::UInt(event.flow.dst_ip as u64));
    flow.set("src_port", Json::UInt(event.flow.src_port as u64));
    flow.set("dst_port", Json::UInt(event.flow.dst_port as u64));
    flow.set("proto", Json::UInt(event.flow.proto as u64));
    let mut obj = Json::object();
    obj.set("flow", flow);
    obj.set("seq", Json::UInt(event.seq));
    obj.set("shard", Json::UInt(event.shard as u64));
    obj.set("trigger", Json::UInt(event.trigger as u64));
    obj.set("hop", Json::UInt(event.hop as u64));
    obj.set(
        "members",
        Json::Array(
            event
                .members
                .iter()
                .map(|&m| Json::UInt(m as u64))
                .collect(),
        ),
    );
    obj.set("complete", Json::Bool(event.complete));
    obj.set("epoch", Json::UInt(epoch));
    obj.render()
}

/// Writes an event log: one header line, then one line per event.
#[derive(Debug)]
pub struct EventLogWriter<W: Write> {
    out: BufWriter<W>,
    epoch: u64,
    events: u64,
}

impl EventLogWriter<std::fs::File> {
    /// Creates (truncating) the log file at `path` and writes the
    /// header, creating parent directories as needed.
    pub fn create(path: &str, meta: &RunMeta) -> std::io::Result<Self> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Self::new(std::fs::File::create(path)?, meta)
    }
}

impl<W: Write> EventLogWriter<W> {
    /// Wraps `out` and writes the header line.
    pub fn new(out: W, meta: &RunMeta) -> std::io::Result<Self> {
        let mut w = EventLogWriter {
            out: BufWriter::new(out),
            epoch: meta.epoch,
            events: 0,
        };
        writeln!(w.out, "{}", meta.header_line())?;
        Ok(w)
    }

    /// Appends one event record.
    pub fn write_event(&mut self, event: &LoopEvent) -> std::io::Result<()> {
        writeln!(self.out, "{}", event_line(event, self.epoch))?;
        self.events += 1;
        Ok(())
    }

    /// Flushes buffered records to the underlying writer. The engine's
    /// streaming sink calls this after every record so a run that dies
    /// mid-stream (worker exhaustion, aggregator panic, process kill)
    /// still leaves every whole line it wrote on disk.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }

    /// Flushes and returns the number of event records written.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.out.flush()?;
        Ok(self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;

    fn meta() -> RunMeta {
        RunMeta {
            run_id: RunMeta::derived_run_id("ring:8", 7, 2),
            seed: 7,
            topology: "ring:8".to_string(),
            nodes: 8,
            flows: 4,
            packets: 1000,
            shards: 2,
            epoch: 2,
            id_base: 100,
            injection: Some(LoopInjection {
                cycle: vec![1, 2],
                dst: 4,
                at_packet: 250,
            }),
        }
    }

    #[test]
    fn header_line_carries_run_identity() {
        let line = meta().header_line();
        assert!(line.starts_with("{\"unroller_event_log\":1,"));
        assert!(line.contains("\"run_id\":\"ring:8-seed7-epoch2\""));
        assert!(line.contains("\"topology\":\"ring:8\""));
        assert!(line.contains("\"cycle\":[1,2]"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn no_injection_renders_null() {
        let mut m = meta();
        m.injection = None;
        assert!(m.header_line().contains("\"injection\":null"));
    }

    #[test]
    fn writer_emits_header_then_one_line_per_event() {
        let mut buf = Vec::new();
        {
            let mut w = EventLogWriter::new(&mut buf, &meta()).unwrap();
            let event = LoopEvent {
                flow: FlowKey::synthetic(1, 4, 0),
                seq: 42,
                shard: 1,
                trigger: 101,
                hop: 9,
                members: vec![101, 102],
                complete: true,
            };
            w.write_event(&event).unwrap();
            assert_eq!(w.finish().unwrap(), 1);
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("unroller_event_log"));
        assert!(lines[1].contains("\"seq\":42"));
        assert!(lines[1].contains("\"members\":[101,102]"));
        assert!(lines[1].contains("\"epoch\":2"));
    }
}
