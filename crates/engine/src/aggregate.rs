//! The loop-event aggregator: the funnel between worker shards and the
//! control plane.
//!
//! Workers publish [`LoopEvent`]s over an MPSC channel; the aggregator
//! dedupes them per flow (a trapped flow keeps re-detecting the same
//! loop packet after packet — the controller needs one report, not
//! thousands) and hands the surviving reports to an [`EventSink`]. The
//! shipped sink wraps [`unroller_control::Controller`], closing the
//! paper's detect → report → localize → heal pipeline at engine scale.

use crate::flow::FlowKey;
use crate::json::Json;
use std::collections::HashMap;
use std::sync::mpsc::Receiver;
use unroller_core::SwitchId;

/// One loop detection, as emitted by a worker shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopEvent {
    /// The flow whose packet tripped the detector.
    pub flow: FlowKey,
    /// The packet's per-flow sequence number.
    pub seq: u64,
    /// The shard that processed it.
    pub shard: usize,
    /// The switch whose pipeline reported the loop.
    pub trigger: SwitchId,
    /// The packet's hop count at the report.
    pub hop: u32,
    /// Loop membership collected §3.5-style: switch IDs recorded from
    /// the trigger until it reappeared.
    pub members: Vec<SwitchId>,
    /// Whether membership collection closed the cycle (saw the trigger
    /// again) before hitting its cap or the path ending.
    pub complete: bool,
}

/// What the aggregator hands the deduplicated events to.
pub trait EventSink {
    /// Called once per unique flow's first loop event.
    fn on_loop(&mut self, event: &LoopEvent);
}

/// An [`EventSink`] that feeds membership reports into the network
/// controller for localization.
#[derive(Debug, Default)]
pub struct ControllerSink {
    /// The wrapped controller.
    pub controller: unroller_control::Controller,
    /// Events whose membership was incomplete (not ingested).
    pub incomplete: u64,
}

impl ControllerSink {
    /// Wraps a controller provisioned with the engine's switch IDs.
    pub fn new(controller: unroller_control::Controller) -> Self {
        ControllerSink {
            controller,
            incomplete: 0,
        }
    }
}

impl EventSink for ControllerSink {
    fn on_loop(&mut self, event: &LoopEvent) {
        if event.complete {
            self.controller.ingest(&event.members);
        } else {
            self.incomplete += 1;
        }
    }
}

/// An [`EventSink`] that routes complete loop events to per-domain
/// buckets for a federated control plane: each event goes to the domain
/// owning its *trigger* switch (the switch that reported the loop),
/// mirroring how a real deployment's report packets land at the local
/// domain controller. Events whose trigger maps to no domain are
/// counted, not dropped silently.
pub struct DomainRouter {
    domain_of: Box<dyn Fn(SwitchId) -> Option<u32>>,
    /// Per-domain event buckets, indexed by domain ID.
    pub buckets: Vec<Vec<LoopEvent>>,
    /// Events whose trigger switch belongs to no known domain.
    pub unroutable: u64,
}

impl std::fmt::Debug for DomainRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DomainRouter")
            .field("domains", &self.buckets.len())
            .field("unroutable", &self.unroutable)
            .finish()
    }
}

impl DomainRouter {
    /// A router over `domains` buckets; `domain_of` maps a switch ID to
    /// its owning domain (or `None` for foreign switches).
    pub fn new(domains: usize, domain_of: impl Fn(SwitchId) -> Option<u32> + 'static) -> Self {
        DomainRouter {
            domain_of: Box::new(domain_of),
            buckets: vec![Vec::new(); domains],
            unroutable: 0,
        }
    }

    /// Total routed events across all buckets.
    pub fn routed(&self) -> u64 {
        self.buckets.iter().map(|b| b.len() as u64).sum()
    }
}

impl EventSink for DomainRouter {
    fn on_loop(&mut self, event: &LoopEvent) {
        match (self.domain_of)(event.trigger) {
            Some(d) if (d as usize) < self.buckets.len() => {
                self.buckets[d as usize].push(event.clone());
            }
            _ => self.unroutable += 1,
        }
    }
}

/// The aggregator's summary of one engine run.
#[derive(Debug, Clone, Default)]
pub struct AggregatorReport {
    /// Raw events received from all shards.
    pub events_received: u64,
    /// Flows with at least one loop event.
    pub unique_flows: u64,
    /// Events suppressed as duplicates of an already-reported flow.
    pub duplicates_suppressed: u64,
    /// The first event per flow, in arrival order.
    pub events: Vec<LoopEvent>,
}

impl AggregatorReport {
    /// Serializes the summary (event list truncated to the first 16 —
    /// reports are for humans and CI asserts, not bulk export).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("events_received", Json::UInt(self.events_received));
        obj.set("unique_flows", Json::UInt(self.unique_flows));
        obj.set(
            "duplicates_suppressed",
            Json::UInt(self.duplicates_suppressed),
        );
        obj.set(
            "events",
            Json::Array(
                self.events
                    .iter()
                    .take(16)
                    .map(|e| {
                        let mut ev = Json::object();
                        ev.set("shard", Json::UInt(e.shard as u64));
                        ev.set("seq", Json::UInt(e.seq));
                        ev.set("trigger", Json::UInt(e.trigger as u64));
                        ev.set("hop", Json::UInt(e.hop as u64));
                        ev.set(
                            "members",
                            Json::Array(e.members.iter().map(|&m| Json::UInt(m as u64)).collect()),
                        );
                        ev.set("complete", Json::Bool(e.complete));
                        ev
                    })
                    .collect(),
            ),
        );
        obj
    }
}

/// Drains the event channel until every sender hangs up, deduplicating
/// per flow. Runs on the aggregator thread.
pub fn aggregate(rx: Receiver<LoopEvent>) -> AggregatorReport {
    aggregate_with(rx, |_| {})
}

/// [`aggregate`] with a streaming hook: `on_event` fires for each
/// first-per-flow event *as it arrives*, before the run finishes. The
/// engine uses this to persist the event log incrementally so a
/// crashed or fault-aborted run still leaves a parseable log on disk.
pub fn aggregate_with(
    rx: Receiver<LoopEvent>,
    mut on_event: impl FnMut(&LoopEvent),
) -> AggregatorReport {
    let mut report = AggregatorReport::default();
    let mut seen: HashMap<FlowKey, u64> = HashMap::new();
    while let Ok(event) = rx.recv() {
        report.events_received += 1;
        match seen.get_mut(&event.flow) {
            Some(count) => {
                *count += 1;
                report.duplicates_suppressed += 1;
            }
            None => {
                seen.insert(event.flow, 1);
                on_event(&event);
                report.events.push(event);
            }
        }
    }
    report.unique_flows = seen.len() as u64;
    report
}

/// Feeds every deduplicated event to a sink (post-run delivery: the
/// aggregator thread has already joined, so the sink needs no
/// synchronization).
pub fn deliver(events: &[LoopEvent], sink: &mut dyn EventSink) {
    for event in events {
        sink.on_loop(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn event(flow_index: u32, seq: u64, members: Vec<SwitchId>) -> LoopEvent {
        LoopEvent {
            flow: FlowKey::synthetic(1, 2, flow_index),
            seq,
            shard: 0,
            trigger: members.first().copied().unwrap_or(0),
            hop: 7,
            members,
            complete: true,
        }
    }

    #[test]
    fn aggregate_dedupes_per_flow() {
        let (tx, rx) = channel();
        for seq in 0..5 {
            tx.send(event(0, seq, vec![10, 11])).unwrap();
        }
        tx.send(event(1, 0, vec![12, 13])).unwrap();
        drop(tx);
        let report = aggregate(rx);
        assert_eq!(report.events_received, 6);
        assert_eq!(report.unique_flows, 2);
        assert_eq!(report.duplicates_suppressed, 4);
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.events[0].seq, 0, "keeps the first event per flow");
    }

    #[test]
    fn controller_sink_localizes_complete_memberships() {
        let ids = vec![10u32, 11, 12, 13];
        let mut sink = ControllerSink::new(unroller_control::Controller::new(&ids));
        let mut incomplete = event(0, 0, vec![11, 12]);
        incomplete.complete = false;
        deliver(
            &[
                event(1, 0, vec![11, 12]),
                event(2, 3, vec![12, 11]),
                incomplete,
            ],
            &mut sink,
        );
        let loops = sink.controller.localized_loops();
        assert_eq!(loops.len(), 1, "two rotations of one loop");
        assert_eq!(loops[0].report_count, 2);
        assert_eq!(sink.incomplete, 1);
        assert_eq!(sink.controller.total_reports(), 2);
    }

    #[test]
    fn domain_router_buckets_by_trigger_owner() {
        // Switches 10-11 belong to domain 0, 12-13 to domain 1.
        let mut router = DomainRouter::new(2, |id| match id {
            10 | 11 => Some(0),
            12 | 13 => Some(1),
            _ => None,
        });
        deliver(
            &[
                event(0, 0, vec![10, 12]),
                event(1, 0, vec![12, 10]),
                event(2, 0, vec![99, 10]),
            ],
            &mut router,
        );
        assert_eq!(router.buckets[0].len(), 1);
        assert_eq!(router.buckets[1].len(), 1);
        assert_eq!(router.unroutable, 1);
        assert_eq!(router.routed(), 2);
    }

    #[test]
    fn aggregate_with_streams_first_per_flow_events() {
        let (tx, rx) = channel();
        for seq in 0..4 {
            tx.send(event(0, seq, vec![10, 11])).unwrap();
        }
        tx.send(event(1, 0, vec![12, 13])).unwrap();
        drop(tx);
        let mut streamed = Vec::new();
        let report = aggregate_with(rx, |e| streamed.push(e.flow));
        assert_eq!(streamed.len(), 2, "hook fires once per unique flow");
        assert_eq!(report.events.len(), 2);
        assert_eq!(
            streamed,
            report.events.iter().map(|e| e.flow).collect::<Vec<_>>()
        );
    }

    #[test]
    fn report_json_renders() {
        let (tx, rx) = channel();
        tx.send(event(0, 1, vec![10, 11])).unwrap();
        drop(tx);
        let report = aggregate(rx);
        let rendered = report.to_json().render();
        assert!(rendered.contains("\"unique_flows\":1"));
        assert!(rendered.contains("\"members\":[10,11]"));
    }
}
