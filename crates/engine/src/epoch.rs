//! Epoch/RCU-style hot-swappable route tables.
//!
//! The engine originally compiled one [`RouteSet`] before traffic
//! started and froze it for the whole run — fine for replaying loops,
//! useless for *catching* them, because real routing loops are
//! transient artifacts of protocol convergence. This module makes the
//! route table a sequence of immutable **generations** behind a single
//! atomic version counter:
//!
//! - **Readers never block.** Each shard worker owns a [`RouteReader`]
//!   whose hot path is one `Acquire` load of the published generation
//!   per batch ([`RouteReader::refresh`]). When the generation is
//!   unchanged — the overwhelmingly common case — the reader touches no
//!   lock and keeps using its cached `Arc<RouteSet>`.
//! - **Writers publish with one swap.** [`EpochRouteTable::publish`]
//!   installs a new `Arc<RouteSet>` under the table mutex, then makes
//!   it visible with a single `Release` store of the bumped generation.
//!   Workers observe the swap at their next batch boundary.
//! - **Reclamation is epoch-based.** Every reader advertises the
//!   generation it is pinned to in a cache-padded per-reader slot
//!   (written only when the reader moves generations, so slots never
//!   ping-pong between cores). A retired generation `g` is freed once
//!   `g < min(pinned)` over all live readers — i.e. once every worker
//!   has quiesced past it. `Arc` already guarantees memory safety; the
//!   explicit retired list is what makes retention *bounded and
//!   observable* ([`EpochRouteTable::retained`]), which the churn tests
//!   assert under continuous update storms.
//!
//! Generations are numbered from 1 (the seed set). The table also
//! timestamps every publish ([`EpochRouteTable::publish_ns`], on the
//! table's own monotonic clock) so workers can report **detection
//! latency**: the time from a generation becoming visible to the first
//! loop event a shard raises against it.
//!
//! [`RouteSet`]: crate::route::RouteSet

use crate::ring::CachePadded;
use crate::route::RouteSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Slot value meaning "this reader is gone and pins nothing".
const UNPINNED: u64 = u64::MAX;

/// One reader's advertised pinned generation, on its own cache line so
/// refresh stores never false-share with neighbouring readers.
#[derive(Debug)]
struct ReaderSlot {
    pinned: CachePadded<AtomicU64>,
}

#[derive(Debug)]
struct TableState {
    /// Current generation number (mirrors the atomic, authoritative
    /// under the lock).
    gen: u64,
    /// The current generation's route set.
    current: Arc<RouteSet>,
    /// Retired generations not yet quiesced past by every reader.
    retired: Vec<(u64, Arc<RouteSet>)>,
    /// Live reader slots (a slot is dropped from the registry once its
    /// reader is gone).
    readers: Vec<Arc<ReaderSlot>>,
    /// `publish_ns[g - 1]` = monotonic ns at which generation `g` was
    /// published.
    publish_ns: Vec<u64>,
    /// Total generations reclaimed so far.
    reclaimed: u64,
}

/// A hot-swappable route table: immutable [`RouteSet`] generations
/// published by one writer and read lock-free by shard workers.
#[derive(Debug)]
pub struct EpochRouteTable {
    /// Published generation; the only word the reader hot path touches.
    gen: AtomicU64,
    state: Mutex<TableState>,
    epoch0: Instant,
}

impl EpochRouteTable {
    /// A table whose generation 1 is `initial`.
    pub fn new(initial: Arc<RouteSet>) -> EpochRouteTable {
        EpochRouteTable {
            gen: AtomicU64::new(1),
            state: Mutex::new(TableState {
                gen: 1,
                current: initial,
                retired: Vec::new(),
                readers: Vec::new(),
                publish_ns: vec![0],
                reclaimed: 0,
            }),
            epoch0: Instant::now(),
        }
    }

    /// The table mutex is only ever held for pointer swaps and small
    /// bookkeeping — a panic while holding it leaves the state
    /// consistent, so poison is recovered rather than propagated (a
    /// panicking worker must not take the route table down with it).
    fn lock(&self) -> MutexGuard<'_, TableState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Nanoseconds elapsed on the table's monotonic clock.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch0.elapsed().as_nanos() as u64
    }

    /// The currently published generation number.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }

    /// When generation `gen` was published, in [`now_ns`](Self::now_ns)
    /// time, or `None` for an unknown generation.
    pub fn publish_ns(&self, gen: u64) -> Option<u64> {
        if gen == 0 {
            return None;
        }
        self.lock().publish_ns.get(gen as usize - 1).copied()
    }

    /// A snapshot of the current route set (without registering a
    /// reader). One-shot consumers only; workers should hold a
    /// [`RouteReader`].
    pub fn current(&self) -> Arc<RouteSet> {
        Arc::clone(&self.lock().current)
    }

    /// Publishes `routes` as the next generation and returns its
    /// number. The previous generation is retired and reclaimed once
    /// every reader has quiesced past it.
    pub fn publish(&self, routes: Arc<RouteSet>) -> u64 {
        let mut st = self.lock();
        let old = std::mem::replace(&mut st.current, routes);
        let old_gen = st.gen;
        st.retired.push((old_gen, old));
        st.gen += 1;
        let gen = st.gen;
        st.publish_ns.push(self.now_ns());
        // Make the new generation visible to readers *before* reclaim,
        // so a reader refreshing concurrently can pin it immediately.
        self.gen.store(gen, Ordering::Release);
        Self::reclaim_locked(&mut st);
        gen
    }

    /// Runs a reclamation pass without publishing — used after readers
    /// drop or advance to release retired generations promptly.
    pub fn try_reclaim(&self) {
        Self::reclaim_locked(&mut self.lock());
    }

    /// Retired generations still retained (not yet quiesced past).
    pub fn retained(&self) -> usize {
        self.lock().retired.len()
    }

    /// Total generations reclaimed so far.
    pub fn reclaimed(&self) -> u64 {
        self.lock().reclaimed
    }

    fn reclaim_locked(st: &mut TableState) {
        // Slots are written under this mutex on registration/refresh;
        // the only unlocked write is the UNPINNED store in
        // `RouteReader::drop`, and racing with it is benign — we either
        // keep the generation one pass longer or free it now that the
        // reader (and its own `Arc`) is gone.
        st.readers.retain(|slot| Arc::strong_count(slot) > 1);
        let min_pinned = st
            .readers
            .iter()
            .map(|slot| slot.pinned.0.load(Ordering::Acquire))
            .filter(|&p| p != UNPINNED)
            .min();
        let before = st.retired.len();
        match min_pinned {
            // No pinned readers: nothing can still observe any retired
            // generation.
            None => st.retired.clear(),
            // A retired generation survives only while some reader is
            // still pinned at or before it.
            Some(min) => st.retired.retain(|&(gen, _)| gen >= min),
        }
        st.reclaimed += (before - st.retired.len()) as u64;
    }

    /// Registers a new reader pinned to the current generation.
    pub fn reader(self: &Arc<Self>) -> RouteReader {
        let mut st = self.lock();
        let slot = Arc::new(ReaderSlot {
            pinned: CachePadded(AtomicU64::new(st.gen)),
        });
        st.readers.push(Arc::clone(&slot));
        let gen = st.gen;
        let current = Arc::clone(&st.current);
        drop(st);
        RouteReader {
            table: Arc::clone(self),
            slot,
            initial_gen: gen,
            gen,
            current,
        }
    }
}

/// A shard worker's lock-free handle onto an [`EpochRouteTable`].
///
/// Call [`refresh`](Self::refresh) once per batch: when nothing was
/// published it is a single atomic load; when the table moved it pins
/// the new generation and hands back its number so the caller can
/// invalidate generation-keyed caches (e.g. the worker's
/// `first_invalid_hops` table).
#[derive(Debug)]
pub struct RouteReader {
    table: Arc<EpochRouteTable>,
    slot: Arc<ReaderSlot>,
    initial_gen: u64,
    gen: u64,
    current: Arc<RouteSet>,
}

impl RouteReader {
    /// The generation this reader is pinned to.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// The generation the reader was registered at — anything above it
    /// was published *after* this reader (worker) started.
    #[inline]
    pub fn initial_generation(&self) -> u64 {
        self.initial_gen
    }

    /// The pinned generation's route set.
    #[inline]
    pub fn routes(&self) -> &RouteSet {
        &self.current
    }

    /// Advances to the published generation if it moved. Returns the
    /// new generation number on a swap, `None` when already current.
    #[inline]
    pub fn refresh(&mut self) -> Option<u64> {
        if self.table.gen.load(Ordering::Acquire) == self.gen {
            return None;
        }
        let st = self.table.lock();
        self.current = Arc::clone(&st.current);
        self.gen = st.gen;
        self.slot.pinned.0.store(self.gen, Ordering::Release);
        Some(self.gen)
    }

    /// When `gen` was published, on the table's clock.
    pub fn publish_ns(&self, gen: u64) -> Option<u64> {
        self.table.publish_ns(gen)
    }

    /// Nanoseconds elapsed on the table's clock.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.table.now_ns()
    }

    /// The underlying table (for tests and reporting).
    pub fn table(&self) -> &Arc<EpochRouteTable> {
        &self.table
    }
}

impl Drop for RouteReader {
    fn drop(&mut self) {
        self.slot.pinned.0.store(UNPINNED, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PathSpec;

    /// A route set whose length encodes the generation it was built
    /// for, so tests can verify a reader sees exactly the set matching
    /// its pinned generation.
    fn tagged_set(generation: usize) -> Arc<RouteSet> {
        let specs: Vec<PathSpec> = (0..generation)
            .map(|i| PathSpec::linear(vec![i, i + 1]))
            .collect();
        RouteSet::from_specs(&specs)
    }

    #[test]
    fn publish_bumps_generation_and_reader_refreshes() {
        let table = Arc::new(EpochRouteTable::new(tagged_set(1)));
        let mut reader = table.reader();
        assert_eq!(reader.generation(), 1);
        assert_eq!(reader.refresh(), None);

        assert_eq!(table.publish(tagged_set(2)), 2);
        assert_eq!(table.generation(), 2);
        // The reader still sees its pinned generation until it
        // refreshes.
        assert_eq!(reader.routes().len(), 1);
        assert_eq!(reader.refresh(), Some(2));
        assert_eq!(reader.routes().len(), 2);
        assert_eq!(reader.refresh(), None);
    }

    #[test]
    fn retired_generation_survives_until_every_reader_quiesces() {
        let table = Arc::new(EpochRouteTable::new(tagged_set(1)));
        let mut fast = table.reader();
        let mut slow = table.reader();
        let gen1 = table.current();
        let weak1 = Arc::downgrade(&gen1);
        drop(gen1);

        table.publish(tagged_set(2));
        fast.refresh();
        table.try_reclaim();
        // `slow` is still pinned at generation 1: it must stay
        // observable.
        assert!(weak1.upgrade().is_some(), "gen 1 reclaimed under a reader");
        assert_eq!(slow.routes().len(), 1);
        assert_eq!(table.retained(), 1);

        slow.refresh();
        table.try_reclaim();
        assert!(weak1.upgrade().is_none(), "gen 1 leaked after quiescence");
        assert_eq!(table.retained(), 0);
        assert_eq!(table.reclaimed(), 1);
    }

    #[test]
    fn dropping_a_reader_unpins_it() {
        let table = Arc::new(EpochRouteTable::new(tagged_set(1)));
        let reader = table.reader();
        table.publish(tagged_set(2));
        assert_eq!(table.retained(), 1);
        drop(reader);
        table.try_reclaim();
        assert_eq!(table.retained(), 0);
    }

    #[test]
    fn retention_is_bounded_under_continuous_churn() {
        let table = Arc::new(EpochRouteTable::new(tagged_set(1)));
        let mut reader = table.reader();
        for g in 2..200u64 {
            table.publish(tagged_set(g as usize));
            reader.refresh();
            // The reader always advances, so at most the generation
            // retired by the *next* publish is pending.
            assert!(
                table.retained() <= 1,
                "unbounded retention at gen {g}: {}",
                table.retained()
            );
        }
        assert!(table.reclaimed() >= 197);
    }

    #[test]
    fn publish_timestamps_are_monotone() {
        let table = Arc::new(EpochRouteTable::new(tagged_set(1)));
        table.publish(tagged_set(2));
        table.publish(tagged_set(3));
        let t1 = table.publish_ns(1).unwrap();
        let t2 = table.publish_ns(2).unwrap();
        let t3 = table.publish_ns(3).unwrap();
        assert!(t1 <= t2 && t2 <= t3);
        assert!(table.publish_ns(4).is_none());
        assert!(table.publish_ns(0).is_none());
        assert!(table.now_ns() >= t3);
    }

    #[test]
    fn concurrent_readers_always_observe_a_coherent_generation() {
        use std::sync::atomic::AtomicBool;
        let table = Arc::new(EpochRouteTable::new(tagged_set(1)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let mut reader = table.reader();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut swaps = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if reader.refresh().is_some() {
                            swaps += 1;
                        }
                        // The invariant: the set a reader holds always
                        // matches the generation it is pinned to.
                        assert_eq!(reader.routes().len() as u64, reader.generation());
                        std::hint::spin_loop();
                    }
                    swaps
                })
            })
            .collect();
        for g in 2..=300u64 {
            table.publish(tagged_set(g as usize));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        // Readers were live the whole time, so at least one swap was
        // observed somewhere.
        assert!(total >= 1);
        table.try_reclaim();
        assert_eq!(table.retained(), 0);
    }
}
