//! Bounded SPSC rings with explicit backpressure accounting.
//!
//! Each worker shard is fed by exactly one ring: the dispatcher is the
//! single producer, the shard worker the single consumer. The ring is
//! *bounded*, so a slow shard pushes back on the dispatcher instead of
//! ballooning memory, and every enqueue-full outcome is **counted** —
//! a packet is either enqueued, or recorded as dropped/stalled, never
//! silently lost. That accounting is what lets the scaling report
//! state drop rates instead of implying zero by omission.
//!
//! The implementation wraps [`std::sync::mpsc::sync_channel`] (used
//! strictly SPSC). The consumer side blocks on an OS primitive while
//! idle — workers consume no CPU when starved, which keeps the
//! per-shard CPU-time capacity metric honest.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;

/// What the producer does when the ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FullPolicy {
    /// Count the packet as dropped and move on (a line-rate NIC queue).
    #[default]
    Drop,
    /// Count a stall, then block until the consumer frees a slot
    /// (lossless mode for scaling measurements).
    Block,
}

/// The observable result of one enqueue attempt — what the overload
/// shedder keys its saturation tracking on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued on the first try (the ring had room).
    Enqueued,
    /// Enqueued, but only after blocking on a full ring
    /// ([`FullPolicy::Block`]) — a saturation signal.
    EnqueuedAfterStall,
    /// Dropped: the ring was full ([`FullPolicy::Drop`]) or the
    /// consumer is gone. Counted in `dropped_full`.
    DroppedFull,
}

impl PushOutcome {
    /// Whether the item made it onto the ring.
    pub fn enqueued(self) -> bool {
        !matches!(self, PushOutcome::DroppedFull)
    }

    /// Whether this attempt found the ring saturated.
    pub fn saturated(self) -> bool {
        !matches!(self, PushOutcome::Enqueued)
    }
}

/// Shared enqueue-side counters, readable while the engine runs.
#[derive(Debug, Default)]
pub struct RingCounters {
    /// Packets successfully enqueued.
    pub enqueued: AtomicU64,
    /// Packets dropped because the ring was full ([`FullPolicy::Drop`]).
    pub dropped_full: AtomicU64,
    /// Enqueue attempts that found the ring full and had to block
    /// ([`FullPolicy::Block`]).
    pub stalls: AtomicU64,
    /// Packets the dispatcher shed at ingress (overload protection)
    /// instead of offering to this ring.
    pub shed: AtomicU64,
}

/// A relaxed-read snapshot of [`RingCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingCountersSnapshot {
    /// Packets successfully enqueued.
    pub enqueued: u64,
    /// Packets dropped on a full ring.
    pub dropped_full: u64,
    /// Enqueues that stalled on a full ring.
    pub stalls: u64,
    /// Packets shed at ingress under overload.
    pub shed: u64,
}

impl RingCounters {
    /// Reads all counters (relaxed; exact once the producer is done).
    pub fn snapshot(&self) -> RingCountersSnapshot {
        RingCountersSnapshot {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dropped_full: self.dropped_full.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// The producer half of a ring (held by the dispatcher).
#[derive(Debug)]
pub struct RingProducer<T> {
    tx: SyncSender<T>,
    counters: Arc<RingCounters>,
    policy: FullPolicy,
}

/// The consumer half of a ring (held by one worker shard).
#[derive(Debug)]
pub struct RingConsumer<T> {
    rx: Receiver<T>,
}

/// Creates a bounded ring of the given capacity. The third return
/// value is the shared counter block (also reachable from the
/// producer), handed out separately so metrics snapshots can read it
/// after the producer has been dropped to close the ring.
pub fn ring<T>(
    capacity: usize,
    policy: FullPolicy,
) -> (RingProducer<T>, RingConsumer<T>, Arc<RingCounters>) {
    assert!(capacity >= 1, "ring capacity must be at least 1");
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
    let counters = Arc::new(RingCounters::default());
    (
        RingProducer {
            tx,
            counters: counters.clone(),
            policy,
        },
        RingConsumer { rx },
        counters,
    )
}

impl<T> RingProducer<T> {
    /// Offers one item. Returns `true` if it was enqueued, `false` if
    /// it was dropped (full ring under [`FullPolicy::Drop`], or the
    /// consumer is gone). Every `false` is visible in the counters.
    pub fn push(&self, item: T) -> bool {
        self.offer(item).enqueued()
    }

    /// Offers one item, reporting how the attempt went so the caller
    /// can track ring saturation. Counter semantics are identical to
    /// [`RingProducer::push`].
    pub fn offer(&self, item: T) -> PushOutcome {
        match self.tx.try_send(item) {
            Ok(()) => {
                self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
                PushOutcome::Enqueued
            }
            Err(TrySendError::Full(item)) => match self.policy {
                FullPolicy::Drop => {
                    self.counters.dropped_full.fetch_add(1, Ordering::Relaxed);
                    PushOutcome::DroppedFull
                }
                FullPolicy::Block => {
                    self.counters.stalls.fetch_add(1, Ordering::Relaxed);
                    // A blocking send wakes with an error if the
                    // consumer dies — bounded wait, never a deadlock.
                    if self.tx.send(item).is_ok() {
                        self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
                        PushOutcome::EnqueuedAfterStall
                    } else {
                        self.counters.dropped_full.fetch_add(1, Ordering::Relaxed);
                        PushOutcome::DroppedFull
                    }
                }
            },
            Err(TrySendError::Disconnected(_)) => {
                self.counters.dropped_full.fetch_add(1, Ordering::Relaxed);
                PushOutcome::DroppedFull
            }
        }
    }

    /// Records a packet shed at ingress instead of being offered to
    /// this ring (the item never touches the channel).
    pub fn record_shed(&self) {
        self.counters.shed.fetch_add(1, Ordering::Relaxed);
    }
}

impl<T> RingConsumer<T> {
    /// Receives a batch of up to `max` items: blocks for the first,
    /// then drains whatever else is immediately available. Returns
    /// `false` once the ring is closed (producer dropped) *and* empty.
    pub fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> bool {
        debug_assert!(max >= 1);
        match self.rx.recv() {
            Ok(item) => {
                out.push(item);
                while out.len() < max {
                    match self.rx.try_recv() {
                        Ok(item) => out.push(item),
                        Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                    }
                }
                true
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_order() {
        let (p, c, counters) = ring(8, FullPolicy::Drop);
        for i in 0..5 {
            assert!(p.push(i));
        }
        let mut out = Vec::new();
        assert!(c.recv_batch(&mut out, 16));
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(counters.snapshot().enqueued, 5);
    }

    #[test]
    fn full_ring_drops_are_counted_never_silent() {
        let (p, _c, counters) = ring(2, FullPolicy::Drop);
        assert!(p.push(1));
        assert!(p.push(2));
        assert!(!p.push(3), "third push exceeds capacity");
        assert!(!p.push(4));
        let snap = counters.snapshot();
        assert_eq!(snap.enqueued, 2);
        assert_eq!(snap.dropped_full, 2);
        assert_eq!(snap.enqueued + snap.dropped_full, 4, "all pushes accounted");
    }

    #[test]
    fn block_policy_waits_for_the_consumer_and_counts_the_stall() {
        let (p, c, counters) = ring(1, FullPolicy::Block);
        assert!(p.push(10));
        let waiter = std::thread::spawn(move || {
            // Fills the ring, then must block until the consumer drains.
            assert!(p.push(20));
            assert!(p.push(30));
        });
        let mut out = Vec::new();
        while out.len() < 3 {
            assert!(c.recv_batch(&mut out, 4));
        }
        waiter.join().unwrap();
        assert_eq!(out, vec![10, 20, 30]);
        let snap = counters.snapshot();
        assert_eq!(snap.enqueued, 3);
        assert_eq!(snap.dropped_full, 0);
        assert!(snap.stalls >= 1, "at least one push found the ring full");
    }

    #[test]
    fn closed_ring_terminates_consumer() {
        let (p, c, _) = ring(4, FullPolicy::Drop);
        p.push(1);
        drop(p);
        let mut out = Vec::new();
        assert!(c.recv_batch(&mut out, 4), "drains the remaining item");
        assert_eq!(out, vec![1]);
        assert!(!c.recv_batch(&mut out, 4), "then reports closure");
    }

    #[test]
    fn push_after_consumer_gone_is_counted_drop() {
        let (p, c, counters) = ring(4, FullPolicy::Block);
        drop(c);
        assert!(!p.push(1));
        assert_eq!(counters.snapshot().dropped_full, 1);
    }

    #[test]
    fn block_ring_with_dead_consumer_cannot_deadlock() {
        // A Block-policy producer blocked on a full ring must wake and
        // report a drop when the consumer dies — bounded wait, not a
        // hang. Run the producer on its own thread and bound how long
        // we are willing to wait for it.
        let (p, c, counters) = ring(1, FullPolicy::Block);
        assert!(p.push(1), "fills the ring");
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let producer = std::thread::spawn(move || {
            // Blocks (ring full) until the consumer is dropped below.
            let second = p.push(2);
            done_tx.send(second).expect("main thread is waiting");
        });
        // Give the producer time to reach the blocking send, then kill
        // the consumer out from under it.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(c);
        let second = done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("blocked producer must wake once the consumer dies");
        assert!(!second, "the blocked push reports the loss");
        producer.join().expect("producer thread exits cleanly");
        let snap = counters.snapshot();
        assert_eq!(snap.enqueued, 1);
        assert_eq!(snap.dropped_full, 1);
        assert!(snap.stalls >= 1, "the blocking attempt was counted");
    }

    #[test]
    fn offer_reports_saturation_and_shed_is_counted() {
        let (p, _c, counters) = ring(1, FullPolicy::Drop);
        assert_eq!(p.offer(1), PushOutcome::Enqueued);
        assert!(!PushOutcome::Enqueued.saturated());
        assert_eq!(p.offer(2), PushOutcome::DroppedFull);
        assert!(PushOutcome::DroppedFull.saturated());
        p.record_shed();
        p.record_shed();
        let snap = counters.snapshot();
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.enqueued, 1);
        assert_eq!(snap.dropped_full, 1);
    }

    #[test]
    fn recv_batch_respects_max() {
        let (p, c, _) = ring(16, FullPolicy::Drop);
        for i in 0..10 {
            p.push(i);
        }
        let mut out = Vec::new();
        assert!(c.recv_batch(&mut out, 4));
        assert_eq!(out.len(), 4);
    }
}
