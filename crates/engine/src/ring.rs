//! Bounded SPSC rings with explicit backpressure accounting.
//!
//! Each worker shard is fed by exactly one ring: the dispatcher is the
//! single producer, the shard worker the single consumer. The ring is
//! *bounded*, so a slow shard pushes back on the dispatcher instead of
//! ballooning memory, and every enqueue-full outcome is **counted** —
//! a packet is either enqueued, or recorded as dropped/stalled, never
//! silently lost. That accounting is what lets the scaling report
//! state drop rates instead of implying zero by omission.
//!
//! The implementation is a power-of-two slot array with head/tail
//! indices on **separate cache lines** ([`CachePadded`]) so the
//! producer's publishes never invalidate the line the consumer spins
//! on, and vice versa. Both sides keep a *cached* copy of the other
//! side's index, refreshed only when the ring looks full (producer) or
//! empty (consumer): in steady state an enqueue or a drain touches no
//! shared line beyond its own index publish. [`RingProducer::push_batch`]
//! amortizes even that publish — one `Release` store per burst instead
//! of per packet.
//!
//! Blocking (an empty consumer, or a full ring under
//! [`FullPolicy::Block`]) spins briefly, then parks on a condvar so
//! starved workers consume no CPU — which keeps the per-shard CPU-time
//! capacity metric honest. Wakeups are flagged: the fast path pays one
//! relaxed load of a rarely-written flag, and a short park timeout
//! backstops the (benign, bounded) flag race instead of a `SeqCst`
//! fence per push.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Pads (and aligns) its contents to a 64-byte cache line so two
/// frequently-written atomics cannot false-share one line.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

/// Spin iterations before a blocked side parks on the condvar.
const SPINS: u32 = 64;
/// Park timeout: bounds both teardown latency and the benign
/// flagged-wakeup race (a missed notify costs at most one timeout).
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// What the producer does when the ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FullPolicy {
    /// Count the packet as dropped and move on (a line-rate NIC queue).
    #[default]
    Drop,
    /// Count a stall, then block until the consumer frees a slot
    /// (lossless mode for scaling measurements).
    Block,
}

/// The observable result of one enqueue attempt — what the overload
/// shedder keys its saturation tracking on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued on the first try (the ring had room).
    Enqueued,
    /// Enqueued, but only after blocking on a full ring
    /// ([`FullPolicy::Block`]) — a saturation signal.
    EnqueuedAfterStall,
    /// Dropped: the ring was full ([`FullPolicy::Drop`]) or the
    /// consumer is gone. Counted in `dropped_full`.
    DroppedFull,
}

impl PushOutcome {
    /// Whether the item made it onto the ring.
    pub fn enqueued(self) -> bool {
        !matches!(self, PushOutcome::DroppedFull)
    }

    /// Whether this attempt found the ring saturated.
    pub fn saturated(self) -> bool {
        !matches!(self, PushOutcome::Enqueued)
    }
}

/// The summarized result of one [`RingProducer::push_batch`] call.
/// Counter semantics are identical to pushing the items one by one;
/// this is the per-burst view the dispatcher feeds to the shedder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchPush {
    /// Items enqueued without waiting.
    pub enqueued: usize,
    /// Items enqueued only after a full-ring wait
    /// ([`FullPolicy::Block`]); each wait episode also counted in
    /// `stalls`.
    pub stalled: usize,
    /// Items dropped (full ring under [`FullPolicy::Drop`], or the
    /// consumer is gone).
    pub dropped: usize,
}

/// Shared enqueue-side counters, readable while the engine runs.
#[derive(Debug, Default)]
pub struct RingCounters {
    /// Packets successfully enqueued.
    pub enqueued: AtomicU64,
    /// Packets dropped because the ring was full ([`FullPolicy::Drop`]).
    pub dropped_full: AtomicU64,
    /// Enqueue attempts that found the ring full and had to block
    /// ([`FullPolicy::Block`]).
    pub stalls: AtomicU64,
    /// Packets the dispatcher shed at ingress (overload protection)
    /// instead of offering to this ring.
    pub shed: AtomicU64,
}

/// A relaxed-read snapshot of [`RingCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingCountersSnapshot {
    /// Packets successfully enqueued.
    pub enqueued: u64,
    /// Packets dropped on a full ring.
    pub dropped_full: u64,
    /// Enqueues that stalled on a full ring.
    pub stalls: u64,
    /// Packets shed at ingress under overload.
    pub shed: u64,
}

impl RingCounters {
    /// Reads all counters (relaxed; exact once the producer is done).
    pub fn snapshot(&self) -> RingCountersSnapshot {
        RingCountersSnapshot {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dropped_full: self.dropped_full.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// The state both halves share. Slots are `Mutex<Option<T>>` — the
/// crate forbids `unsafe`, so this stands in for the `UnsafeCell` slot
/// a lock-free ring would use; SPSC hand-off means every slot lock is
/// uncontended in steady state (the two sides only meet on a slot when
/// the ring is completely full or empty).
#[derive(Debug)]
struct RingShared<T> {
    slots: Box<[Mutex<Option<T>>]>,
    mask: usize,
    /// Logical capacity (may be less than `slots.len()`, which is the
    /// next power of two).
    capacity: usize,
    /// Producer publish index: slots `[head, tail)` are full.
    tail: CachePadded<AtomicUsize>,
    /// Consumer index: the next slot to read.
    head: CachePadded<AtomicUsize>,
    /// Producer dropped: no more items will ever arrive.
    closed: AtomicBool,
    /// Consumer dropped: pushes can only fail.
    consumer_gone: AtomicBool,
    /// Park state: one mutex, one condvar per direction, and a flag per
    /// direction so the fast path can skip the notify entirely.
    park: Mutex<()>,
    data_ready: Condvar,
    space_ready: Condvar,
    consumer_parked: AtomicBool,
    producer_parked: AtomicBool,
}

impl<T> RingShared<T> {
    /// Locks a slot, riding through poisoning: a slot mutex can only be
    /// poisoned if moving a `T` panicked mid-hand-off, and the item is
    /// then accounted as lost by the supervised side — the ring itself
    /// stays usable.
    fn slot(&self, index: usize) -> MutexGuard<'_, Option<T>> {
        match self.slots[index & self.mask].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Wakes the consumer if (and only if) it is parked.
    fn wake_consumer(&self) {
        if self.consumer_parked.load(Ordering::Relaxed) {
            let _guard = self.park.lock();
            self.data_ready.notify_all();
        }
    }

    /// Wakes the producer if (and only if) it is parked.
    fn wake_producer(&self) {
        if self.producer_parked.load(Ordering::Relaxed) {
            let _guard = self.park.lock();
            self.space_ready.notify_all();
        }
    }
}

/// The producer half of a ring (held by the dispatcher).
#[derive(Debug)]
pub struct RingProducer<T> {
    shared: Arc<RingShared<T>>,
    counters: Arc<RingCounters>,
    policy: FullPolicy,
    /// Producer-private copy of `tail` (published on enqueue).
    tail: Cell<usize>,
    /// Cached consumer index, refreshed only on apparent-full — the
    /// steady-state enqueue never reads the consumer's cache line.
    cached_head: Cell<usize>,
}

/// The consumer half of a ring (held by one worker shard).
#[derive(Debug)]
pub struct RingConsumer<T> {
    shared: Arc<RingShared<T>>,
    /// Consumer-private copy of `head` (published on drain).
    head: Cell<usize>,
    /// Cached producer index, refreshed only on apparent-empty.
    cached_tail: Cell<usize>,
}

/// Creates a bounded ring of the given capacity. The third return
/// value is the shared counter block (also reachable from the
/// producer), handed out separately so metrics snapshots can read it
/// after the producer has been dropped to close the ring.
pub fn ring<T>(
    capacity: usize,
    policy: FullPolicy,
) -> (RingProducer<T>, RingConsumer<T>, Arc<RingCounters>) {
    assert!(capacity >= 1, "ring capacity must be at least 1");
    let slots = capacity.next_power_of_two();
    let shared = Arc::new(RingShared {
        slots: (0..slots).map(|_| Mutex::new(None)).collect(),
        mask: slots - 1,
        capacity,
        tail: CachePadded(AtomicUsize::new(0)),
        head: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        consumer_gone: AtomicBool::new(false),
        park: Mutex::new(()),
        data_ready: Condvar::new(),
        space_ready: Condvar::new(),
        consumer_parked: AtomicBool::new(false),
        producer_parked: AtomicBool::new(false),
    });
    let counters = Arc::new(RingCounters::default());
    (
        RingProducer {
            shared: shared.clone(),
            counters: counters.clone(),
            policy,
            tail: Cell::new(0),
            cached_head: Cell::new(0),
        },
        RingConsumer {
            shared,
            head: Cell::new(0),
            cached_tail: Cell::new(0),
        },
        counters,
    )
}

impl<T> RingProducer<T> {
    /// Free slots as the producer sees them, refreshing the cached
    /// consumer index only when the ring appears full.
    fn free_slots(&self) -> usize {
        let tail = self.tail.get();
        let mut head = self.cached_head.get();
        if tail - head >= self.shared.capacity {
            head = self.shared.head.0.load(Ordering::Acquire);
            self.cached_head.set(head);
        }
        self.shared.capacity - (tail - head)
    }

    /// Writes `item` into the next slot without publishing it.
    fn stage(&self, item: T) {
        let tail = self.tail.get();
        *self.shared.slot(tail) = Some(item);
        self.tail.set(tail + 1);
    }

    /// Publishes every staged slot and wakes a parked consumer.
    fn publish(&self) {
        self.shared.tail.0.store(self.tail.get(), Ordering::Release);
        self.shared.wake_consumer();
    }

    /// Parks until the consumer frees a slot or dies. Returns `false`
    /// when the consumer is gone.
    fn wait_for_space(&self) -> bool {
        let mut spins = 0u32;
        loop {
            if self.shared.consumer_gone.load(Ordering::Acquire) {
                return false;
            }
            let head = self.shared.head.0.load(Ordering::Acquire);
            if self.tail.get() - head < self.shared.capacity {
                self.cached_head.set(head);
                return true;
            }
            if spins < SPINS {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            let guard = match self.shared.park.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            self.shared.producer_parked.store(true, Ordering::Relaxed);
            let _ = self.shared.space_ready.wait_timeout(guard, PARK_TIMEOUT);
            self.shared.producer_parked.store(false, Ordering::Relaxed);
        }
    }

    /// Offers one item. Returns `true` if it was enqueued, `false` if
    /// it was dropped (full ring under [`FullPolicy::Drop`], or the
    /// consumer is gone). Every `false` is visible in the counters.
    pub fn push(&self, item: T) -> bool {
        self.offer(item).enqueued()
    }

    /// Offers one item, reporting how the attempt went so the caller
    /// can track ring saturation. Counter semantics are identical to
    /// [`RingProducer::push`].
    pub fn offer(&self, item: T) -> PushOutcome {
        if self.shared.consumer_gone.load(Ordering::Acquire) {
            self.counters.dropped_full.fetch_add(1, Ordering::Relaxed);
            return PushOutcome::DroppedFull;
        }
        if self.free_slots() > 0 {
            self.stage(item);
            self.publish();
            self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
            return PushOutcome::Enqueued;
        }
        match self.policy {
            FullPolicy::Drop => {
                self.counters.dropped_full.fetch_add(1, Ordering::Relaxed);
                PushOutcome::DroppedFull
            }
            FullPolicy::Block => {
                self.counters.stalls.fetch_add(1, Ordering::Relaxed);
                // A blocking wait wakes with a failure if the consumer
                // dies — bounded wait, never a deadlock.
                if self.wait_for_space() {
                    self.stage(item);
                    self.publish();
                    self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
                    PushOutcome::EnqueuedAfterStall
                } else {
                    self.counters.dropped_full.fetch_add(1, Ordering::Relaxed);
                    PushOutcome::DroppedFull
                }
            }
        }
    }

    /// Enqueues a whole burst, draining `items`: slots are staged in
    /// order and published with **one** index store (and at most one
    /// wakeup check) for the entire batch. Under [`FullPolicy::Drop`] a
    /// full ring drops the rest of the batch (counted); under
    /// [`FullPolicy::Block`] the producer parks until space frees,
    /// counting one stall per wait episode, and only a dead consumer
    /// can make it drop the remainder.
    pub fn push_batch(&self, items: &mut Vec<T>) -> BatchPush {
        let mut result = BatchPush::default();
        let mut drain = items.drain(..);
        let mut remaining = drain.len();
        let mut stalled_round = false;
        while remaining > 0 {
            if self.shared.consumer_gone.load(Ordering::Acquire) {
                break;
            }
            let free = self.free_slots();
            if free == 0 {
                match self.policy {
                    FullPolicy::Drop => break,
                    FullPolicy::Block => {
                        self.counters.stalls.fetch_add(1, Ordering::Relaxed);
                        stalled_round = true;
                        if !self.wait_for_space() {
                            break;
                        }
                        continue;
                    }
                }
            }
            let take = free.min(remaining);
            for _ in 0..take {
                // `drain` yields exactly `remaining` more items.
                let Some(item) = drain.next() else { break };
                self.stage(item);
            }
            self.publish();
            remaining -= take;
            if stalled_round {
                result.stalled += take;
            } else {
                result.enqueued += take;
            }
            stalled_round = false;
        }
        // Anything left in the drain was dropped: count it, then let
        // the drop of `drain` discard the items.
        result.dropped = drain.len();
        drop(drain);
        self.counters
            .enqueued
            .fetch_add((result.enqueued + result.stalled) as u64, Ordering::Relaxed);
        self.counters
            .dropped_full
            .fetch_add(result.dropped as u64, Ordering::Relaxed);
        result
    }

    /// Records a packet shed at ingress instead of being offered to
    /// this ring (the item never touches the slots).
    pub fn record_shed(&self) {
        self.counters.shed.fetch_add(1, Ordering::Relaxed);
    }
}

impl<T> Drop for RingProducer<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        self.shared.wake_consumer();
        // Also wake unconditionally: the parked flag is advisory.
        let _guard = self.shared.park.lock();
        self.shared.data_ready.notify_all();
    }
}

impl<T> RingConsumer<T> {
    /// Moves up to `max` available items into `out`, publishing the new
    /// head once. Refreshes the cached producer index only when the
    /// ring appears empty.
    fn try_drain(&self, out: &mut Vec<T>, max: usize) -> usize {
        let head = self.head.get();
        let mut tail = self.cached_tail.get();
        if tail == head {
            tail = self.shared.tail.0.load(Ordering::Acquire);
            self.cached_tail.set(tail);
        }
        let take = (tail - head).min(max);
        for i in 0..take {
            let item = self
                .shared
                .slot(head + i)
                .take()
                .expect("published slot must hold an item");
            out.push(item);
        }
        if take > 0 {
            self.head.set(head + take);
            self.shared.head.0.store(head + take, Ordering::Release);
            self.shared.wake_producer();
        }
        take
    }

    /// Receives a batch of up to `max` items: blocks for the first,
    /// then drains whatever else is immediately available. Returns
    /// `false` once the ring is closed (producer dropped) *and* empty.
    pub fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> bool {
        debug_assert!(max >= 1);
        let mut spins = 0u32;
        loop {
            if self.try_drain(out, max) > 0 {
                return true;
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // Items published before the close are still owed:
                // force one last refresh past the cache.
                self.cached_tail
                    .set(self.shared.tail.0.load(Ordering::Acquire));
                return self.try_drain(out, max) > 0;
            }
            if spins < SPINS {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            let guard = match self.shared.park.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            self.shared.consumer_parked.store(true, Ordering::Relaxed);
            let _ = self.shared.data_ready.wait_timeout(guard, PARK_TIMEOUT);
            self.shared.consumer_parked.store(false, Ordering::Relaxed);
        }
    }
}

impl<T> Drop for RingConsumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_gone.store(true, Ordering::Release);
        let _guard = self.shared.park.lock();
        self.shared.space_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_order() {
        let (p, c, counters) = ring(8, FullPolicy::Drop);
        for i in 0..5 {
            assert!(p.push(i));
        }
        let mut out = Vec::new();
        assert!(c.recv_batch(&mut out, 16));
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(counters.snapshot().enqueued, 5);
    }

    #[test]
    fn full_ring_drops_are_counted_never_silent() {
        let (p, _c, counters) = ring(2, FullPolicy::Drop);
        assert!(p.push(1));
        assert!(p.push(2));
        assert!(!p.push(3), "third push exceeds capacity");
        assert!(!p.push(4));
        let snap = counters.snapshot();
        assert_eq!(snap.enqueued, 2);
        assert_eq!(snap.dropped_full, 2);
        assert_eq!(snap.enqueued + snap.dropped_full, 4, "all pushes accounted");
    }

    #[test]
    fn capacity_is_logical_not_rounded() {
        // Capacity 3 uses 4 physical slots but must still reject the
        // 4th un-drained item.
        let (p, _c, counters) = ring(3, FullPolicy::Drop);
        assert!(p.push(1));
        assert!(p.push(2));
        assert!(p.push(3));
        assert!(!p.push(4), "logical capacity is 3");
        assert_eq!(counters.snapshot().enqueued, 3);
    }

    #[test]
    fn block_policy_waits_for_the_consumer_and_counts_the_stall() {
        let (p, c, counters) = ring(1, FullPolicy::Block);
        assert!(p.push(10));
        let waiter = std::thread::spawn(move || {
            // Fills the ring, then must block until the consumer drains.
            assert!(p.push(20));
            assert!(p.push(30));
        });
        let mut out = Vec::new();
        while out.len() < 3 {
            assert!(c.recv_batch(&mut out, 4));
        }
        waiter.join().unwrap();
        assert_eq!(out, vec![10, 20, 30]);
        let snap = counters.snapshot();
        assert_eq!(snap.enqueued, 3);
        assert_eq!(snap.dropped_full, 0);
        assert!(snap.stalls >= 1, "at least one push found the ring full");
    }

    #[test]
    fn closed_ring_terminates_consumer() {
        let (p, c, _) = ring(4, FullPolicy::Drop);
        p.push(1);
        drop(p);
        let mut out = Vec::new();
        assert!(c.recv_batch(&mut out, 4), "drains the remaining item");
        assert_eq!(out, vec![1]);
        assert!(!c.recv_batch(&mut out, 4), "then reports closure");
    }

    #[test]
    fn push_after_consumer_gone_is_counted_drop() {
        let (p, c, counters) = ring(4, FullPolicy::Block);
        drop(c);
        assert!(!p.push(1));
        assert_eq!(counters.snapshot().dropped_full, 1);
    }

    #[test]
    fn block_ring_with_dead_consumer_cannot_deadlock() {
        // A Block-policy producer blocked on a full ring must wake and
        // report a drop when the consumer dies — bounded wait, not a
        // hang. Run the producer on its own thread and bound how long
        // we are willing to wait for it.
        let (p, c, counters) = ring(1, FullPolicy::Block);
        assert!(p.push(1), "fills the ring");
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let producer = std::thread::spawn(move || {
            // Blocks (ring full) until the consumer is dropped below.
            let second = p.push(2);
            done_tx.send(second).expect("main thread is waiting");
        });
        // Give the producer time to reach the blocking wait, then kill
        // the consumer out from under it.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(c);
        let second = done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("blocked producer must wake once the consumer dies");
        assert!(!second, "the blocked push reports the loss");
        producer.join().expect("producer thread exits cleanly");
        let snap = counters.snapshot();
        assert_eq!(snap.enqueued, 1);
        assert_eq!(snap.dropped_full, 1);
        assert!(snap.stalls >= 1, "the blocking attempt was counted");
    }

    #[test]
    fn offer_reports_saturation_and_shed_is_counted() {
        let (p, _c, counters) = ring(1, FullPolicy::Drop);
        assert_eq!(p.offer(1), PushOutcome::Enqueued);
        assert!(!PushOutcome::Enqueued.saturated());
        assert_eq!(p.offer(2), PushOutcome::DroppedFull);
        assert!(PushOutcome::DroppedFull.saturated());
        p.record_shed();
        p.record_shed();
        let snap = counters.snapshot();
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.enqueued, 1);
        assert_eq!(snap.dropped_full, 1);
    }

    #[test]
    fn recv_batch_respects_max() {
        let (p, c, _) = ring(16, FullPolicy::Drop);
        for i in 0..10 {
            p.push(i);
        }
        let mut out = Vec::new();
        assert!(c.recv_batch(&mut out, 4));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn push_batch_drop_policy_fills_then_drops_the_tail() {
        let (p, _c, counters) = ring(4, FullPolicy::Drop);
        let mut batch: Vec<u32> = (0..7).collect();
        let res = p.push_batch(&mut batch);
        assert!(batch.is_empty(), "push_batch drains its input");
        assert_eq!(res.enqueued, 4, "first items fill the ring in order");
        assert_eq!(res.dropped, 3);
        assert_eq!(res.stalled, 0);
        let snap = counters.snapshot();
        assert_eq!(snap.enqueued, 4);
        assert_eq!(snap.dropped_full, 3);
    }

    #[test]
    fn push_batch_block_policy_delivers_everything() {
        let (p, c, counters) = ring(2, FullPolicy::Block);
        let producer = std::thread::spawn(move || {
            let mut batch: Vec<u32> = (0..50).collect();
            let res = p.push_batch(&mut batch);
            assert_eq!(res.dropped, 0);
            assert_eq!(res.enqueued + res.stalled, 50);
        });
        let mut out = Vec::new();
        while out.len() < 50 {
            assert!(c.recv_batch(&mut out, 8));
        }
        producer.join().unwrap();
        assert_eq!(out, (0..50).collect::<Vec<u32>>(), "FIFO across waits");
        let snap = counters.snapshot();
        assert_eq!(snap.enqueued, 50);
        assert!(snap.stalls >= 1, "a capacity-2 ring must stall a 50-burst");
    }

    #[test]
    fn push_batch_to_dead_consumer_counts_all_dropped() {
        let (p, c, counters) = ring(8, FullPolicy::Block);
        drop(c);
        let mut batch: Vec<u32> = (0..5).collect();
        let res = p.push_batch(&mut batch);
        assert_eq!(res.enqueued + res.stalled, 0);
        assert_eq!(res.dropped, 5);
        assert_eq!(counters.snapshot().dropped_full, 5);
    }

    #[test]
    fn empty_push_batch_is_a_no_op() {
        let (p, _c, counters) = ring(4, FullPolicy::Drop);
        let mut batch: Vec<u32> = Vec::new();
        assert_eq!(p.push_batch(&mut batch), BatchPush::default());
        assert_eq!(counters.snapshot(), RingCountersSnapshot::default());
    }

    #[test]
    fn interleaved_push_and_push_batch_stay_fifo() {
        let (p, c, counters) = ring(64, FullPolicy::Block);
        p.push(0u32);
        let mut batch: Vec<u32> = (1..10).collect();
        p.push_batch(&mut batch);
        p.push(10);
        drop(p);
        let mut out = Vec::new();
        while c.recv_batch(&mut out, 4) {}
        assert_eq!(out, (0..=10).collect::<Vec<u32>>());
        assert_eq!(counters.snapshot().enqueued, 11);
    }

    #[test]
    fn indices_live_on_separate_cache_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicUsize>>(), 64);
        assert!(std::mem::size_of::<CachePadded<AtomicUsize>>() >= 64);
    }
}
