//! `unroller-engine` — run the sharded engine over synthetic routed
//! traffic with a routing loop injected mid-stream.
//!
//! Single-run mode processes the stream at a fixed shard count and
//! prints the full JSON report; `--scaling 1,2,4` replays the same
//! (same-seed) stream at each shard count and writes the scaling
//! report to `results/engine_scaling.json`.

use std::time::Duration;
use unroller_engine::{
    run_scaling, Engine, EngineConfig, FullPolicy, LoopInjection, ReplaySource, TrafficSource,
};
use unroller_sim::{NullDetector, SimConfig, Simulator};
use unroller_topology::ids::assign_sequential_ids;
use unroller_topology::{generators, Graph, NodeId};

struct Options {
    shards: usize,
    scaling: Option<Vec<usize>>,
    packets: u64,
    batch: usize,
    ring: usize,
    topology: String,
    flows: usize,
    loop_at: Option<u64>, // None = --no-loop
    ttl: u32,
    policy: FullPolicy,
    seed: u64,
    out: Option<String>,
    snapshot_ms: Option<u64>,
    expect_loop: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            shards: 2,
            scaling: None,
            packets: 200_000,
            batch: 64,
            ring: 1024,
            topology: "ring:32".to_string(),
            flows: 64,
            loop_at: Some(0), // placeholder; resolved after parsing
            ttl: 64,
            policy: FullPolicy::Drop,
            seed: 1,
            out: None,
            snapshot_ms: None,
            expect_loop: false,
        }
    }
}

fn usage() -> ! {
    println!(
        "usage: unroller-engine [options]\n\
         \n\
         Runs the sharded Unroller engine over synthetic traffic routed\n\
         through a simulated topology, with a routing loop injected\n\
         mid-stream (detected in-band by the per-switch pipelines).\n\
         \n\
         options:\n\
           --shards N        worker shards for a single run (default 2)\n\
           --scaling LIST    comma-separated shard counts (e.g. 1,2,4);\n\
                             runs each and writes a scaling report\n\
           --packets N       total packets to stream (default 200000)\n\
           --batch N         max packets per processing batch (default 64)\n\
           --ring N          per-shard ring capacity (default 1024)\n\
           --topology SPEC   ring:N | grid:WxH | fat-tree:K | wan:N |\n\
                             random:N[:EXTRA[:SEED]] (default ring:32)\n\
           --flows N         concurrent flows (default 64)\n\
           --loop-at N       packet index where the loop appears\n\
                             (default packets/4)\n\
           --no-loop         do not inject a loop\n\
           --ttl N           per-packet hop budget (default 64)\n\
           --policy P        drop | block on full rings (default drop)\n\
           --seed N          traffic seed (default 1)\n\
           --out PATH        write the JSON report here (scaling mode\n\
                             defaults to results/engine_scaling.json)\n\
           --snapshot-ms N   print live metric snapshots to stderr\n\
           --expect-loop     exit 1 unless a loop was detected\n\
           --help            this text"
    );
    std::process::exit(0);
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut explicit_loop_at = None;
    let mut no_loop = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("unroller-engine: {name} requires an argument");
                std::process::exit(2);
            })
        };
        fn num<T: std::str::FromStr>(name: &str, v: String) -> T {
            v.parse().unwrap_or_else(|_| {
                eprintln!("unroller-engine: invalid value for {name}: {v}");
                std::process::exit(2);
            })
        }
        match arg.as_str() {
            "--shards" => opts.shards = num("--shards", value("--shards")),
            "--scaling" => {
                let list = value("--scaling");
                let counts: Vec<usize> = list
                    .split(',')
                    .map(|p| num("--scaling", p.trim().to_string()))
                    .collect();
                if counts.is_empty() || counts.contains(&0) {
                    eprintln!("unroller-engine: --scaling needs positive shard counts");
                    std::process::exit(2);
                }
                opts.scaling = Some(counts);
            }
            "--packets" => opts.packets = num("--packets", value("--packets")),
            "--batch" => opts.batch = num("--batch", value("--batch")),
            "--ring" => opts.ring = num("--ring", value("--ring")),
            "--topology" => opts.topology = value("--topology"),
            "--flows" => opts.flows = num("--flows", value("--flows")),
            "--loop-at" => explicit_loop_at = Some(num("--loop-at", value("--loop-at"))),
            "--no-loop" => no_loop = true,
            "--ttl" => opts.ttl = num("--ttl", value("--ttl")),
            "--policy" => {
                opts.policy = match value("--policy").as_str() {
                    "drop" => FullPolicy::Drop,
                    "block" => FullPolicy::Block,
                    other => {
                        eprintln!("unroller-engine: unknown policy `{other}` (drop|block)");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => opts.seed = num("--seed", value("--seed")),
            "--out" => opts.out = Some(value("--out")),
            "--snapshot-ms" => {
                opts.snapshot_ms = Some(num("--snapshot-ms", value("--snapshot-ms")))
            }
            "--expect-loop" => opts.expect_loop = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unroller-engine: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    opts.loop_at = if no_loop {
        None
    } else {
        Some(explicit_loop_at.unwrap_or(opts.packets / 4))
    };
    opts
}

/// Picks a 2-switch forwarding cycle to inject: the first link whose
/// endpoints both differ from the chosen destination.
fn pick_injection(graph: &Graph, dst: NodeId, at_packet: u64) -> LoopInjection {
    for u in 0..graph.node_count() {
        if u == dst {
            continue;
        }
        for &v in graph.neighbors(u) {
            if v != dst {
                return LoopInjection {
                    cycle: vec![u, v],
                    dst,
                    at_packet,
                };
            }
        }
    }
    panic!("topology has no link avoiding node {dst}");
}

fn write_report(path: &str, contents: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                eprintln!("unroller-engine: cannot create {}: {e}", parent.display());
                std::process::exit(1);
            });
        }
    }
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("unroller-engine: cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {path}");
}

fn main() {
    let opts = parse_args();

    let graph = generators::from_spec(&opts.topology).unwrap_or_else(|| {
        eprintln!(
            "unroller-engine: bad topology spec `{}` (try --help)",
            opts.topology
        );
        std::process::exit(2);
    });
    let n = graph.node_count();
    let ids = assign_sequential_ids(n, 100);
    // Destination in the "middle" of the ID space; the injected cycle
    // avoids it by construction.
    let dst = n / 2;
    let injection = opts.loop_at.map(|at| pick_injection(&graph, dst, at));

    let cfg = EngineConfig {
        shards: opts.shards,
        batch_size: opts.batch,
        ring_capacity: opts.ring,
        max_hops: opts.ttl,
        full_policy: opts.policy,
        snapshot_every: opts.snapshot_ms.map(Duration::from_millis),
        ..EngineConfig::default()
    };

    // Each run gets a fresh simulator (injection mutates its tables)
    // and an identically-seeded source, so every shard count processes
    // the same traffic.
    let make_source = |flows: usize, packets: u64, seed: u64| -> Box<dyn TrafficSource> {
        let mut sim = Simulator::new(
            graph.clone(),
            ids.clone(),
            NullDetector,
            SimConfig::default(),
        );
        Box::new(ReplaySource::from_sim(
            &mut sim,
            flows,
            packets,
            injection.as_ref(),
            seed,
        ))
    };

    if let Some(shard_counts) = &opts.scaling {
        let report = run_scaling(&cfg, &ids, shard_counts, || {
            make_source(opts.flows, opts.packets, opts.seed)
        })
        .unwrap_or_else(|e| {
            eprintln!("unroller-engine: {e}");
            std::process::exit(2);
        });
        let caps = report.capacity_speedups();
        for (run, cap) in report.runs.iter().zip(&caps) {
            eprintln!(
                "shards={:<2} wall_pps={:>12.0} capacity_pps={:>12.0} speedup={cap:.2}x \
                 drops={} loops={}",
                run.shards,
                run.report.wall_pps(),
                run.report.aggregate_capacity_pps(),
                run.report.dropped_full(),
                run.report.aggregator.unique_flows,
            );
        }
        let out = opts
            .out
            .clone()
            .unwrap_or_else(|| "results/engine_scaling.json".to_string());
        write_report(&out, &report.to_json().render_pretty());
        if opts.expect_loop && !report.runs.iter().all(|r| r.report.loop_detected()) {
            eprintln!("unroller-engine: expected a loop detection in every run");
            std::process::exit(1);
        }
    } else {
        let engine = Engine::new(cfg, &ids).unwrap_or_else(|e| {
            eprintln!("unroller-engine: {e}");
            std::process::exit(2);
        });
        let mut source = make_source(opts.flows, opts.packets, opts.seed);
        let report = engine.run(source.as_mut());
        let rendered = report.to_json().render_pretty();
        println!("{rendered}");
        if let Some(out) = &opts.out {
            write_report(out, &rendered);
        }
        if !report.accounted() {
            eprintln!("unroller-engine: internal accounting mismatch");
            std::process::exit(1);
        }
        if opts.expect_loop && !report.loop_detected() {
            eprintln!("unroller-engine: expected a loop detection");
            std::process::exit(1);
        }
    }
}
