//! `unroller-engine` — run the sharded engine over synthetic routed
//! traffic with a routing loop injected mid-stream.
//!
//! Single-run mode processes the stream at a fixed shard count, hands
//! the deduplicated loop reports to the controller for localization and
//! (fault-tolerant) healing, and prints the full JSON report;
//! `--scaling 1,2,4` replays the same (same-seed) stream at each shard
//! count and writes the scaling report to
//! `results/engine_scaling.json`; `--fault-sweep 0,0.5,1,2,4` replays
//! it under the `--faults` plan scaled by each multiplier and writes
//! detection recall and heal latency per fault level to
//! `results/engine_faults.json`.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use unroller_control::{Controller, FlakyHealer, HealPolicy, HealReport, SimHealer};
use unroller_dataplane::{HeaderLayout, PcapWriter};
use unroller_engine::{
    aggregate::deliver, run_scaling, CaptureSource, ChurnPlan, ChurnSource, ControllerSink, Engine,
    EngineConfig, EngineReport, FaultPlan, FlowKey, FullPolicy, HistogramSnapshot, Json,
    LoopInjection, MemoConfig, PcapReplaySource, ReplaySource, TrafficSource, DEFAULT_SAMPLE_EVERY,
};
use unroller_sim::{NullDetector, SimConfig, Simulator};
use unroller_topology::ids::assign_sequential_ids;
use unroller_topology::{generators, Graph, NodeId};
use unroller_verify::FwdChecker;

struct Options {
    shards: usize,
    scaling: Option<Vec<usize>>,
    fault_sweep: Option<Vec<f64>>,
    packets: u64,
    batch: usize,
    ring: usize,
    topology: String,
    flows: usize,
    loop_at: Option<u64>, // None = --no-loop
    ttl: u32,
    policy: FullPolicy,
    seed: u64,
    out: Option<String>,
    snapshot_ms: Option<u64>,
    expect_loop: bool,
    faults: FaultPlan,
    shed: bool,
    watchdog_ms: Option<u64>,
    replay: Option<String>,
    capture: Option<String>,
    pin: bool,
    oracle: bool,
    events_out: Option<String>,
    epoch: u64,
    run_id: Option<String>,
    churn: Option<ChurnPlan>,
    memo: bool,
    memo_sample: u64,
    stepped: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            shards: 2,
            scaling: None,
            fault_sweep: None,
            packets: 200_000,
            batch: 64,
            ring: 1024,
            topology: "ring:32".to_string(),
            flows: 64,
            loop_at: Some(0), // placeholder; resolved after parsing
            ttl: 64,
            policy: FullPolicy::Drop,
            seed: 1,
            out: None,
            snapshot_ms: None,
            expect_loop: false,
            faults: FaultPlan::default(),
            shed: false,
            watchdog_ms: None,
            replay: None,
            capture: None,
            pin: false,
            oracle: false,
            events_out: None,
            epoch: 0,
            run_id: None,
            churn: None,
            memo: false,
            memo_sample: DEFAULT_SAMPLE_EVERY,
            stepped: false,
        }
    }
}

fn usage() -> ! {
    println!(
        "usage: unroller-engine [options]\n\
         \n\
         Runs the sharded Unroller engine over synthetic traffic routed\n\
         through a simulated topology, with a routing loop injected\n\
         mid-stream (detected in-band by the per-switch pipelines).\n\
         \n\
         options:\n\
           --shards N        worker shards for a single run (default 2)\n\
           --scaling LIST    comma-separated shard counts (e.g. 1,2,4);\n\
                             runs each and writes a scaling report\n\
           --packets N       total packets to stream (default 200000)\n\
           --batch N         max packets per processing batch (default 64)\n\
           --ring N          per-shard ring capacity (default 1024)\n\
           --topology SPEC   ring:N | grid:WxH | fat-tree:K | wan:N |\n\
                             random:N[:EXTRA[:SEED]] (default ring:32)\n\
           --flows N         concurrent flows (default 64)\n\
           --loop-at N       packet index where the loop appears\n\
                             (default packets/4)\n\
           --no-loop         do not inject a loop\n\
           --ttl N           per-packet hop budget (default 64)\n\
           --policy P        drop | block on full rings (default drop)\n\
           --seed N          traffic seed (default 1)\n\
           --out PATH        write the JSON report here (scaling mode\n\
                             defaults to results/engine_scaling.json,\n\
                             fault sweeps to results/engine_faults.json)\n\
           --snapshot-ms N   print live metric snapshots to stderr\n\
           --expect-loop     exit 1 unless a loop was detected\n\
           --faults SPEC     seeded fault plan, comma-separated k=v:\n\
                             seed=N panic=R bitflip=R stall=R[:MS]\n\
                             evdrop=R evdup=R healfail=R restarts=N\n\
                             (rates in [0,1]; e.g.\n\
                             seed=7,panic=0.001,bitflip=0.01,healfail=0.5)\n\
           --shed            shed lowest-priority flows at ingress when\n\
                             a shard's ring saturates (counted)\n\
           --watchdog-ms N   poll shard progress every N ms and kick\n\
                             stalled shards\n\
           --pin             pin each worker shard to a CPU core\n\
                             (round-robin over available cores; the\n\
                             chosen core is recorded per shard in the\n\
                             JSON report)\n\
           --replay FILE     replay a classic pcap capture instead of\n\
                             generating traffic: frames are attributed\n\
                             to flows by their Unroller MAC convention\n\
                             and processed in their recorded bytes\n\
                             (single-run mode only)\n\
           --capture FILE    record the traffic the engine processes\n\
                             as a classic pcap capture, replayable\n\
                             with --replay (single-run mode only)\n\
           --oracle          derive looping-flow ground truth from the\n\
                             static forwarding-state checker instead of\n\
                             the recorded per-flow routes; cross-checks\n\
                             both and exits 1 on any disagreement\n\
                             (single-run synthetic traffic only)\n\
           --events-out PATH write the deduplicated loop events as a\n\
                             JSONL log (header line with run metadata,\n\
                             one event per line) for offline analysis\n\
                             with unroller-analytics (single-run only)\n\
           --epoch N         epoch stamped into the event log and the\n\
                             run_meta report section (default 0);\n\
                             analytics marks loops seen in >= 2 epochs\n\
                             as persistent\n\
           --run-id STR      override the derived run identifier that\n\
                             joins this run's artifacts\n\
           --churn SPEC      live control-plane churn: replay seeded\n\
                             distance-vector link failures as route\n\
                             generations swapped mid-run (replaces the\n\
                             static --loop-at injection) and score\n\
                             recall against the live forwarding oracle;\n\
                             comma-separated k=v: rate=N (control\n\
                             events per million packets) seed=N links=N\n\
                             (e.g. rate=400,seed=7,links=2)\n\
           --fault-sweep L   comma-separated rate multipliers (e.g.\n\
                             0,0.5,1,2,4) applied to the --faults plan;\n\
                             replays the stream per level and writes\n\
                             recall + heal latency per fault rate\n\
           --memo            memoize per-route walk verdicts for\n\
                             generated traffic (invalidated on every\n\
                             route-generation swap); a seeded sample of\n\
                             cache hits is still walked and cross-checked\n\
                             bit-exactly — any divergence exits 1\n\
           --memo-sample N   cross-check one in N cache hits with a full\n\
                             walk (default 64; 0 = never, 1 = every hit;\n\
                             implies --memo)\n\
           --stepped         walk batches of unmemoized packets in\n\
                             lock-step, one hop per pass across 16\n\
                             in-flight frames (best with --memo)\n\
           --help            this text"
    );
    std::process::exit(0);
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut explicit_loop_at = None;
    let mut no_loop = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("unroller-engine: {name} requires an argument");
                std::process::exit(2);
            })
        };
        fn num<T: std::str::FromStr>(name: &str, v: String) -> T {
            v.parse().unwrap_or_else(|_| {
                eprintln!("unroller-engine: invalid value for {name}: {v}");
                std::process::exit(2);
            })
        }
        match arg.as_str() {
            "--shards" => opts.shards = num("--shards", value("--shards")),
            "--scaling" => {
                let list = value("--scaling");
                let counts: Vec<usize> = list
                    .split(',')
                    .map(|p| num("--scaling", p.trim().to_string()))
                    .collect();
                if counts.is_empty() || counts.contains(&0) {
                    eprintln!("unroller-engine: --scaling needs positive shard counts");
                    std::process::exit(2);
                }
                opts.scaling = Some(counts);
            }
            "--fault-sweep" => {
                let list = value("--fault-sweep");
                let mults: Vec<f64> = list
                    .split(',')
                    .map(|p| num("--fault-sweep", p.trim().to_string()))
                    .collect();
                if mults.is_empty() || mults.iter().any(|&m| m < 0.0) {
                    eprintln!("unroller-engine: --fault-sweep needs non-negative multipliers");
                    std::process::exit(2);
                }
                opts.fault_sweep = Some(mults);
            }
            "--packets" => opts.packets = num("--packets", value("--packets")),
            "--batch" => opts.batch = num("--batch", value("--batch")),
            "--ring" => opts.ring = num("--ring", value("--ring")),
            "--topology" => opts.topology = value("--topology"),
            "--flows" => opts.flows = num("--flows", value("--flows")),
            "--loop-at" => explicit_loop_at = Some(num("--loop-at", value("--loop-at"))),
            "--no-loop" => no_loop = true,
            "--ttl" => opts.ttl = num("--ttl", value("--ttl")),
            "--policy" => {
                opts.policy = match value("--policy").as_str() {
                    "drop" => FullPolicy::Drop,
                    "block" => FullPolicy::Block,
                    other => {
                        eprintln!("unroller-engine: unknown policy `{other}` (drop|block)");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => opts.seed = num("--seed", value("--seed")),
            "--out" => opts.out = Some(value("--out")),
            "--snapshot-ms" => {
                opts.snapshot_ms = Some(num("--snapshot-ms", value("--snapshot-ms")))
            }
            "--expect-loop" => opts.expect_loop = true,
            "--faults" => {
                let spec = value("--faults");
                opts.faults = FaultPlan::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("unroller-engine: bad --faults spec: {e}");
                    std::process::exit(2);
                });
            }
            "--churn" => {
                let spec = value("--churn");
                opts.churn = Some(ChurnPlan::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("unroller-engine: bad --churn spec: {e}");
                    std::process::exit(2);
                }));
            }
            "--replay" => opts.replay = Some(value("--replay")),
            "--capture" => opts.capture = Some(value("--capture")),
            "--events-out" => opts.events_out = Some(value("--events-out")),
            "--epoch" => opts.epoch = num("--epoch", value("--epoch")),
            "--run-id" => opts.run_id = Some(value("--run-id")),
            "--oracle" => opts.oracle = true,
            "--memo" => opts.memo = true,
            "--memo-sample" => {
                opts.memo_sample = num("--memo-sample", value("--memo-sample"));
                opts.memo = true;
            }
            "--stepped" => opts.stepped = true,
            "--shed" => opts.shed = true,
            "--pin" => opts.pin = true,
            "--watchdog-ms" => {
                opts.watchdog_ms = Some(num("--watchdog-ms", value("--watchdog-ms")))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unroller-engine: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    // Churn mode's loops come from the live control plane, not a
    // statically injected cycle.
    opts.loop_at = if no_loop || opts.churn.is_some() {
        None
    } else {
        Some(explicit_loop_at.unwrap_or(opts.packets / 4))
    };
    opts
}

/// Picks a 2-switch forwarding cycle to inject: the first link whose
/// endpoints both differ from the chosen destination.
fn pick_injection(graph: &Graph, dst: NodeId, at_packet: u64) -> LoopInjection {
    for u in 0..graph.node_count() {
        if u == dst {
            continue;
        }
        for &v in graph.neighbors(u) {
            if v != dst {
                return LoopInjection {
                    cycle: vec![u, v],
                    dst,
                    at_packet,
                };
            }
        }
    }
    panic!("topology has no link avoiding node {dst}");
}

fn write_report(path: &str, contents: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                eprintln!("unroller-engine: cannot create {}: {e}", parent.display());
                std::process::exit(1);
            });
        }
    }
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("unroller-engine: cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {path}");
}

/// Derives looping-flow ground truth statically: installs the
/// simulator's (post-injection) forwarding columns into the
/// incremental forwarding-state checker and classifies every flow from
/// its endpoints, independently of the per-flow routes the source
/// recorded. Returns the oracle's JSON section, its looping-flow set,
/// and whether that set matches `looping_flow_keys()` exactly.
fn oracle_ground_truth(
    graph: &Graph,
    sim: &Simulator<NullDetector>,
    source: &ReplaySource,
) -> (Json, Vec<FlowKey>, bool) {
    let t0 = std::time::Instant::now();
    let mut checker = FwdChecker::from_columns(graph.clone(), |dst| sim.forwarding(dst).to_vec());
    let keys = source.flow_keys();
    let endpoints: Vec<(NodeId, NodeId)> = keys
        .iter()
        .map(|k| {
            let (s, d) = k.synthetic_endpoints();
            (s as NodeId, d as NodeId)
        })
        .collect();
    checker.register_flows(endpoints.clone());
    let oracle_keys: Vec<FlowKey> = keys
        .iter()
        .zip(&endpoints)
        .filter(|&(_, &(s, d))| checker.flow_trapped(s, d))
        .map(|(k, _)| *k)
        .collect();
    let build_ns = t0.elapsed().as_nanos() as u64;

    let recorded: HashSet<FlowKey> = source.looping_flow_keys().into_iter().collect();
    let derived: HashSet<FlowKey> = oracle_keys.iter().copied().collect();
    let agrees = recorded == derived;

    let mut j = Json::object();
    j.set("flows", Json::UInt(keys.len() as u64));
    j.set("looping_flows", Json::UInt(oracle_keys.len() as u64));
    j.set(
        "imperiled_flows",
        Json::UInt(checker.imperiled_flows().len() as u64),
    );
    // Distinct endpoint-pair counts: downstream tooling that observes
    // traffic (unroller-analytics) sees pairs, not flow instances, so
    // the oracle exposes both granularities.
    let distinct: HashSet<(NodeId, NodeId)> = endpoints.iter().copied().collect();
    let imperiled_pairs: HashSet<(NodeId, NodeId)> =
        checker.imperiled_flows().into_iter().collect();
    let trapped_pairs: HashSet<(NodeId, NodeId)> = distinct
        .iter()
        .copied()
        .filter(|&(s, d)| checker.flow_trapped(s, d))
        .collect();
    j.set("distinct_pairs", Json::UInt(distinct.len() as u64));
    j.set(
        "imperiled_pairs_distinct",
        Json::UInt(imperiled_pairs.len() as u64),
    );
    j.set(
        "looping_pairs_distinct",
        Json::UInt(trapped_pairs.len() as u64),
    );
    j.set(
        "looping_routers",
        Json::UInt(checker.looping_routers().len() as u64),
    );
    j.set(
        "looping_dsts",
        Json::UInt(graph.nodes().filter(|&d| checker.has_loop(d)).count() as u64),
    );
    j.set("build_ns", Json::UInt(build_ns));
    j.set("agrees_with_replay_routes", Json::Bool(agrees));
    (j, oracle_keys, agrees)
}

/// Fraction of ground-truth looping flows the run detected; 1.0 when
/// nothing loops (there was nothing to miss).
fn detection_recall(report: &EngineReport, looping: &[FlowKey]) -> (f64, usize) {
    if looping.is_empty() {
        return (1.0, 0);
    }
    let detected: HashSet<FlowKey> = report.aggregator.events.iter().map(|e| e.flow).collect();
    let hits = looping.iter().filter(|f| detected.contains(f)).count();
    (hits as f64 / looping.len() as f64, hits)
}

/// Prints the memo layer's counters and exits 1 on any sampled
/// divergence — a cross-check mismatch means the cache served a verdict
/// the full walk disagrees with, which is always a bug, never a data
/// condition.
fn memo_gate(report: &EngineReport) {
    if !report.memo_enabled {
        return;
    }
    eprintln!(
        "memo: hits={} misses={} sampled_walks={} divergence={}",
        report.memo_hits(),
        report.memo_misses(),
        report.memo_sampled_walks(),
        report.memo_divergence(),
    );
    if report.memo_divergence() > 0 {
        eprintln!("unroller-engine: memoized verdicts diverged from sampled walks");
        std::process::exit(1);
    }
}

fn heal_json(heal: &HealReport) -> Json {
    let mut obj = Json::object();
    obj.set("healed", Json::UInt(heal.healed.len() as u64));
    obj.set("quarantined", Json::UInt(heal.quarantined.len() as u64));
    obj.set("attempts", Json::UInt(heal.attempts));
    obj.set("retries", Json::UInt(heal.retries));
    obj.set("backoff_ns", Json::UInt(heal.backoff_ns));
    obj.set("timeouts", Json::UInt(heal.timeouts));
    obj.set("already_healed", Json::UInt(heal.already_healed));
    obj
}

/// Runs the controller phase over a finished engine run: localize the
/// reported memberships, then heal through the (possibly fault-injected)
/// executor. Returns the sink and the heal outcome.
fn localize_and_heal(
    report: &EngineReport,
    ids: &[u32],
    sim: &mut Simulator<NullDetector>,
    plan: &FaultPlan,
) -> (ControllerSink, HealReport) {
    let mut sink = ControllerSink::new(Controller::new(ids));
    deliver(&report.aggregator.events, &mut sink);
    let mut healer = plan.healer();
    let mut sim_healer = SimHealer(sim);
    let mut flaky = FlakyHealer {
        inner: &mut sim_healer,
        fails: move || healer.attempt_fails(),
    };
    let heal = sink.controller.heal_all(HealPolicy::default(), &mut flaky);
    (sink, heal)
}

fn main() {
    let opts = parse_args();
    if (opts.replay.is_some() || opts.capture.is_some() || opts.events_out.is_some())
        && (opts.scaling.is_some() || opts.fault_sweep.is_some())
    {
        eprintln!("unroller-engine: --replay/--capture/--events-out are single-run options");
        std::process::exit(2);
    }
    if opts.oracle
        && (opts.replay.is_some() || opts.scaling.is_some() || opts.fault_sweep.is_some())
    {
        eprintln!("unroller-engine: --oracle applies to single-run synthetic traffic only");
        std::process::exit(2);
    }
    if opts.churn.is_some()
        && (opts.replay.is_some()
            || opts.oracle
            || opts.scaling.is_some()
            || opts.fault_sweep.is_some())
    {
        eprintln!(
            "unroller-engine: --churn is a single-run mode with its own live oracle \
             (no --replay/--oracle/--scaling/--fault-sweep)"
        );
        std::process::exit(2);
    }

    let graph = generators::from_spec(&opts.topology).unwrap_or_else(|| {
        eprintln!(
            "unroller-engine: bad topology spec `{}` (try --help)",
            opts.topology
        );
        std::process::exit(2);
    });
    let n = graph.node_count();
    let ids = assign_sequential_ids(n, 100);
    // Destination in the "middle" of the ID space; the injected cycle
    // avoids it by construction.
    let dst = n / 2;
    let injection = opts.loop_at.map(|at| pick_injection(&graph, dst, at));
    let run_meta = unroller_engine::RunMeta {
        run_id: opts.run_id.clone().unwrap_or_else(|| {
            unroller_engine::RunMeta::derived_run_id(&opts.topology, opts.seed, opts.epoch)
        }),
        seed: opts.seed,
        topology: opts.topology.clone(),
        nodes: n,
        flows: opts.flows,
        packets: opts.packets,
        shards: opts.shards,
        epoch: opts.epoch,
        id_base: 100,
        injection: injection.clone(),
    };

    let cfg = EngineConfig {
        shards: opts.shards,
        batch_size: opts.batch,
        ring_capacity: opts.ring,
        max_hops: opts.ttl,
        full_policy: opts.policy,
        snapshot_every: opts.snapshot_ms.map(Duration::from_millis),
        faults: opts.faults.clone(),
        shed: opts.shed,
        watchdog: opts.watchdog_ms.map(Duration::from_millis),
        pin_cores: opts.pin,
        memo: opts.memo.then_some(MemoConfig {
            sample_every: opts.memo_sample,
        }),
        stepped: opts.stepped,
        ..EngineConfig::default()
    };

    // Each run gets a fresh simulator (injection mutates its tables)
    // and an identically-seeded source, so every configuration
    // processes the same traffic. The simulator is returned alongside
    // the source because the post-run heal phase repairs *it*.
    let build = || -> (Simulator<NullDetector>, ReplaySource) {
        let mut sim = Simulator::new(
            graph.clone(),
            ids.clone(),
            NullDetector,
            SimConfig::default(),
        );
        let source = ReplaySource::from_sim(
            &mut sim,
            opts.flows,
            opts.packets,
            injection.as_ref(),
            opts.seed,
        );
        (sim, source)
    };

    if let Some(shard_counts) = &opts.scaling {
        let report =
            run_scaling(&cfg, &ids, shard_counts, || Box::new(build().1)).unwrap_or_else(|e| {
                eprintln!("unroller-engine: {e}");
                std::process::exit(2);
            });
        let caps = report.capacity_speedups();
        for (run, cap) in report.runs.iter().zip(&caps) {
            eprintln!(
                "shards={:<2} wall_pps={:>12.0} capacity_pps={:>12.0} speedup={cap:.2}x \
                 drops={} loops={}",
                run.shards,
                run.report.wall_pps(),
                run.report.aggregate_capacity_pps(),
                run.report.dropped_full(),
                run.report.aggregator.unique_flows,
            );
        }
        let out = opts
            .out
            .clone()
            .unwrap_or_else(|| "results/engine_scaling.json".to_string());
        write_report(&out, &report.to_json().render_pretty());
        if opts.expect_loop && !report.runs.iter().all(|r| r.report.loop_detected()) {
            eprintln!("unroller-engine: expected a loop detection in every run");
            std::process::exit(1);
        }
    } else if let Some(multipliers) = &opts.fault_sweep {
        if !opts.faults.active() {
            eprintln!("unroller-engine: --fault-sweep needs an active --faults plan to scale");
            std::process::exit(2);
        }
        let mut runs = Vec::with_capacity(multipliers.len());
        for &mult in multipliers {
            let plan = opts.faults.scaled(mult);
            let run_cfg = EngineConfig {
                faults: plan.clone(),
                ..cfg.clone()
            };
            let engine = Engine::new(run_cfg, &ids).unwrap_or_else(|e| {
                eprintln!("unroller-engine: {e}");
                std::process::exit(2);
            });
            let (mut sim, mut source) = build();
            let looping = source.looping_flow_keys();
            let report = engine.run(&mut source).unwrap_or_else(|e| {
                eprintln!("unroller-engine: run at multiplier {mult} failed: {e}");
                std::process::exit(1);
            });
            let (recall, hits) = detection_recall(&report, &looping);
            let (_, heal) = localize_and_heal(&report, &ids, &mut sim, &plan);
            eprintln!(
                "mult={mult:<4} recall={recall:.3} restarts={} panic_lost={} bitflips={} \
                 heal_attempts={} heal_backoff_ns={} quarantined={} accounted={}",
                report.restarts(),
                report.panic_lost(),
                report
                    .shard_snapshots
                    .iter()
                    .map(|s| s.bitflips_injected)
                    .sum::<u64>(),
                heal.attempts,
                heal.backoff_ns,
                heal.quarantined.len(),
                report.accounted(),
            );
            let mut row = Json::object();
            row.set("multiplier", Json::Float(mult));
            row.set("fault_plan", plan.to_json());
            row.set("looping_flows", Json::UInt(looping.len() as u64));
            row.set("detected_looping_flows", Json::UInt(hits as u64));
            row.set("recall", Json::Float(recall));
            row.set("restarts", Json::UInt(report.restarts()));
            row.set("panic_lost", Json::UInt(report.panic_lost()));
            row.set("shed", Json::UInt(report.shed()));
            row.set("accounted", Json::Bool(report.accounted()));
            row.set("wall_ns", Json::UInt(report.wall_ns));
            row.set("heal", heal_json(&heal));
            row.set("report", report.to_json());
            runs.push(row);
        }
        let mut sweep = Json::object();
        sweep.set("base_plan", opts.faults.to_json());
        sweep.set(
            "multipliers",
            Json::Array(multipliers.iter().map(|&m| Json::Float(m)).collect()),
        );
        sweep.set("runs", Json::Array(runs));
        let out = opts
            .out
            .clone()
            .unwrap_or_else(|| "results/engine_faults.json".to_string());
        write_report(&out, &sweep.render_pretty());
    } else if let Some(plan) = opts.churn.clone() {
        // Live churn: the control plane fails and heals links while the
        // engine is processing, publishing each recompiled route set as
        // a new epoch-table generation. Recall is scored against the
        // ever-trapped flow set the live FwdChecker mirror accumulated.
        let layout = HeaderLayout::from_params(&cfg.params);
        let mut cfg = cfg;
        cfg.events_log = opts
            .events_out
            .clone()
            .map(|path| unroller_engine::EventsLogConfig {
                path,
                meta: run_meta.clone(),
            });
        let engine = Engine::new(cfg, &ids).unwrap_or_else(|e| {
            eprintln!("unroller-engine: {e}");
            std::process::exit(2);
        });
        let mut source = ChurnSource::new(graph.clone(), &plan, opts.flows, opts.packets);
        let table = source.table();
        let capture_writer = opts
            .capture
            .as_ref()
            .map(|_| Arc::new(Mutex::new(PcapWriter::default())));
        let mut capture_errors = 0u64;
        let report = match &capture_writer {
            Some(writer) => {
                let mut tee = CaptureSource::new(source, layout, writer.clone());
                let errors = tee.error_counter();
                let report = engine.run(&mut tee).unwrap_or_else(|e| {
                    eprintln!("unroller-engine: {e}");
                    std::process::exit(1);
                });
                capture_errors = errors.load(std::sync::atomic::Ordering::Relaxed);
                source = tee.into_inner();
                report
            }
            None => engine.run(&mut source).unwrap_or_else(|e| {
                eprintln!("unroller-engine: {e}");
                std::process::exit(1);
            }),
        };
        if let (Some(path), Some(writer)) = (&opts.capture, capture_writer) {
            let pcap = Arc::try_unwrap(writer)
                .expect("capture writer uniquely owned after the run")
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .finish();
            if let Some(parent) = std::path::Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                        eprintln!("unroller-engine: cannot create {}: {e}", parent.display());
                        std::process::exit(1);
                    });
                }
            }
            std::fs::write(path, &pcap).unwrap_or_else(|e| {
                eprintln!("unroller-engine: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path} ({} bytes)", pcap.len());
        }
        if let Some(path) = &opts.events_out {
            if let Some(err) = &report.event_log_error {
                eprintln!("unroller-engine: event log {path} truncated: {err}");
                std::process::exit(1);
            }
        }
        if let Err(e) = source.oracle_check() {
            eprintln!("unroller-engine: live oracle diverged from the control plane: {e}");
            std::process::exit(1);
        }
        let looping = source.looping_flow_keys();
        let (recall, hits) = detection_recall(&report, &looping);
        let loops_after_swap: u64 = report
            .shard_snapshots
            .iter()
            .map(|s| s.loops_after_swap)
            .sum();
        let swaps_observed: u64 = report
            .shard_snapshots
            .iter()
            .map(|s| s.route_swaps_observed)
            .sum();
        let mut latency: Option<HistogramSnapshot> = None;
        for snap in &report.shard_snapshots {
            match &mut latency {
                None => latency = Some(snap.detect_latency_ns.clone()),
                Some(merged) => merged.merge(&snap.detect_latency_ns),
            }
        }
        eprintln!(
            "churn: {} generations over {} link failures ({} rule deltas), \
             {} trapped flows, recall={recall:.3}, {} loops after swap",
            source.generations_published(),
            source.links_failed(),
            source.rules_applied(),
            looping.len(),
            loops_after_swap,
        );
        let mut churn_section = Json::object();
        churn_section.set("plan", plan.to_json());
        churn_section.set(
            "generations_published",
            Json::UInt(source.generations_published()),
        );
        churn_section.set("rules_applied", Json::UInt(source.rules_applied()));
        churn_section.set("links_failed", Json::UInt(source.links_failed()));
        churn_section.set("trapped_flows", Json::UInt(looping.len() as u64));
        churn_section.set("detected_trapped_flows", Json::UInt(hits as u64));
        churn_section.set("recall", Json::Float(recall));
        churn_section.set("loops_after_swap", Json::UInt(loops_after_swap));
        churn_section.set("route_swaps_observed", Json::UInt(swaps_observed));
        churn_section.set("generations_retained", Json::UInt(table.retained() as u64));
        churn_section.set("generations_reclaimed", Json::UInt(table.reclaimed()));
        churn_section.set("capture_errors", Json::UInt(capture_errors));
        if let Some(latency) = &latency {
            churn_section.set("detect_latency_ns", latency.to_json());
        }
        let mut rendered = report.to_json();
        rendered.set("run_meta", run_meta.to_json());
        rendered.set("recall", Json::Float(recall));
        rendered.set("churn", churn_section);
        let rendered = rendered.render_pretty();
        println!("{rendered}");
        if let Some(out) = &opts.out {
            write_report(out, &rendered);
        }
        if !report.accounted() {
            eprintln!("unroller-engine: internal accounting mismatch");
            std::process::exit(1);
        }
        memo_gate(&report);
        if opts.expect_loop && (!report.loop_detected() || loops_after_swap == 0) {
            eprintln!("unroller-engine: expected a loop detection on a post-swap generation");
            std::process::exit(1);
        }
    } else {
        let layout = HeaderLayout::from_params(&cfg.params);
        // Stream the event log during the run (flushed per record) so
        // an aborted run still leaves a parseable log behind.
        let mut cfg = cfg;
        cfg.events_log = opts
            .events_out
            .clone()
            .map(|path| unroller_engine::EventsLogConfig {
                path,
                meta: run_meta.clone(),
            });
        let engine = Engine::new(cfg, &ids).unwrap_or_else(|e| {
            eprintln!("unroller-engine: {e}");
            std::process::exit(2);
        });
        // Traffic: either the simulator-routed generator or a pcap
        // capture whose frames are resolved against the same (possibly
        // loop-injected) routing state, then processed in their own
        // recorded bytes.
        let mut oracle: Option<(Json, Vec<FlowKey>, bool)> = None;
        let (mut sim, source, looping): (_, Box<dyn TrafficSource>, Vec<FlowKey>) =
            if let Some(path) = &opts.replay {
                let mut sim = Simulator::new(
                    graph.clone(),
                    ids.clone(),
                    NullDetector,
                    SimConfig::default(),
                );
                if let Some(inj) = &injection {
                    sim.inject_cycle(&inj.cycle, inj.dst);
                }
                let replay = PcapReplaySource::open(path, |src, dst| {
                    if src >= n || dst >= n {
                        return None;
                    }
                    let route = sim.route(src, dst);
                    if route.is_empty() {
                        None
                    } else {
                        Some(unroller_engine::PathSpec::from_route(&route))
                    }
                })
                .unwrap_or_else(|e| {
                    eprintln!("unroller-engine: cannot read {path}: {e}");
                    std::process::exit(2);
                })
                .unwrap_or_else(|e| {
                    eprintln!("unroller-engine: malformed capture {path}: {e}");
                    std::process::exit(2);
                });
                eprintln!(
                    "replaying {path}: {} packets, {} unattributable records skipped",
                    replay.packet_count(),
                    replay.skipped_frames(),
                );
                let looping = replay.looping_flow_keys();
                (sim, Box::new(replay), looping)
            } else {
                let (sim, source) = build();
                if opts.oracle {
                    oracle = Some(oracle_ground_truth(&graph, &sim, &source));
                }
                // With --oracle, recall's ground truth comes from the
                // static checker; otherwise from the recorded routes.
                let looping = match &oracle {
                    Some((_, keys, _)) => keys.clone(),
                    None => source.looping_flow_keys(),
                };
                (sim, Box::new(source), looping)
            };
        let capture_writer = opts
            .capture
            .as_ref()
            .map(|_| Arc::new(Mutex::new(PcapWriter::default())));
        let mut source: Box<dyn TrafficSource> = match &capture_writer {
            Some(w) => Box::new(CaptureSource::new(source, layout, w.clone())),
            None => source,
        };
        let report = engine.run(&mut *source).unwrap_or_else(|e| {
            eprintln!("unroller-engine: {e}");
            std::process::exit(1);
        });
        if let (Some(path), Some(writer)) = (&opts.capture, capture_writer) {
            drop(source); // release the tee's clone of the writer
            let pcap = Arc::try_unwrap(writer)
                .expect("capture writer uniquely owned after the run")
                .into_inner()
                .expect("capture writer poisoned")
                .finish();
            if let Some(parent) = std::path::Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                        eprintln!("unroller-engine: cannot create {}: {e}", parent.display());
                        std::process::exit(1);
                    });
                }
            }
            std::fs::write(path, &pcap).unwrap_or_else(|e| {
                eprintln!("unroller-engine: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path} ({} bytes)", pcap.len());
        }
        if let Some(path) = &opts.events_out {
            if let Some(err) = &report.event_log_error {
                eprintln!("unroller-engine: event log {path} truncated: {err}");
                std::process::exit(1);
            }
            let written = report.events_logged.unwrap_or(0);
            eprintln!("wrote {path} ({written} loop events, streamed)");
        }
        let (recall, _) = detection_recall(&report, &looping);
        let (sink, heal) = localize_and_heal(&report, &ids, &mut sim, &opts.faults);
        let mut rendered = report.to_json();
        rendered.set("run_meta", run_meta.to_json());
        rendered.set("recall", Json::Float(recall));
        if let Some((section, _, _)) = &oracle {
            rendered.set("oracle", section.clone());
        }
        let mut controller = Json::object();
        controller.set(
            "localized_loops",
            Json::UInt(sink.controller.localized_loops().len() as u64),
        );
        controller.set("total_reports", Json::UInt(sink.controller.total_reports()));
        controller.set("incomplete_reports", Json::UInt(sink.incomplete));
        controller.set("heal", heal_json(&heal));
        rendered.set("controller", controller);
        let rendered = rendered.render_pretty();
        println!("{rendered}");
        if let Some(out) = &opts.out {
            write_report(out, &rendered);
        }
        if !report.accounted() {
            eprintln!("unroller-engine: internal accounting mismatch");
            std::process::exit(1);
        }
        memo_gate(&report);
        if let Some((_, _, agrees)) = &oracle {
            if !agrees {
                eprintln!("unroller-engine: oracle ground truth disagrees with recorded routes");
                std::process::exit(1);
            }
        }
        if opts.expect_loop && !report.loop_detected() {
            eprintln!("unroller-engine: expected a loop detection");
            std::process::exit(1);
        }
    }
}
