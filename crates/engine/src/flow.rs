//! Flow identity and deterministic RSS-style shard mapping.
//!
//! The engine partitions traffic by *flow*, not by packet: every packet
//! of a 5-tuple lands on the same worker shard, so all per-flow work
//! (the packet's journey through the per-switch pipelines, loop-event
//! emission) happens on one thread with no cross-shard coordination.
//! This is the software analogue of NIC receive-side scaling (RSS),
//! with one deliberate difference: instead of a Toeplitz hash keyed by
//! a per-NIC secret, the engine uses a fixed-constant SplitMix64 mix so
//! the flow → shard mapping is *reproducible across runs and hosts* —
//! scaling experiments must be replayable from a seed alone.

/// A transport 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowKey {
    /// IPv4 source address.
    pub src_ip: u32,
    /// IPv4 destination address.
    pub dst_ip: u32,
    /// Transport source port.
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP, …).
    pub proto: u8,
}

/// SplitMix64 finalizer — the same avalanche mix `unroller-core`'s
/// hash family uses, applied here to flow tuples.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FlowKey {
    /// A synthetic flow key for generated traffic: host-style addresses
    /// derived from endpoint indices, a per-flow source port so distinct
    /// flows between the same endpoints still spread across shards.
    #[inline]
    pub fn synthetic(src: u32, dst: u32, flow_index: u32) -> Self {
        FlowKey {
            src_ip: 0x0a00_0000 | (src & 0x00ff_ffff),
            dst_ip: 0x0a00_0000 | (dst & 0x00ff_ffff),
            src_port: 1024u16.wrapping_add(flow_index as u16),
            dst_port: 443,
            proto: 6,
        }
    }

    /// Recovers the endpoint node indices a
    /// [`synthetic`](Self::synthetic) key encodes in its host-style
    /// addresses. Only meaningful for keys built by `synthetic`.
    #[inline]
    pub fn synthetic_endpoints(&self) -> (u32, u32) {
        (self.src_ip & 0x00ff_ffff, self.dst_ip & 0x00ff_ffff)
    }

    /// The 64-bit RSS hash of this tuple. Deterministic (fixed seed
    /// constant) and symmetric in nothing — direction matters, exactly
    /// as hardware RSS behaves for unidirectional queues.
    #[inline]
    pub fn rss_hash(&self) -> u64 {
        let w0 = ((self.src_ip as u64) << 32) | self.dst_ip as u64;
        let w1 = ((self.src_port as u64) << 48)
            | ((self.dst_port as u64) << 32)
            | ((self.proto as u64) << 24);
        mix64(mix64(w0 ^ 0x756e_726f_6c6c_6572) ^ w1)
    }

    /// The flow's scheduling priority class, 0 (lowest, shed first)
    /// through 7. Derived from the *low* hash bits — the shard mapping
    /// folds the high 32, so priority and shard placement stay
    /// independent and shedding a priority band starves no shard.
    /// Deterministic per tuple, like everything else about placement.
    #[inline]
    pub fn priority(&self) -> u8 {
        (self.rss_hash() & 0x7) as u8
    }

    /// Maps this flow onto one of `shards` workers using a
    /// multiply-shift fold of the hash's high bits (no modulo bias).
    /// Deterministic: the same tuple always yields the same shard for a
    /// fixed shard count — the flow-affinity invariant every piece of
    /// per-shard state relies on.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    #[inline]
    pub fn shard(&self, shards: usize) -> usize {
        assert!(shards >= 1, "at least one shard");
        let h = self.rss_hash() >> 32; // top 32 bits, uniformly mixed
        ((h * shards as u64) >> 32) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn random_key(rng: &mut impl Rng) -> FlowKey {
        FlowKey {
            src_ip: rng.gen(),
            dst_ip: rng.gen(),
            src_port: rng.gen(),
            dst_port: rng.gen(),
            proto: rng.gen(),
        }
    }

    #[test]
    fn shard_is_deterministic() {
        let mut rng = unroller_core::test_rng(5);
        for _ in 0..1000 {
            let k = random_key(&mut rng);
            for shards in [1usize, 2, 3, 4, 8, 16] {
                assert_eq!(k.shard(shards), k.shard(shards));
                assert!(k.shard(shards) < shards);
            }
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let mut rng = unroller_core::test_rng(6);
        for _ in 0..100 {
            assert_eq!(random_key(&mut rng).shard(1), 0);
        }
    }

    #[test]
    fn tuple_fields_all_matter() {
        let base = FlowKey {
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
            proto: 6,
        };
        let variants = [
            FlowKey { src_ip: 9, ..base },
            FlowKey { dst_ip: 9, ..base },
            FlowKey {
                src_port: 9,
                ..base
            },
            FlowKey {
                dst_port: 9,
                ..base
            },
            FlowKey { proto: 17, ..base },
        ];
        for v in variants {
            assert_ne!(v.rss_hash(), base.rss_hash(), "{v:?}");
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = unroller_core::test_rng(7);
        for shards in [2usize, 4, 8] {
            let mut counts = vec![0u32; shards];
            let flows = 8192;
            for _ in 0..flows {
                counts[random_key(&mut rng).shard(shards)] += 1;
            }
            let mean = flows as f64 / shards as f64;
            for (i, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64) < 2.0 * mean && (c as f64) > mean / 2.0,
                    "shard {i} of {shards} holds {c} flows (mean {mean})"
                );
            }
        }
    }

    #[test]
    fn synthetic_keys_differ_per_flow_index() {
        let a = FlowKey::synthetic(1, 2, 0);
        let b = FlowKey::synthetic(1, 2, 1);
        assert_ne!(a, b);
        assert_ne!(a.rss_hash(), b.rss_hash());
    }
}
