//! Live route churn: a traffic source that replays distance-vector
//! convergence *while the engine is processing its packets*.
//!
//! [`ChurnSource`] owns a [`DistanceVector`] process over the run's
//! topology and a schedule of seeded link failures. Every `interval`
//! packets it advances the control plane by one event — fail a link,
//! run one synchronous DV exchange round, or restore the link — and
//! recompiles every flow's route from the new forwarding columns into
//! a fresh [`RouteSet`] generation published through the shared
//! [`EpochRouteTable`]. Workers pick the swap up at their next batch
//! boundary, so the count-to-infinity micro-loops the DV process forms
//! (and later heals) exist *in the data plane* exactly as long as the
//! control plane takes to converge — the live-churn scenario the
//! detect-don't-prevent argument is about.
//!
//! Every [`RuleDelta`] the DV process emits is simultaneously fed to an
//! incremental [`FwdChecker`] mirror, which classifies each flow after
//! every event. A flow that was ever trapped in a forwarding cycle
//! lands in the ground-truth set behind
//! [`ChurnSource::looping_flow_keys`] — the live oracle recall is
//! scored against.
//!
//! Route identity is positional: flow `i` always resolves through slot
//! `i` of whatever generation is current (see
//! [`RouteSet::from_specs`]), so a published swap retargets in-flight
//! packets without touching them.

use crate::epoch::EpochRouteTable;
use crate::flow::FlowKey;
use crate::packet::{EnginePacket, PathSpec};
use crate::route::{RouteId, RouteSet};
use crate::source::TrafficSource;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;
use unroller_control::{DistanceVector, RuleDelta};
use unroller_topology::{Graph, NodeId};
use unroller_verify::FwdChecker;

/// A parse error for a `--churn` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnSpecError(pub String);

impl fmt::Display for ChurnSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad churn spec: {}", self.0)
    }
}

impl std::error::Error for ChurnSpecError {}

/// Configuration for an update storm, parsed from a `--churn`
/// `k=v,k=v` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Control-plane events per million offered packets. Each event is
    /// one link failure, one DV exchange round, or one link restore;
    /// `rate=100` advances the control plane every 10 000 packets.
    pub rate: u64,
    /// Seed for the link-failure schedule and flow endpoints.
    pub seed: u64,
    /// Distinct links cycled through fail → collapse → restore → heal
    /// (capped at the topology's edge count).
    pub links: usize,
}

impl Default for ChurnPlan {
    fn default() -> Self {
        ChurnPlan {
            rate: 100,
            seed: 1,
            links: 4,
        }
    }
}

impl ChurnPlan {
    /// Parses a comma-separated `k=v` spec: `rate=N` (events per
    /// million packets, ≥ 1), `seed=N`, `links=N` (≥ 1). Example:
    /// `rate=400,seed=7,links=2`.
    pub fn parse(spec: &str) -> Result<ChurnPlan, ChurnSpecError> {
        let mut plan = ChurnPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| ChurnSpecError(format!("`{part}` is not k=v")))?;
            let num = |what: &str| -> Result<u64, ChurnSpecError> {
                value
                    .parse::<u64>()
                    .map_err(|_| ChurnSpecError(format!("`{value}` is not a valid {what}")))
            };
            match key {
                "rate" => plan.rate = num("rate")?,
                "seed" => plan.seed = num("seed")?,
                "links" => plan.links = num("links")? as usize,
                other => return Err(ChurnSpecError(format!("unknown key `{other}`"))),
            }
        }
        if plan.rate == 0 {
            return Err(ChurnSpecError("rate must be >= 1".to_string()));
        }
        if plan.links == 0 {
            return Err(ChurnSpecError("links must be >= 1".to_string()));
        }
        Ok(plan)
    }

    /// Packets between control-plane events at this rate.
    pub fn interval(&self) -> u64 {
        (1_000_000 / self.rate).max(1)
    }

    /// The plan as a JSON object (for run reports).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let mut obj = Json::object();
        obj.set("rate", Json::UInt(self.rate));
        obj.set("seed", Json::UInt(self.seed));
        obj.set("links", Json::UInt(self.links as u64));
        obj.set("interval_packets", Json::UInt(self.interval()));
        obj
    }
}

/// Where the churn state machine is between events.
enum Phase {
    /// Fail the next scheduled link (RIP's local triggered update).
    Fail,
    /// The network is re-converging around the failure; step until
    /// quiescent, then restore the link.
    Collapsing,
    /// The link is back; step until the original routes return.
    Healing,
}

/// A traffic source that streams flow packets round-robin while a
/// distance-vector control plane churns underneath them (see the
/// module docs). Implements [`TrafficSource`]; hand its
/// [`route_table`](TrafficSource::route_table) to the engine and every
/// published generation reaches the workers mid-run.
pub struct ChurnSource {
    dv: DistanceVector,
    checker: FwdChecker,
    table: Arc<EpochRouteTable>,
    /// Flow endpoints, indexed by flow = route slot.
    endpoints: Vec<(NodeId, NodeId)>,
    keys: Vec<FlowKey>,
    seqs: Vec<u64>,
    /// Links cycled through failure, in schedule order.
    schedule: Vec<(NodeId, NodeId)>,
    next_link: usize,
    active_link: (NodeId, NodeId),
    phase: Phase,
    /// Flow indices the live oracle ever saw trapped in a cycle.
    trapped: BTreeSet<usize>,
    /// `(generation, deltas folded into it)` per published swap.
    generation_log: Vec<(u64, usize)>,
    interval: u64,
    next_event: u64,
    emitted: u64,
    total: u64,
    next_flow: usize,
    rules_applied: u64,
    links_failed: u64,
}

impl ChurnSource {
    /// Builds the source: converges a DV process over `graph`, draws
    /// `flows` seeded endpoint pairs, snapshots the checker mirror, and
    /// publishes generation 1 of the epoch table. Split horizon is
    /// *off* — the whole point is the count-to-infinity bounce.
    pub fn new(graph: Graph, plan: &ChurnPlan, flows: usize, total: u64) -> Self {
        let n = graph.node_count();
        assert!(n >= 3, "churn needs at least three nodes");
        assert!(flows >= 1, "at least one flow");
        let edges = graph.edges();
        assert!(!edges.is_empty(), "churn needs links to fail");

        let mut rng = rand::rngs::StdRng::seed_from_u64(plan.seed ^ 0x6368726e);
        let endpoints: Vec<(NodeId, NodeId)> = (0..flows)
            .map(|_| {
                let dst = rng.gen_range(0..n);
                let src = loop {
                    let s = rng.gen_range(0..n);
                    if s != dst {
                        break s;
                    }
                };
                (src, dst)
            })
            .collect();
        let keys = endpoints
            .iter()
            .enumerate()
            .map(|(f, &(src, dst))| FlowKey::synthetic(src as u32, dst as u32, f as u32))
            .collect();

        let mut schedule = edges;
        schedule.shuffle(&mut rng);
        schedule.truncate(plan.links.min(schedule.len()));

        let dv = DistanceVector::new(graph, false);
        let mut checker = FwdChecker::from_dv(&dv);
        checker.register_flows(endpoints.clone());

        // Generation 1: every flow's route compiled from the converged
        // columns, one slot per flow.
        let specs = compile_all(&dv, &endpoints);
        let table = Arc::new(EpochRouteTable::new(RouteSet::from_specs(specs.iter())));

        ChurnSource {
            table,
            dv,
            checker,
            endpoints,
            keys,
            seqs: vec![0; flows],
            active_link: schedule[0],
            schedule,
            next_link: 0,
            phase: Phase::Fail,
            trapped: BTreeSet::new(),
            generation_log: Vec::new(),
            interval: plan.interval(),
            next_event: plan.interval(),
            emitted: 0,
            total,
            next_flow: 0,
            rules_applied: 0,
            links_failed: 0,
        }
    }

    /// Advances the control plane by one event. Any emitted deltas are
    /// mirrored into the checker, folded into a freshly published route
    /// generation, and followed by a trapped-flow scan.
    fn advance(&mut self) {
        let mut deltas: Vec<RuleDelta> = Vec::new();
        match self.phase {
            Phase::Fail => {
                let (u, v) = self.schedule[self.next_link];
                self.next_link = (self.next_link + 1) % self.schedule.len();
                self.active_link = (u, v);
                self.dv.fail_link_record(u, v, |d| deltas.push(d));
                self.links_failed += 1;
                self.phase = Phase::Collapsing;
            }
            Phase::Collapsing => {
                if !self.dv.step_record(|d| deltas.push(d)) {
                    let (u, v) = self.active_link;
                    self.dv.restore_link(u, v);
                    self.phase = Phase::Healing;
                }
            }
            Phase::Healing => {
                if !self.dv.step_record(|d| deltas.push(d)) {
                    self.phase = Phase::Fail;
                }
            }
        }
        if deltas.is_empty() {
            return;
        }
        for delta in &deltas {
            self.checker.apply(delta);
        }
        self.rules_applied += deltas.len() as u64;
        let specs = compile_all(&self.dv, &self.endpoints);
        let generation = self.table.publish(RouteSet::from_specs(specs.iter()));
        self.generation_log.push((generation, deltas.len()));
        for (f, &(src, dst)) in self.endpoints.iter().enumerate() {
            if self.checker.flow_trapped(src, dst) {
                self.trapped.insert(f);
            }
        }
    }

    /// The shared epoch table the engine's workers should read from.
    pub fn table(&self) -> Arc<EpochRouteTable> {
        self.table.clone()
    }

    /// Every flow's key, in flow (= route slot) order.
    pub fn flow_keys(&self) -> Vec<FlowKey> {
        self.keys.clone()
    }

    /// Ground truth for recall: the flows the live checker oracle ever
    /// saw trapped in a forwarding cycle, in flow order.
    pub fn looping_flow_keys(&self) -> Vec<FlowKey> {
        self.trapped.iter().map(|&f| self.keys[f]).collect()
    }

    /// `(generation, deltas folded into it)` per published swap.
    pub fn generation_log(&self) -> &[(u64, usize)] {
        &self.generation_log
    }

    /// Generations published after traffic started (excludes the
    /// initial snapshot).
    pub fn generations_published(&self) -> u64 {
        self.generation_log.len() as u64
    }

    /// Forwarding-rule deltas the control plane emitted so far.
    pub fn rules_applied(&self) -> u64 {
        self.rules_applied
    }

    /// Link failures injected so far.
    pub fn links_failed(&self) -> u64 {
        self.links_failed
    }

    /// Packets between control-plane events.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The live oracle mirror (for stats like imperiled flows).
    pub fn checker(&self) -> &FwdChecker {
        &self.checker
    }

    /// Cross-checks the incremental oracle against the authoritative DV
    /// columns — `Err` names the first divergent destination. The CLI
    /// runs this after every churn run; a failure would mean the delta
    /// stream missed a rule change.
    pub fn oracle_check(&self) -> Result<(), String> {
        for dst in 0..self.dv.graph().node_count() {
            self.checker
                .check_column(dst, &self.dv.forwarding(dst))
                .map_err(|e| format!("dst {dst}: {e}"))?;
        }
        Ok(())
    }
}

/// Compiles every flow's current route by walking the DV forwarding
/// columns from its source: reach the destination → linear route; hit
/// a withdrawn entry → partial linear route (the packet strands
/// mid-network); revisit a node → looping route, cycle split out. One
/// spec per flow, in flow order — the slot-stability invariant.
fn compile_all(dv: &DistanceVector, endpoints: &[(NodeId, NodeId)]) -> Vec<PathSpec> {
    let mut by_dst: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (f, &(_, dst)) in endpoints.iter().enumerate() {
        by_dst.entry(dst).or_default().push(f);
    }
    let mut specs = vec![PathSpec::linear(Vec::new()); endpoints.len()];
    for (&dst, flow_idxs) in &by_dst {
        let column = dv.forwarding(dst);
        for &f in flow_idxs {
            specs[f] = walk_column(&column, endpoints[f].0, dst);
        }
    }
    specs
}

/// Walks `column` (next hops toward `dst`) from `src` into a
/// [`PathSpec`]; see [`compile_all`].
fn walk_column(column: &[Option<NodeId>], src: NodeId, dst: NodeId) -> PathSpec {
    let mut path = vec![src];
    let mut seen: HashMap<NodeId, usize> = HashMap::new();
    seen.insert(src, 0);
    let mut cur = src;
    while cur != dst {
        let Some(next) = column[cur] else {
            return PathSpec::linear(path);
        };
        if let Some(&at) = seen.get(&next) {
            let cycle = path.split_off(at);
            return PathSpec::looping(path, cycle);
        }
        seen.insert(next, path.len());
        path.push(next);
        cur = next;
    }
    PathSpec::linear(path)
}

impl TrafficSource for ChurnSource {
    fn fill(&mut self, max: usize, out: &mut Vec<EnginePacket>) -> usize {
        let mut produced = 0;
        let flow_count = self.keys.len();
        while produced < max && self.emitted < self.total {
            if self.emitted == self.next_event {
                self.next_event += self.interval;
                self.advance();
            }
            let flow = self.next_flow;
            self.next_flow = (self.next_flow + 1) % flow_count;
            out.push(EnginePacket {
                flow: self.keys[flow],
                seq: self.seqs[flow],
                route: RouteId::from_index(flow),
                frame: None,
            });
            self.seqs[flow] += 1;
            self.emitted += 1;
            produced += 1;
        }
        produced
    }

    fn routes(&self) -> Arc<RouteSet> {
        self.table.current()
    }

    fn route_table(&self) -> Option<Arc<EpochRouteTable>> {
        Some(self.table.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unroller_topology::generators::ring;

    fn drain(source: &mut ChurnSource) -> Vec<EnginePacket> {
        let mut out = Vec::new();
        while source.fill(64, &mut out) > 0 {}
        out
    }

    #[test]
    fn parse_round_trips_the_full_spec() {
        let plan = ChurnPlan::parse("rate=400,seed=7,links=2").unwrap();
        assert_eq!(
            plan,
            ChurnPlan {
                rate: 400,
                seed: 7,
                links: 2
            }
        );
        assert_eq!(plan.interval(), 2_500);
        assert_eq!(ChurnPlan::parse("").unwrap(), ChurnPlan::default());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["rate", "rate=zero", "bogus=1", "rate=0", "links=0"] {
            assert!(ChurnPlan::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn emits_total_packets_round_robin_with_per_flow_seqs() {
        let plan = ChurnPlan::parse("rate=1000,seed=3").unwrap();
        let mut source = ChurnSource::new(ring(16), &plan, 4, 5_000);
        let out = drain(&mut source);
        assert_eq!(out.len(), 5_000);
        let mut per_flow: HashMap<FlowKey, Vec<u64>> = HashMap::new();
        for p in &out {
            per_flow.entry(p.flow).or_default().push(p.seq);
        }
        assert_eq!(per_flow.len(), 4);
        for seqs in per_flow.values() {
            assert_eq!(seqs, &(0..seqs.len() as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn churn_publishes_generations_and_traps_flows() {
        // rate=1000 on 20k packets = one control event every 1000
        // packets: several full fail → collapse → restore → heal cycles.
        let plan = ChurnPlan::parse("rate=1000,seed=5,links=3").unwrap();
        let mut source = ChurnSource::new(ring(16), &plan, 8, 20_000);
        drain(&mut source);
        assert!(
            source.generations_published() >= 3,
            "expected several swaps, got {}",
            source.generations_published()
        );
        assert!(source.links_failed() >= 1);
        assert!(source.rules_applied() > 0);
        assert!(
            !source.looping_flow_keys().is_empty(),
            "count-to-infinity must trap at least one flow"
        );
        // Every published generation keeps one route slot per flow.
        assert_eq!(source.table().current().len(), 8);
        // Generations are strictly increasing in the log.
        let log = source.generation_log();
        assert!(log.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn oracle_mirror_tracks_the_authoritative_columns() {
        let plan = ChurnPlan::parse("rate=2000,seed=11,links=4").unwrap();
        let mut source = ChurnSource::new(ring(12), &plan, 6, 30_000);
        drain(&mut source);
        source.oracle_check().expect("checker mirror diverged");
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let plan = ChurnPlan {
                rate: 500,
                seed,
                links: 2,
            };
            let mut source = ChurnSource::new(ring(16), &plan, 4, 10_000);
            let out = drain(&mut source);
            (
                out.iter().map(|p| (p.flow, p.seq)).collect::<Vec<_>>(),
                source.generations_published(),
                source.looping_flow_keys(),
            )
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, run(10).0, "seeds pick different endpoints");
    }
}
