//! Live engine metrics: lock-free counters, fixed-bucket histograms,
//! and per-thread CPU-time measurement.
//!
//! Every hot-path update is a relaxed atomic add on shard-owned
//! structures — workers never take a lock and never contend with the
//! snapshot reader. Histograms use power-of-two buckets (65 of them
//! cover the full `u64` range), so recording is a `leading_zeros` and
//! one atomic increment; good enough to read batch-size and latency
//! shape without per-sample allocation.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one per power of two, plus the zero
/// bucket (`value 0` → bucket 0, `value v > 0` → `64 - v.leading_zeros()`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket (power-of-two) histogram with atomic counters.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A consistent-enough copy for reporting (relaxed reads; exact
    /// once the recording thread has finished).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`buckets[k]` holds values in
    /// `[2^(k-1), 2^k)`; bucket 0 holds zeros).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty — see
    /// [`SimStats::mean_latency`](unroller_sim::SimStats::mean_latency)
    /// for why empty aggregates must not produce NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Upper bound of the bucket containing the q-quantile (0 ≤ q ≤ 1),
    /// e.g. `quantile_bound(0.99)` for a p99 estimate. Power-of-two
    /// buckets make this exact only to within 2×, which is all the
    /// engine claims.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return if k == 0 { 0 } else { 1u64 << k };
            }
        }
        self.max
    }

    /// Serializes the summary (not the raw buckets) for reports.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("count", Json::UInt(self.count));
        obj.set("mean", Json::Float(self.mean()));
        obj.set("p50_bound", Json::UInt(self.quantile_bound(0.50)));
        obj.set("p99_bound", Json::UInt(self.quantile_bound(0.99)));
        obj.set("max", Json::UInt(self.max));
        obj
    }

    /// Folds `other` into this snapshot (identical bucket layouts, so
    /// the merge is per-bucket addition). Lets a report aggregate one
    /// histogram across shards — e.g. the run-wide detection-latency
    /// distribution from the per-shard `detect_latency_ns` snapshots.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Per-shard metrics block, shared between the worker (writer) and the
/// snapshot/report reader. All fields are independently atomic; the
/// worker owns the only hot-path reference.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Packets fully processed (delivered + ttl_dropped + loop_events +
    /// route_errors + frame_errors).
    pub packets: AtomicU64,
    /// Switch-hops executed across all packets.
    pub hops: AtomicU64,
    /// Packets that reached their destination.
    pub delivered: AtomicU64,
    /// Packets dropped on TTL expiry (still looping, undetected).
    pub ttl_dropped: AtomicU64,
    /// Loop events emitted toward the aggregator.
    pub loop_events: AtomicU64,
    /// Batches pulled off this shard's ring.
    pub batches: AtomicU64,
    /// Packets whose path referenced an unknown switch.
    pub route_errors: AtomicU64,
    /// Packets whose wire frame failed validation (too short for the
    /// shim, wrong EtherType) — replayed captures can carry such runts.
    pub frame_errors: AtomicU64,
    /// Batch-size distribution.
    pub batch_sizes: Histogram,
    /// Nanoseconds spent blocked waiting on the ring, per batch.
    pub wait_ns: Histogram,
    /// Nanoseconds spent processing, per batch.
    pub proc_ns: Histogram,
    /// Thread CPU time consumed by this shard's worker (utime+stime),
    /// written once at worker exit; 0 until then or if unavailable.
    pub cpu_ns: AtomicU64,
    /// Worker panics caught and recovered from by the supervisor
    /// (injected or real).
    pub restarts: AtomicU64,
    /// Panics injected by the fault plan (subset of `restarts` unless
    /// a real bug also fired).
    pub panics_injected: AtomicU64,
    /// Packets lost to a panic mid-processing (each panic loses exactly
    /// the packet being processed; the supervisor resumes the batch).
    pub panic_lost: AtomicU64,
    /// Header bit-flips injected by the fault plan.
    pub bitflips_injected: AtomicU64,
    /// Ring stalls injected by the fault plan.
    pub stalls_injected: AtomicU64,
    /// Injected stalls cut short by a watchdog kick.
    pub stalls_aborted: AtomicU64,
    /// Loop events the fault plan dropped before they reached the
    /// aggregator.
    pub events_dropped_injected: AtomicU64,
    /// Loop events the fault plan delivered twice.
    pub events_duplicated_injected: AtomicU64,
    /// Loop-event sends that failed because the aggregator was gone
    /// (tolerated, not panicked on).
    pub events_send_failed: AtomicU64,
    /// CPU core this shard's worker pinned itself to, stored as
    /// `core + 1` (0 means not pinned — pinning off, unsupported OS, or
    /// `sched_setaffinity` refused).
    pub pinned_core: AtomicU64,
    /// Route-table generation swaps this shard observed (reader
    /// refreshes that actually moved generations).
    pub route_swaps_observed: AtomicU64,
    /// Loop events raised against a route generation published *after*
    /// this worker started — live detections, not replay.
    pub loops_after_swap: AtomicU64,
    /// Detection latency: generation publish → the first loop event
    /// this shard raised against that generation (ns, one sample per
    /// generation per shard).
    pub detect_latency_ns: Histogram,
    /// Generated packets settled straight from the per-route memo table
    /// (no pipeline walk).
    pub memo_hits: AtomicU64,
    /// Memo-eligible packets that had to walk because their route slot
    /// held no entry yet (each miss warms the slot).
    pub memo_misses: AtomicU64,
    /// Cache hits that additionally performed the full walk for the
    /// 1-in-N sampling cross-check.
    pub memo_sampled_walks: AtomicU64,
    /// Sampled walks whose verdict or final shim differed from the
    /// cached entry. Must stay 0; CI treats any divergence as fatal.
    pub memo_divergence: AtomicU64,
    /// Highest generation a detection latency was recorded for
    /// (worker-internal dedup state, not exported).
    pub latency_gen: AtomicU64,
}

/// A point-in-time copy of one shard's metrics.
#[derive(Debug, Clone, Default)]
pub struct ShardSnapshot {
    /// Packets fully processed.
    pub packets: u64,
    /// Switch-hops executed.
    pub hops: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// TTL drops.
    pub ttl_dropped: u64,
    /// Loop events emitted.
    pub loop_events: u64,
    /// Batches processed.
    pub batches: u64,
    /// Unknown-switch path errors.
    pub route_errors: u64,
    /// Malformed-frame errors (runt or wrong-EtherType wire bytes).
    pub frame_errors: u64,
    /// Batch-size distribution.
    pub batch_sizes: HistogramSnapshot,
    /// Per-batch ring-wait latency (ns).
    pub wait_ns: HistogramSnapshot,
    /// Per-batch processing latency (ns).
    pub proc_ns: HistogramSnapshot,
    /// Worker thread CPU time (ns); 0 if not yet recorded.
    pub cpu_ns: u64,
    /// Supervisor restarts after worker panics.
    pub restarts: u64,
    /// Fault-plan panics injected.
    pub panics_injected: u64,
    /// Packets lost to panics (accounted, never silent).
    pub panic_lost: u64,
    /// Fault-plan header bit-flips injected.
    pub bitflips_injected: u64,
    /// Fault-plan ring stalls injected.
    pub stalls_injected: u64,
    /// Injected stalls aborted early by the watchdog.
    pub stalls_aborted: u64,
    /// Loop events dropped by the fault plan.
    pub events_dropped_injected: u64,
    /// Loop events duplicated by the fault plan.
    pub events_duplicated_injected: u64,
    /// Loop-event sends that failed post-aggregator-teardown.
    pub events_send_failed: u64,
    /// CPU core the worker pinned itself to; `None` when unpinned.
    pub pinned_core: Option<u64>,
    /// Route-table generation swaps observed.
    pub route_swaps_observed: u64,
    /// Loop events against post-startup route generations.
    pub loops_after_swap: u64,
    /// Swap-publish → first-loop-event latency per generation (ns).
    pub detect_latency_ns: HistogramSnapshot,
    /// Packets settled from the memo table without walking.
    pub memo_hits: u64,
    /// Memo-eligible packets that walked to warm their slot.
    pub memo_misses: u64,
    /// Hits cross-checked with a full walk by the sampler.
    pub memo_sampled_walks: u64,
    /// Cross-checks that disagreed with the cache (must be 0).
    pub memo_divergence: u64,
}

impl ShardMetrics {
    /// Copies every counter and histogram.
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            packets: self.packets.load(Ordering::Relaxed),
            hops: self.hops.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            ttl_dropped: self.ttl_dropped.load(Ordering::Relaxed),
            loop_events: self.loop_events.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            route_errors: self.route_errors.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
            batch_sizes: self.batch_sizes.snapshot(),
            wait_ns: self.wait_ns.snapshot(),
            proc_ns: self.proc_ns.snapshot(),
            cpu_ns: self.cpu_ns.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            panics_injected: self.panics_injected.load(Ordering::Relaxed),
            panic_lost: self.panic_lost.load(Ordering::Relaxed),
            bitflips_injected: self.bitflips_injected.load(Ordering::Relaxed),
            stalls_injected: self.stalls_injected.load(Ordering::Relaxed),
            stalls_aborted: self.stalls_aborted.load(Ordering::Relaxed),
            events_dropped_injected: self.events_dropped_injected.load(Ordering::Relaxed),
            events_duplicated_injected: self.events_duplicated_injected.load(Ordering::Relaxed),
            events_send_failed: self.events_send_failed.load(Ordering::Relaxed),
            pinned_core: self.pinned_core.load(Ordering::Relaxed).checked_sub(1),
            route_swaps_observed: self.route_swaps_observed.load(Ordering::Relaxed),
            loops_after_swap: self.loops_after_swap.load(Ordering::Relaxed),
            detect_latency_ns: self.detect_latency_ns.snapshot(),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
            memo_sampled_walks: self.memo_sampled_walks.load(Ordering::Relaxed),
            memo_divergence: self.memo_divergence.load(Ordering::Relaxed),
        }
    }

    /// Packets this shard has *consumed* off its ring: processed plus
    /// lost-to-panic. The watchdog's progress signal — a shard whose
    /// consumed count stops moving while its ring still holds packets
    /// is stalled, whatever the cause.
    pub fn consumed(&self) -> u64 {
        self.packets.load(Ordering::Relaxed) + self.panic_lost.load(Ordering::Relaxed)
    }
}

impl ShardSnapshot {
    /// This shard's *capacity* in packets per second of CPU time: what
    /// the shard would sustain given a dedicated core. Falls back to the
    /// measured per-batch processing time when thread CPU time is
    /// unavailable. 0.0 when nothing was processed.
    pub fn capacity_pps(&self) -> f64 {
        let busy_ns = if self.cpu_ns > 0 {
            self.cpu_ns
        } else {
            self.proc_ns.sum
        };
        if busy_ns == 0 || self.packets == 0 {
            return 0.0;
        }
        self.packets as f64 * 1e9 / busy_ns as f64
    }

    /// Serializes this shard's row of the report.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("packets", Json::UInt(self.packets));
        obj.set("hops", Json::UInt(self.hops));
        obj.set("delivered", Json::UInt(self.delivered));
        obj.set("ttl_dropped", Json::UInt(self.ttl_dropped));
        obj.set("loop_events", Json::UInt(self.loop_events));
        obj.set("batches", Json::UInt(self.batches));
        obj.set("route_errors", Json::UInt(self.route_errors));
        obj.set("frame_errors", Json::UInt(self.frame_errors));
        obj.set("cpu_ns", Json::UInt(self.cpu_ns));
        let pinned = match self.pinned_core {
            Some(core) => Json::UInt(core),
            None => Json::Null,
        };
        obj.set("pinned_core", pinned);
        obj.set("capacity_pps", Json::Float(self.capacity_pps()));
        obj.set("batch_size", self.batch_sizes.to_json());
        obj.set("wait_ns", self.wait_ns.to_json());
        obj.set("proc_ns", self.proc_ns.to_json());
        obj.set(
            "route_swaps_observed",
            Json::UInt(self.route_swaps_observed),
        );
        obj.set("loops_after_swap", Json::UInt(self.loops_after_swap));
        obj.set("detect_latency_ns", self.detect_latency_ns.to_json());
        let mut memo = Json::object();
        memo.set("hits", Json::UInt(self.memo_hits));
        memo.set("misses", Json::UInt(self.memo_misses));
        memo.set("sampled_walks", Json::UInt(self.memo_sampled_walks));
        memo.set("divergence", Json::UInt(self.memo_divergence));
        obj.set("memo", memo);
        let mut faults = Json::object();
        faults.set("restarts", Json::UInt(self.restarts));
        faults.set("panics_injected", Json::UInt(self.panics_injected));
        faults.set("panic_lost", Json::UInt(self.panic_lost));
        faults.set("bitflips_injected", Json::UInt(self.bitflips_injected));
        faults.set("stalls_injected", Json::UInt(self.stalls_injected));
        faults.set("stalls_aborted", Json::UInt(self.stalls_aborted));
        faults.set(
            "events_dropped_injected",
            Json::UInt(self.events_dropped_injected),
        );
        faults.set(
            "events_duplicated_injected",
            Json::UInt(self.events_duplicated_injected),
        );
        faults.set("events_send_failed", Json::UInt(self.events_send_failed));
        obj.set("faults", faults);
        obj
    }
}

/// CPU time consumed by the *calling thread*, in nanoseconds. `None`
/// off Linux or if procfs is unreadable. This is what makes
/// single-machine scaling runs honest: wall clock conflates shards
/// with time-sharing when shards outnumber cores, whereas per-thread
/// CPU time measures each shard's actual cost.
///
/// Prefers `/proc/thread-self/schedstat` (nanosecond scheduler
/// accounting; immune to the tick-sampling bias that undercounts
/// threads which sleep between batches) and falls back to the
/// utime+stime ticks of `/proc/thread-self/stat`.
pub fn thread_cpu_ns() -> Option<u64> {
    if let Some(ns) = read_schedstat_ns() {
        return Some(ns);
    }
    let stat = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
    // Fields 14 (utime) and 15 (stime), 1-indexed, counted after the
    // parenthesized comm field (which may itself contain spaces).
    let rest = stat.rsplit_once(')')?.1;
    let mut fields = rest.split_ascii_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    // USER_HZ is 100 on every Linux configuration this targets:
    // 10 ms per tick.
    Some((utime + stime) * 10_000_000)
}

/// First field of `/proc/thread-self/schedstat`: nanoseconds this
/// thread has spent on a CPU (requires `CONFIG_SCHED_INFO`, present on
/// all mainstream kernels).
fn read_schedstat_ns() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    stat.split_ascii_whitespace().next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1030);
        assert_eq!(snap.max, 1024);
        assert_eq!(snap.buckets[0], 1); // the zero
        assert_eq!(snap.buckets[1], 1); // 1
        assert_eq!(snap.buckets[2], 2); // 2, 3
        assert_eq!(snap.buckets[11], 1); // 1024
    }

    #[test]
    fn histogram_extremes_do_not_panic() {
        let h = Histogram::default();
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[64], 1);
        assert_eq!(snap.max, u64::MAX);
    }

    #[test]
    fn empty_histogram_mean_is_zero_not_nan() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.mean(), 0.0);
        assert!(!snap.mean().is_nan());
        assert_eq!(snap.quantile_bound(0.99), 0);
    }

    #[test]
    fn quantile_bound_is_within_a_factor_of_two() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        let p50 = snap.quantile_bound(0.50);
        assert!((500..=1024).contains(&p50), "p50 bound {p50}");
        let p99 = snap.quantile_bound(0.99);
        assert!((990..=2048).contains(&p99), "p99 bound {p99}");
    }

    #[test]
    fn shard_snapshot_capacity_prefers_cpu_time() {
        let m = ShardMetrics::default();
        m.packets.store(1_000, Ordering::Relaxed);
        m.proc_ns.record(2_000_000_000); // 2 s of measured proc time
        let from_proc = m.snapshot().capacity_pps();
        assert!((from_proc - 500.0).abs() < 1.0, "{from_proc}");
        m.cpu_ns.store(1_000_000_000, Ordering::Relaxed); // 1 s CPU
        let from_cpu = m.snapshot().capacity_pps();
        assert!((from_cpu - 1_000.0).abs() < 1.0, "{from_cpu}");
    }

    #[test]
    fn empty_shard_capacity_is_zero() {
        assert_eq!(ShardMetrics::default().snapshot().capacity_pps(), 0.0);
    }

    #[test]
    fn thread_cpu_time_is_monotone_on_linux() {
        let Some(before) = thread_cpu_ns() else {
            return; // not on Linux: nothing to check
        };
        // Burn a little CPU so the counter can only move forward.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i.wrapping_mul(0x9e37_79b9));
        }
        std::hint::black_box(acc);
        let after = thread_cpu_ns().unwrap();
        assert!(after >= before, "{after} < {before}");
    }

    #[test]
    fn snapshot_json_has_the_report_fields() {
        let m = ShardMetrics::default();
        m.packets.store(5, Ordering::Relaxed);
        let rendered = m.snapshot().to_json().render();
        for key in ["packets", "capacity_pps", "batch_size", "proc_ns"] {
            assert!(rendered.contains(key), "missing {key} in {rendered}");
        }
    }
}
