//! Shard-scaling experiments: the same traffic replayed across
//! 1..=N shard configurations, with speedups reported against the
//! single-shard baseline.
//!
//! Two throughput columns appear in the report, deliberately:
//!
//! * `wall_pps` — processed packets over wall-clock time. Meaningful
//!   when the host has at least as many free cores as shards.
//! * `capacity_pps` — Σ over shards of packets per second of *thread
//!   CPU time*. This is the scaling signal that survives core-starved
//!   hosts (CI containers pinned to one core time-share the shards:
//!   wall time stays flat while per-shard CPU cost does not lie).
//!
//! The report carries the host's `cpus` so a reader can tell which
//! column is authoritative for a given run. Runs inherit the caller's
//! [`EngineConfig`] wholesale, so batched dispatch, shedding, and
//! core pinning (`pin_cores`) all apply to every shard count swept.

use crate::engine::{Engine, EngineConfig, EngineError, EngineReport};
use crate::json::Json;
use crate::source::TrafficSource;
use unroller_core::SwitchId;

/// One shard-count's outcome.
#[derive(Debug, Clone)]
pub struct ScalingRun {
    /// Shard count of this run.
    pub shards: usize,
    /// The full engine report.
    pub report: EngineReport,
}

/// The complete scaling experiment.
#[derive(Debug, Clone, Default)]
pub struct ScalingReport {
    /// Runs in the order executed (ascending shard counts).
    pub runs: Vec<ScalingRun>,
    /// Host cores (copied from the first run).
    pub cpus: usize,
}

impl ScalingReport {
    /// Capacity speedup of each run relative to the first (baseline)
    /// run; 0.0 placeholders when the baseline measured nothing.
    pub fn capacity_speedups(&self) -> Vec<f64> {
        let base = self
            .runs
            .first()
            .map(|r| r.report.aggregate_capacity_pps())
            .unwrap_or(0.0);
        self.runs
            .iter()
            .map(|r| {
                if base > 0.0 {
                    r.report.aggregate_capacity_pps() / base
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Wall-clock speedups relative to the first run.
    pub fn wall_speedups(&self) -> Vec<f64> {
        let base = self
            .runs
            .first()
            .map(|r| r.report.wall_pps())
            .unwrap_or(0.0);
        self.runs
            .iter()
            .map(|r| {
                if base > 0.0 {
                    r.report.wall_pps() / base
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Serializes the experiment for `results/engine_scaling.json`.
    pub fn to_json(&self) -> Json {
        let capacity_speedups = self.capacity_speedups();
        let wall_speedups = self.wall_speedups();
        let mut obj = Json::object();
        obj.set("cpus", Json::UInt(self.cpus as u64));
        obj.set(
            "shard_counts",
            Json::Array(
                self.runs
                    .iter()
                    .map(|r| Json::UInt(r.shards as u64))
                    .collect(),
            ),
        );
        obj.set(
            "capacity_speedups",
            Json::Array(capacity_speedups.iter().map(|&s| Json::Float(s)).collect()),
        );
        obj.set(
            "wall_speedups",
            Json::Array(wall_speedups.iter().map(|&s| Json::Float(s)).collect()),
        );
        obj.set(
            "runs",
            Json::Array(self.runs.iter().map(|r| r.report.to_json()).collect()),
        );
        obj
    }
}

/// Runs the engine once per shard count in `shard_counts`. The factory
/// must return an identically-seeded fresh source per call so every
/// configuration processes the same traffic.
pub fn run_scaling(
    cfg: &EngineConfig,
    ids: &[SwitchId],
    shard_counts: &[usize],
    mut make_source: impl FnMut() -> Box<dyn TrafficSource>,
) -> Result<ScalingReport, EngineError> {
    let mut runs = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let engine = Engine::new(
            EngineConfig {
                shards,
                ..cfg.clone()
            },
            ids,
        )?;
        let mut source = make_source();
        let report = engine.run(source.as_mut())?;
        runs.push(ScalingRun { shards, report });
    }
    let cpus = runs.first().map(|r| r.report.cpus).unwrap_or(1);
    Ok(ScalingReport { runs, cpus })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::FullPolicy;
    use crate::source::SyntheticSource;

    #[test]
    fn scaling_runs_identical_traffic_per_shard_count() {
        let cfg = EngineConfig {
            full_policy: FullPolicy::Block,
            ..EngineConfig::default()
        };
        let ids: Vec<SwitchId> = (0..32).map(|i| 500 + i).collect();
        let report = run_scaling(&cfg, &ids, &[1, 2, 4], || {
            Box::new(SyntheticSource::new(32, 16, 1_000, 4, 200, 21))
        })
        .unwrap();
        assert_eq!(report.runs.len(), 3);
        for run in &report.runs {
            assert_eq!(run.report.offered, 1_000, "same traffic each run");
            assert!(run.report.accounted());
            assert!(run.report.loop_detected());
            assert_eq!(
                run.report.aggregator.unique_flows, 4,
                "sharding must not change what is detected"
            );
        }
        assert_eq!(report.capacity_speedups()[0], 1.0);
        assert_eq!(report.wall_speedups().len(), 3);
        let rendered = report.to_json().render();
        assert!(rendered.contains("\"shard_counts\":[1,2,4]"));
    }

    #[test]
    fn bad_config_surfaces_the_error() {
        let cfg = EngineConfig {
            batch_size: 0,
            ..EngineConfig::default()
        };
        let err = run_scaling(&cfg, &[1, 2], &[1], || {
            Box::new(SyntheticSource::new(16, 2, 10, 0, 0, 1))
        })
        .unwrap_err();
        assert_eq!(err, EngineError::ZeroBatch);
    }
}
