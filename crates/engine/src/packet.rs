//! Engine packets and the paths they follow.
//!
//! The engine replays *routed paths* rather than re-running a
//! discrete-event simulation per packet: the traffic source resolves
//! each flow's path once (from a [`Simulator`](unroller_sim::Simulator)
//! routing table or a synthetic generator) into a [`PathSpec`], and
//! workers walk that spec hop by hop through the per-switch pipelines.
//! A looping route is stored in finite form — a finite prefix plus a
//! repeating cycle — so a trapped packet can circulate indefinitely
//! (until the detector fires or the TTL expires) without the spec
//! itself being infinite.

use crate::flow::FlowKey;
use std::sync::Arc;
use unroller_topology::NodeId;

/// A flow's forwarding path: `pre` hops followed by the `cycle` hops
/// repeating forever. A loop-free path has an empty cycle. The hop
/// lists are `Arc`-shared, and this is the *spec* form a traffic source
/// builds; before packets flow it is interned once into a
/// [`CompiledRoute`](crate::route::CompiledRoute), so packets carry a
/// [`RouteId`](crate::route::RouteId) instead of cloning these `Arc`s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathSpec {
    /// Hops before the cycle (the full path when loop-free).
    pub pre: Arc<[NodeId]>,
    /// The repeating hop cycle (empty when loop-free).
    pub cycle: Arc<[NodeId]>,
}

impl PathSpec {
    /// A loop-free path.
    pub fn linear(hops: Vec<NodeId>) -> Self {
        PathSpec {
            pre: hops.into(),
            cycle: Arc::from([]),
        }
    }

    /// A path that enters a loop after `pre`.
    pub fn looping(pre: Vec<NodeId>, cycle: Vec<NodeId>) -> Self {
        assert!(!cycle.is_empty(), "a looping path needs a cycle");
        PathSpec {
            pre: pre.into(),
            cycle: cycle.into(),
        }
    }

    /// Parses the output of [`Simulator::route`]: the route vector ends
    /// at the first repeated node's *second* occurrence when the
    /// forwarding state loops, so a trailing repeat is folded into a
    /// cycle. A route without a trailing repeat is loop-free.
    ///
    /// [`Simulator::route`]: unroller_sim::Simulator::route
    pub fn from_route(route: &[NodeId]) -> Self {
        if let Some((&last, body)) = route.split_last() {
            if let Some(j) = body.iter().position(|&n| n == last) {
                return PathSpec::looping(route[..j].to_vec(), body[j..].to_vec());
            }
        }
        PathSpec::linear(route.to_vec())
    }

    /// The node at hop `i` (0-based), or `None` when a loop-free path
    /// has ended (the packet was delivered at the last `pre` hop).
    #[inline]
    pub fn hop(&self, i: usize) -> Option<NodeId> {
        if i < self.pre.len() {
            return Some(self.pre[i]);
        }
        if self.cycle.is_empty() {
            return None;
        }
        Some(self.cycle[(i - self.pre.len()) % self.cycle.len()])
    }

    /// Whether this path traps packets in a loop.
    pub fn loops(&self) -> bool {
        !self.cycle.is_empty()
    }
}

/// One packet moving through the engine. Kept deliberately small (see
/// the size test below): every packet is moved through a ring slot, so
/// the route is a 4-byte interned ID and the optional frame a single
/// boxed pointer-pair.
#[derive(Debug, Clone)]
pub struct EnginePacket {
    /// The packet's flow (determines its shard).
    pub flow: FlowKey,
    /// Per-flow sequence number.
    pub seq: u64,
    /// The interned route this packet will follow, resolved against the
    /// source's [`RouteSet`](crate::route::RouteSet).
    pub route: crate::route::RouteId,
    /// The packet's wire bytes (Ethernet header + Unroller shim +
    /// payload), processed in place by the worker's zero-copy path.
    /// `None` for generated traffic: the worker supplies a reusable
    /// scratch frame, so synthetic packets stay allocation-free.
    /// `Some` for replayed captures, which carry their recorded bytes
    /// (shim state included) through the pipelines.
    pub frame: Option<Box<[u8]>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_path_ends() {
        let p = PathSpec::linear(vec![0, 1, 2]);
        assert!(!p.loops());
        assert_eq!(p.hop(0), Some(0));
        assert_eq!(p.hop(2), Some(2));
        assert_eq!(p.hop(3), None);
    }

    #[test]
    fn looping_path_circulates() {
        let p = PathSpec::looping(vec![0], vec![1, 2, 3]);
        assert!(p.loops());
        let hops: Vec<_> = (0..8).map(|i| p.hop(i).unwrap()).collect();
        assert_eq!(hops, vec![0, 1, 2, 3, 1, 2, 3, 1]);
    }

    #[test]
    fn from_route_parses_trailing_repeat_as_cycle() {
        // Simulator::route() output for a 1↔2 ping-pong entered from 0:
        // [0, 1, 2, 1] — ends at 1's second occurrence.
        let p = PathSpec::from_route(&[0, 1, 2, 1]);
        assert_eq!(&*p.pre, &[0]);
        assert_eq!(&*p.cycle, &[1, 2]);
        let hops: Vec<_> = (0..6).map(|i| p.hop(i).unwrap()).collect();
        assert_eq!(hops, vec![0, 1, 2, 1, 2, 1]);
    }

    #[test]
    fn from_route_self_loop() {
        // Route [3, 3]: node 3 forwards to itself.
        let p = PathSpec::from_route(&[3, 3]);
        assert_eq!(&*p.pre, &[] as &[NodeId]);
        assert_eq!(&*p.cycle, &[3]);
        assert_eq!(p.hop(5), Some(3));
    }

    #[test]
    fn from_route_without_repeat_is_linear() {
        let p = PathSpec::from_route(&[4, 5, 6]);
        assert!(!p.loops());
        assert_eq!(&*p.pre, &[4, 5, 6]);
        let empty = PathSpec::from_route(&[]);
        assert_eq!(empty.hop(0), None);
    }

    #[test]
    fn shared_paths_are_cheap_to_clone() {
        let p = PathSpec::looping(vec![0; 1000], vec![1, 2]);
        let q = p.clone();
        assert!(Arc::ptr_eq(&p.pre, &q.pre), "clone shares the allocation");
    }

    #[test]
    fn engine_packet_stays_ring_slot_sized() {
        // Every packet is moved into and out of a ring slot; keep it to
        // well under a cache line. FlowKey (13 B, padded) + seq (8 B) +
        // RouteId (4 B) + Option<Box<[u8]>> (16 B, niche-optimized).
        assert!(
            std::mem::size_of::<EnginePacket>() <= 48,
            "EnginePacket grew to {} bytes; keep ring slots small",
            std::mem::size_of::<EnginePacket>()
        );
    }
}
