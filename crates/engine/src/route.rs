//! Interned, pre-compiled routes: the per-packet route `Vec` deleted.
//!
//! Before this layer existed every [`EnginePacket`] carried its own
//! [`PathSpec`] — two `Arc` hop lists whose refcounts were bumped by
//! the dispatcher and dropped by a worker on another core, a guaranteed
//! cache-line ping-pong per packet. A traffic source now compiles each
//! *distinct* path once into a [`CompiledRoute`] inside a shared
//! read-only [`RouteSet`], and packets carry a plain [`RouteId`] — four
//! bytes, no refcount, no allocation, no cross-core write traffic.
//!
//! Validity is part of compilation: [`CompiledRoute::first_invalid_hop`]
//! pre-computes, against a given pipeline count, the first hop that
//! would reference an unknown switch. Workers evaluate it once per
//! route at startup, so the hot walk indexes the pipeline array
//! directly instead of re-validating every hop of every packet
//! (`route_errors` becomes a pre-computed cold path).
//!
//! [`EnginePacket`]: crate::packet::EnginePacket

use crate::packet::PathSpec;
use std::collections::HashMap;
use std::sync::Arc;
use unroller_topology::NodeId;

/// A cheap, copyable handle into a [`RouteSet`]. This is what packets
/// carry across the dispatch rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteId(u32);

impl RouteId {
    /// The route's dense index within its [`RouteSet`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A `RouteId` addressing slot `index` of a *slot-stable* set (one
    /// built by [`RouteSet::from_specs`], where route `i` belongs to
    /// flow `i`). Pair with [`RouteSet::get_checked`] when the id may
    /// outlive the set that defined it.
    #[inline]
    pub fn from_index(index: usize) -> RouteId {
        RouteId(u32::try_from(index).expect("more than u32::MAX routes"))
    }
}

/// One distinct forwarding path, compiled once: a finite `pre` hop list
/// followed by a `cycle` repeating forever (empty when loop-free) —
/// the same finite form as [`PathSpec`], but owned inline (`Box`, not
/// `Arc`) because a compiled route is shared *via its set*, never
/// cloned per packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledRoute {
    /// Hops before the cycle (the full path when loop-free).
    pub pre: Box<[NodeId]>,
    /// The repeating hop cycle (empty when loop-free).
    pub cycle: Box<[NodeId]>,
}

impl CompiledRoute {
    fn compile(spec: &PathSpec) -> Self {
        CompiledRoute {
            pre: spec.pre.iter().copied().collect(),
            cycle: spec.cycle.iter().copied().collect(),
        }
    }

    /// The node at hop `i` (0-based), or `None` when a loop-free route
    /// has ended. Same semantics as [`PathSpec::hop`].
    #[inline]
    pub fn hop(&self, i: usize) -> Option<NodeId> {
        if i < self.pre.len() {
            return Some(self.pre[i]);
        }
        if self.cycle.is_empty() {
            return None;
        }
        Some(self.cycle[(i - self.pre.len()) % self.cycle.len()])
    }

    /// Whether this route traps packets in a loop.
    #[inline]
    pub fn loops(&self) -> bool {
        !self.cycle.is_empty()
    }

    /// The first hop index that references a node outside
    /// `0..node_count`, or `None` when every reachable hop is valid.
    /// Walk order is `pre` then the first cycle pass — the first pass
    /// visits every cycle node, so nothing later can fail first.
    pub fn first_invalid_hop(&self, node_count: usize) -> Option<u32> {
        for (i, &node) in self.pre.iter().enumerate() {
            if node >= node_count {
                return Some(i as u32);
            }
        }
        for (j, &node) in self.cycle.iter().enumerate() {
            if node >= node_count {
                return Some((self.pre.len() + j) as u32);
            }
        }
        None
    }
}

/// An immutable set of compiled routes, built by a traffic source and
/// shared (one `Arc` per worker, not per packet) with every shard.
#[derive(Debug, Default)]
pub struct RouteSet {
    routes: Vec<CompiledRoute>,
}

impl RouteSet {
    /// A *slot-stable* set: one route per spec, in order, with **no**
    /// deduplication — `RouteId::from_index(i)` resolves to `specs[i]`.
    /// This is the churn-side contract: every generation published into
    /// an [`EpochRouteTable`](crate::epoch::EpochRouteTable) keeps flow
    /// `i`'s route at slot `i`, so in-flight packets minted under an
    /// older generation still resolve to *their flow's* current route
    /// after a swap.
    pub fn from_specs<'a, I>(specs: I) -> Arc<RouteSet>
    where
        I: IntoIterator<Item = &'a PathSpec>,
    {
        Arc::new(RouteSet {
            routes: specs.into_iter().map(CompiledRoute::compile).collect(),
        })
    }

    /// The route behind `id`. Panics on a foreign `id` — route IDs are
    /// only ever minted by this set's builder, so a miss is a logic bug,
    /// not an input error.
    #[inline]
    pub fn get(&self, id: RouteId) -> &CompiledRoute {
        &self.routes[id.index()]
    }

    /// The route behind `id`, or `None` when the id falls outside this
    /// set — the defensive lookup workers use once route tables can be
    /// swapped mid-run and an id minted against one generation may be
    /// resolved against another.
    #[inline]
    pub fn get_checked(&self, id: RouteId) -> Option<&CompiledRoute> {
        self.routes.get(id.index())
    }

    /// Number of distinct routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the set holds no routes.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Iterates routes in `RouteId` order.
    pub fn iter(&self) -> impl Iterator<Item = &CompiledRoute> {
        self.routes.iter()
    }

    /// Per-route first-invalid-hop table against a pipeline count,
    /// indexed by [`RouteId::index`]; `u32::MAX` marks a fully valid
    /// route. Workers evaluate this once at startup so the packet walk
    /// never re-checks node bounds.
    pub fn first_invalid_hops(&self, node_count: usize) -> Vec<u32> {
        let mut out = Vec::new();
        self.first_invalid_hops_into(node_count, &mut out);
        out
    }

    /// [`RouteSet::first_invalid_hops`] into a caller-owned buffer,
    /// reusing its allocation. Workers rebuild the table on every
    /// observed generation swap; under a `--churn` storm this keeps the
    /// rebuild allocation-free.
    pub fn first_invalid_hops_into(&self, node_count: usize, out: &mut Vec<u32>) {
        out.clear();
        out.extend(
            self.routes
                .iter()
                .map(|r| r.first_invalid_hop(node_count).unwrap_or(u32::MAX)),
        );
    }
}

/// Builds a [`RouteSet`], deduplicating structurally equal paths: ten
/// thousand flows over twenty distinct paths intern twenty routes.
#[derive(Debug, Default)]
pub struct RouteSetBuilder {
    routes: Vec<CompiledRoute>,
    index: HashMap<PathSpec, RouteId>,
}

impl RouteSetBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `spec`, returning the existing ID when an equal path was
    /// interned before.
    pub fn intern(&mut self, spec: &PathSpec) -> RouteId {
        if let Some(&id) = self.index.get(spec) {
            return id;
        }
        let id = RouteId(u32::try_from(self.routes.len()).expect("more than u32::MAX routes"));
        self.routes.push(CompiledRoute::compile(spec));
        self.index.insert(spec.clone(), id);
        id
    }

    /// Finalizes the set. The `Arc` is handed to the engine once per
    /// run and to each worker once per shard — never per packet.
    pub fn build(self) -> Arc<RouteSet> {
        Arc::new(RouteSet {
            routes: self.routes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes_equal_paths() {
        let mut b = RouteSetBuilder::new();
        let a = b.intern(&PathSpec::linear(vec![0, 1, 2]));
        let same = b.intern(&PathSpec::linear(vec![0, 1, 2]));
        let other = b.intern(&PathSpec::looping(vec![0], vec![1, 2]));
        assert_eq!(a, same);
        assert_ne!(a, other);
        let set = b.build();
        assert_eq!(set.len(), 2);
        assert!(!set.get(a).loops());
        assert!(set.get(other).loops());
    }

    #[test]
    fn compiled_hop_matches_pathspec_hop() {
        let specs = [
            PathSpec::linear(vec![4, 5, 6]),
            PathSpec::looping(vec![0], vec![1, 2, 3]),
            PathSpec::looping(vec![], vec![7]),
        ];
        let mut b = RouteSetBuilder::new();
        let ids: Vec<RouteId> = specs.iter().map(|s| b.intern(s)).collect();
        let set = b.build();
        for (spec, &id) in specs.iter().zip(&ids) {
            let route = set.get(id);
            assert_eq!(route.loops(), spec.loops());
            for i in 0..32 {
                assert_eq!(route.hop(i), spec.hop(i), "hop {i}");
            }
        }
    }

    #[test]
    fn first_invalid_hop_is_precomputed() {
        let mut b = RouteSetBuilder::new();
        let ok = b.intern(&PathSpec::linear(vec![0, 1, 2]));
        let bad_pre = b.intern(&PathSpec::linear(vec![0, 99]));
        let bad_cycle = b.intern(&PathSpec::looping(vec![0, 1], vec![2, 99]));
        let set = b.build();
        assert_eq!(set.get(ok).first_invalid_hop(3), None);
        assert_eq!(set.get(bad_pre).first_invalid_hop(3), Some(1));
        assert_eq!(set.get(bad_cycle).first_invalid_hop(3), Some(3));
        // The same route against a bigger node space is valid.
        assert_eq!(set.get(bad_pre).first_invalid_hop(100), None);
        let table = set.first_invalid_hops(3);
        assert_eq!(table, vec![u32::MAX, 1, 3]);
    }

    #[test]
    fn from_specs_is_slot_stable_and_never_dedupes() {
        let specs = [
            PathSpec::linear(vec![0, 1, 2]),
            PathSpec::linear(vec![0, 1, 2]), // duplicate kept: slot == flow
            PathSpec::looping(vec![0], vec![1, 2]),
        ];
        let set = RouteSet::from_specs(&specs);
        assert_eq!(set.len(), 3);
        for (i, spec) in specs.iter().enumerate() {
            let route = set.get_checked(RouteId::from_index(i)).unwrap();
            assert_eq!(route.loops(), spec.loops());
            assert_eq!(route.hop(0), spec.hop(0));
        }
        assert!(set.get_checked(RouteId::from_index(3)).is_none());
    }

    #[test]
    fn route_ids_are_small_and_copyable() {
        assert_eq!(std::mem::size_of::<RouteId>(), 4);
        let mut b = RouteSetBuilder::new();
        let id = b.intern(&PathSpec::linear(vec![0]));
        let copy = id;
        assert_eq!(id, copy);
    }
}
