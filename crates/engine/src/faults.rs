//! Deterministic fault injection: the engine's chaos layer.
//!
//! A [`FaultPlan`] is a *seeded* description of how the world
//! misbehaves during a run: worker panics, ring stalls, on-the-wire
//! header bit-flips (corrupting the Unroller ID/phase fields the
//! detector depends on), dropped and duplicated loop events, and
//! controller heal failures. Every decision is drawn from a per-shard
//! SplitMix64 stream keyed by the plan's seed, so a chaos run is as
//! replayable as a clean one — the same seed injects the same faults
//! in the same per-shard packet positions, CI can assert on the
//! outcome, and a failure found under faults can be re-run under a
//! debugger.
//!
//! The plan is pure configuration; the runtime hooks live in the
//! worker ([`ShardFaults`]), the dispatcher (shedding, quarantine —
//! see [`crate::engine`]), and the post-run heal phase
//! ([`FaultyHealer`]). A plan with every rate at zero is *inactive*
//! and the engine takes its original lock-free fast paths.

use std::fmt;
use std::sync::Once;
use std::time::Duration;
use unroller_dataplane::{HeaderLayout, WireHeader, ETH_HEADER_LEN};

/// How the engine should misbehave during a run. All rates are
/// per-draw probabilities in `[0, 1]`; 0 disables that fault class.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault decision stream.
    pub seed: u64,
    /// Per-packet probability that the worker panics *before*
    /// processing the packet (the packet is lost and counted).
    pub panic_rate: f64,
    /// Per-packet probability that one bit of the packet's Unroller
    /// header is flipped at a random early hop — corruption on the
    /// wire, invisible to the emitting switch.
    pub bitflip_rate: f64,
    /// Per-batch probability that the worker stalls (stops consuming
    /// its ring) for [`FaultPlan::stall_ms`].
    pub stall_rate: f64,
    /// Injected stall duration in milliseconds.
    pub stall_ms: u64,
    /// Per-event probability that a loop event is dropped on its way
    /// to the aggregator.
    pub event_drop_rate: f64,
    /// Per-event probability that a loop event is delivered twice.
    pub event_dup_rate: f64,
    /// Per-attempt probability that a controller heal operation fails.
    pub heal_fail_rate: f64,
    /// Per-shard restart budget: after this many panics a shard stops
    /// processing and drains its ring into the loss counters instead
    /// of looping forever on a poisoned input.
    pub max_restarts: u64,
    /// Panic the watchdog thread as soon as it starts — exercises the
    /// engine's degraded join path (default watchdog summary, run and
    /// accounting preserved).
    pub watchdog_panic: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            panic_rate: 0.0,
            bitflip_rate: 0.0,
            stall_rate: 0.0,
            stall_ms: 20,
            event_drop_rate: 0.0,
            event_dup_rate: 0.0,
            heal_fail_rate: 0.0,
            max_restarts: 64,
            watchdog_panic: false,
        }
    }
}

/// A malformed `--faults` spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

impl FaultPlan {
    /// Whether any fault class can fire. Inactive plans cost the hot
    /// path nothing beyond one branch per batch.
    pub fn active(&self) -> bool {
        self.panic_rate > 0.0
            || self.bitflip_rate > 0.0
            || self.stall_rate > 0.0
            || self.event_drop_rate > 0.0
            || self.event_dup_rate > 0.0
            || self.heal_fail_rate > 0.0
            || self.watchdog_panic
    }

    /// Parses a `--faults` spec: comma-separated `key=value` pairs.
    ///
    /// Keys: `seed`, `panic`, `bitflip`, `stall` (rate, optionally
    /// `rate:ms`), `evdrop`, `evdup`, `healfail`, `restarts`,
    /// `wdpanic` (0/1).
    /// Example: `seed=42,panic=2e-4,bitflip=1e-3,healfail=0.5`.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| FaultSpecError(format!("`{part}` is not key=value")))?;
            let key = key.trim();
            let value = value.trim();
            let rate = |v: &str| -> Result<f64, FaultSpecError> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| FaultSpecError(format!("`{v}` is not a number")))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(FaultSpecError(format!("rate `{v}` outside [0, 1]")));
                }
                Ok(r)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| FaultSpecError(format!("`{value}` is not a seed")))?;
                }
                "panic" => plan.panic_rate = rate(value)?,
                "bitflip" => plan.bitflip_rate = rate(value)?,
                "stall" => {
                    let (r, ms) = match value.split_once(':') {
                        Some((r, ms)) => (
                            r,
                            ms.parse()
                                .map_err(|_| FaultSpecError(format!("`{ms}` is not ms")))?,
                        ),
                        None => (value, plan.stall_ms),
                    };
                    plan.stall_rate = rate(r)?;
                    plan.stall_ms = ms;
                }
                "evdrop" => plan.event_drop_rate = rate(value)?,
                "evdup" => plan.event_dup_rate = rate(value)?,
                "healfail" => plan.heal_fail_rate = rate(value)?,
                "restarts" => {
                    plan.max_restarts = value
                        .parse()
                        .map_err(|_| FaultSpecError(format!("`{value}` is not a count")))?;
                }
                "wdpanic" => {
                    plan.watchdog_panic = match value {
                        "0" => false,
                        "1" => true,
                        _ => return Err(FaultSpecError(format!("`{value}` is not 0 or 1"))),
                    };
                }
                other => return Err(FaultSpecError(format!("unknown key `{other}`"))),
            }
        }
        Ok(plan)
    }

    /// The same plan with every rate multiplied by `mult` (clamped to
    /// 1.0) — the fault-sweep's knob.
    pub fn scaled(&self, mult: f64) -> FaultPlan {
        let scale = |r: f64| (r * mult).clamp(0.0, 1.0);
        FaultPlan {
            panic_rate: scale(self.panic_rate),
            bitflip_rate: scale(self.bitflip_rate),
            stall_rate: scale(self.stall_rate),
            event_drop_rate: scale(self.event_drop_rate),
            event_dup_rate: scale(self.event_dup_rate),
            heal_fail_rate: scale(self.heal_fail_rate),
            ..self.clone()
        }
    }

    /// The fault decision streams for one worker shard. Each fault
    /// class draws from its own stream, so per-packet decisions depend
    /// only on the packet's position in the shard's stream and
    /// per-event decisions only on the event index — never on batch
    /// boundaries, which timing makes nondeterministic.
    pub fn for_shard(&self, shard: usize) -> ShardFaults {
        let shard_seed = self.seed ^ 0xfa17 ^ ((shard as u64) << 32);
        ShardFaults {
            packet_rng: SplitMix64::new(shard_seed ^ 0x01),
            stall_rng: SplitMix64::new(shard_seed ^ 0x02),
            plan: self.clone(),
        }
    }

    /// The loop-event fault stream for one shard (interior-mutable so
    /// the worker can draw fates from inside its supervised section).
    pub fn event_faults(&self, shard: usize) -> EventFaults {
        let shard_seed = self.seed ^ 0xfa17 ^ ((shard as u64) << 32);
        EventFaults {
            state: std::cell::Cell::new(shard_seed ^ 0x03),
            drop_rate: self.event_drop_rate,
            dup_rate: self.event_dup_rate,
        }
    }

    /// The heal-failure decision stream (controller side).
    pub fn healer(&self) -> FaultyHealer {
        FaultyHealer {
            rng: SplitMix64::new(self.seed ^ 0x4ea1),
            fail_rate: self.heal_fail_rate,
        }
    }

    /// Serializes the plan for run reports.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let mut obj = Json::object();
        obj.set("seed", Json::UInt(self.seed));
        obj.set("panic_rate", Json::Float(self.panic_rate));
        obj.set("bitflip_rate", Json::Float(self.bitflip_rate));
        obj.set("stall_rate", Json::Float(self.stall_rate));
        obj.set("stall_ms", Json::UInt(self.stall_ms));
        obj.set("event_drop_rate", Json::Float(self.event_drop_rate));
        obj.set("event_dup_rate", Json::Float(self.event_dup_rate));
        obj.set("heal_fail_rate", Json::Float(self.heal_fail_rate));
        obj.set("max_restarts", Json::UInt(self.max_restarts));
        obj.set("watchdog_panic", Json::Bool(self.watchdog_panic));
        obj
    }
}

/// SplitMix64 — the same mix the engine's RSS hash uses, here as a
/// sequential stream. Tiny, allocation-free, and deterministic, which
/// is the whole point: fault decisions must replay exactly. Public so
/// other fault injectors (the federation message bus) draw from the
/// same replayable stream family instead of reimplementing it.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A stream starting at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, bound)` (`0` when `bound` is 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// True with probability `p` (53-bit uniform draw).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// What (if anything) goes wrong with one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFault {
    /// Nothing; process normally.
    None,
    /// The worker panics before processing this packet.
    Panic,
    /// Flip header bit `bit` once the packet reaches hop `at_hop`.
    BitFlip {
        /// Hop index at which the corruption lands.
        at_hop: u32,
        /// Flat bit index into the header (see [`apply_bitflip`]).
        bit: u32,
    },
}

/// What happens to one loop event on its way to the aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventFate {
    /// Delivered once (the normal case).
    Deliver,
    /// Lost in transit.
    Drop,
    /// Delivered twice.
    Duplicate,
}

/// Per-shard fault decision streams. One per worker, owned by that
/// worker's thread — no synchronization, fully deterministic given
/// (plan seed, shard index, per-shard packet order).
#[derive(Debug, Clone)]
pub struct ShardFaults {
    packet_rng: SplitMix64,
    stall_rng: SplitMix64,
    plan: FaultPlan,
}

impl ShardFaults {
    /// Draws this packet's fate. Panic takes precedence over bit-flips
    /// (a panicking worker never gets to corrupt anything).
    pub fn packet_fault(&mut self) -> PacketFault {
        if self.plan.panic_rate > 0.0 && self.packet_rng.chance(self.plan.panic_rate) {
            return PacketFault::Panic;
        }
        if self.plan.bitflip_rate > 0.0 && self.packet_rng.chance(self.plan.bitflip_rate) {
            // Corrupt early in the walk so the damaged header passes
            // through many switches — the worst case for the detector.
            let at_hop = (self.packet_rng.next_u64() % 8) as u32;
            let bit = (self.packet_rng.next_u64() & 0xffff_ffff) as u32;
            return PacketFault::BitFlip { at_hop, bit };
        }
        PacketFault::None
    }

    /// Draws this batch's stall, if any.
    pub fn batch_stall(&mut self) -> Option<Duration> {
        if self.plan.stall_rate > 0.0 && self.stall_rng.chance(self.plan.stall_rate) {
            Some(Duration::from_millis(self.plan.stall_ms))
        } else {
            None
        }
    }

    /// The shard's restart budget (copied from the plan).
    pub fn max_restarts(&self) -> u64 {
        self.plan.max_restarts
    }
}

/// Loop-event fault stream, interior-mutable so the worker can draw
/// fates through a shared reference from inside its supervised
/// (catch-unwind) section. Single-threaded per shard like everything
/// else worker-owned.
#[derive(Debug)]
pub struct EventFaults {
    state: std::cell::Cell<u64>,
    drop_rate: f64,
    dup_rate: f64,
}

impl EventFaults {
    /// A stream that always delivers (for fault-free runs).
    pub fn inactive() -> Self {
        EventFaults {
            state: std::cell::Cell::new(0),
            drop_rate: 0.0,
            dup_rate: 0.0,
        }
    }

    /// Draws one loop event's fate.
    pub fn fate(&self) -> EventFate {
        if self.drop_rate <= 0.0 && self.dup_rate <= 0.0 {
            return EventFate::Deliver;
        }
        let mut rng = SplitMix64::new(0);
        rng.0 = self.state.get();
        let fate = if rng.chance(self.drop_rate) {
            EventFate::Drop
        } else if rng.chance(self.dup_rate) {
            EventFate::Duplicate
        } else {
            EventFate::Deliver
        };
        self.state.set(rng.0);
        fate
    }
}

/// Flips one bit of a wire header in place. The flat index covers, in
/// order: the 8 `xcnt` bits, the 32 `thcnt` bits, then 32 bits per
/// `swids` slot — i.e. every field a real on-the-wire corruption could
/// touch, Unroller ID storage included. The index wraps modulo the
/// header's bit size so any `u32` is a valid draw.
pub fn apply_bitflip(hdr: &mut WireHeader, bit: u32) {
    let total = 8 + 32 + 32 * hdr.swids.len() as u32;
    let bit = bit % total;
    if bit < 8 {
        hdr.xcnt ^= 1 << bit;
    } else if bit < 40 {
        hdr.thcnt ^= 1 << (bit - 8);
    } else {
        let slot = ((bit - 40) / 32) as usize;
        hdr.swids[slot] ^= 1 << ((bit - 40) % 32);
    }
}

/// Flips one *wire* bit of a frame's Unroller shim in place — the
/// frame-buffer analogue of [`apply_bitflip`] for the zero-copy worker
/// path. The index wraps modulo the shim's on-the-wire bit count
/// (MSB-first within the shim, matching the deparsed layout), so every
/// flip lands on a bit a real transmission error could actually touch —
/// unlike the struct variant, whose logical fields are wider than the
/// wire encoding.
pub fn apply_bitflip_frame(frame: &mut [u8], layout: &HeaderLayout, bit: u32) {
    let total = layout.total_bits();
    if total == 0 || frame.len() < ETH_HEADER_LEN + layout.total_bytes() {
        return; // nothing corruptible (malformed frames already error)
    }
    let bit = (bit % total) as usize;
    frame[ETH_HEADER_LEN + bit / 8] ^= 0x80 >> (bit % 8);
}

/// The marker payload injected panics carry, so the supervision layer
/// (and the process-wide quiet hook) can tell chaos from genuine bugs.
#[derive(Debug, Clone, Copy)]
pub struct InjectedPanic {
    /// The shard that panicked.
    pub shard: usize,
}

/// Panics with an [`InjectedPanic`] payload. Callers must run under
/// the supervised worker loop, which catches and accounts for it.
pub fn inject_panic(shard: usize) -> ! {
    std::panic::panic_any(InjectedPanic { shard })
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// [`InjectedPanic`] payloads and forwards everything else to the
/// previous hook. Without this, a chaos run with thousands of injected
/// panics would bury real diagnostics in backtrace spam.
pub fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<InjectedPanic>() {
                previous(info);
            }
        }));
    });
}

/// Deterministic heal-failure source for the controller's retry path.
#[derive(Debug, Clone)]
pub struct FaultyHealer {
    rng: SplitMix64,
    fail_rate: f64,
}

impl FaultyHealer {
    /// Whether the next heal attempt fails.
    pub fn attempt_fails(&mut self) -> bool {
        self.rng.chance(self.fail_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unroller_core::UnrollerParams;
    use unroller_dataplane::HeaderLayout;

    #[test]
    fn inactive_plan_never_fires() {
        let plan = FaultPlan::default();
        assert!(!plan.active());
        let mut faults = plan.for_shard(0);
        let events = plan.event_faults(0);
        for _ in 0..10_000 {
            assert_eq!(faults.packet_fault(), PacketFault::None);
            assert_eq!(events.fate(), EventFate::Deliver);
            assert!(faults.batch_stall().is_none());
        }
        assert!(!plan.healer().attempt_fails());
    }

    #[test]
    fn decisions_replay_per_seed_and_shard() {
        let plan = FaultPlan {
            seed: 7,
            panic_rate: 0.01,
            bitflip_rate: 0.05,
            event_drop_rate: 0.1,
            event_dup_rate: 0.1,
            ..FaultPlan::default()
        };
        let draw = |shard: usize| {
            let mut f = plan.for_shard(shard);
            let ev = plan.event_faults(shard);
            (0..2_000)
                .map(|_| (f.packet_fault(), ev.fate()))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(0), draw(0), "same seed+shard replays exactly");
        assert_ne!(draw(0), draw(1), "shards get independent streams");
        assert!(
            draw(0).iter().any(|(p, _)| *p == PacketFault::Panic),
            "1% over 2000 draws should fire"
        );
    }

    #[test]
    fn parse_round_trips_the_full_spec() {
        let plan =
            FaultPlan::parse("seed=42,panic=2e-4,bitflip=1e-3,stall=0.01:50,evdrop=0.1,evdup=0.2,healfail=0.5,restarts=9,wdpanic=1")
                .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.panic_rate, 2e-4);
        assert_eq!(plan.bitflip_rate, 1e-3);
        assert_eq!(plan.stall_rate, 0.01);
        assert_eq!(plan.stall_ms, 50);
        assert_eq!(plan.event_drop_rate, 0.1);
        assert_eq!(plan.event_dup_rate, 0.2);
        assert_eq!(plan.heal_fail_rate, 0.5);
        assert_eq!(plan.max_restarts, 9);
        assert!(plan.watchdog_panic);
        assert!(plan.active());
    }

    #[test]
    fn wdpanic_alone_activates_the_plan() {
        let plan = FaultPlan::parse("wdpanic=1").unwrap();
        assert!(plan.watchdog_panic);
        assert!(plan.active());
        assert!(!FaultPlan::parse("wdpanic=0").unwrap().active());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "panic",
            "panic=2",
            "panic=-0.5",
            "mystery=1",
            "stall=0.1:abc",
            "seed=x",
            "wdpanic=yes",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn scaling_multiplies_and_clamps() {
        let base = FaultPlan {
            panic_rate: 0.4,
            heal_fail_rate: 0.9,
            ..FaultPlan::default()
        };
        let doubled = base.scaled(2.0);
        assert_eq!(doubled.panic_rate, 0.8);
        assert_eq!(doubled.heal_fail_rate, 1.0, "clamped");
        assert!(!base.scaled(0.0).active());
    }

    #[test]
    fn bitflip_touches_every_field_class() {
        let layout = HeaderLayout::from_params(&UnrollerParams::default());
        let mut hdr = WireHeader::initial(&layout);
        let clean = hdr.clone();
        apply_bitflip(&mut hdr, 3); // xcnt
        assert_ne!(hdr.xcnt, clean.xcnt);
        let mut hdr = clean.clone();
        apply_bitflip(&mut hdr, 8 + 5); // thcnt
        assert_ne!(hdr.thcnt, clean.thcnt);
        let mut hdr = clean.clone();
        apply_bitflip(&mut hdr, 40 + 1); // first swid slot
        assert_ne!(hdr.swids[0], clean.swids[0]);
        // Flipping the same bit twice restores the header.
        apply_bitflip(&mut hdr, 40 + 1);
        assert_eq!(hdr, clean);
        // Any u32 index is safe (wraps modulo header size).
        let mut hdr = clean.clone();
        apply_bitflip(&mut hdr, u32::MAX);
    }

    #[test]
    fn frame_bitflip_lands_in_the_shim_and_is_reversible() {
        let params = UnrollerParams::default();
        let layout = HeaderLayout::from_params(&params);
        let eth = unroller_dataplane::EthernetHeader::for_hosts(1, 2);
        let frame = unroller_dataplane::parser::build_frame(
            &layout,
            &eth,
            &WireHeader::initial(&layout),
            b"payload",
        );
        for bit in [0u32, 7, 8, 39, layout.total_bits() - 1, u32::MAX] {
            let mut flipped = frame.clone();
            apply_bitflip_frame(&mut flipped, &layout, bit);
            assert_ne!(flipped, frame, "bit {bit} must land");
            assert_eq!(
                flipped[..ETH_HEADER_LEN],
                frame[..ETH_HEADER_LEN],
                "Ethernet header untouched (bit {bit})"
            );
            let shim_end = ETH_HEADER_LEN + layout.total_bytes();
            assert_eq!(
                flipped[shim_end..],
                frame[shim_end..],
                "payload untouched (bit {bit})"
            );
            // XOR is involutive: the same flip restores the frame.
            apply_bitflip_frame(&mut flipped, &layout, bit);
            assert_eq!(flipped, frame);
        }
        // Frames too short to hold a shim are left alone.
        let mut runt = vec![0u8; 8];
        apply_bitflip_frame(&mut runt, &layout, 3);
        assert_eq!(runt, vec![0u8; 8]);
    }

    #[test]
    fn healer_failure_rate_is_roughly_right() {
        let plan = FaultPlan {
            seed: 3,
            heal_fail_rate: 0.5,
            ..FaultPlan::default()
        };
        let mut healer = plan.healer();
        let fails = (0..10_000).filter(|_| healer.attempt_fails()).count();
        assert!((4_000..6_000).contains(&fails), "{fails} of 10000");
    }
}
