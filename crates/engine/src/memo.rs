//! Per-route verdict memoization for generated traffic.
//!
//! For a fixed `(CompiledRoute, UnrollerParams)` pair, the full
//! pipeline walk of a *generated* packet — one that starts from the
//! all-zero initial shim with no injected fault — is a pure function:
//! every packet on the same [`RouteId`](crate::route::RouteId) takes
//! the same hops, flips the same shim bits, and ends with the same
//! verdict. Walking it once and caching `(verdict, final shim bytes)`
//! turns the steady-state per-packet cost from O(hops) pipeline steps
//! into one table lookup (the HashPipe idea applied to routes instead
//! of flows: a compact per-key table maintained entirely on the hot
//! path).
//!
//! Correctness hinges on two invariants the worker enforces:
//!
//! * **Generation keying.** A [`MemoTable`] is only valid for the
//!   route-set generation it was filled under. The worker calls
//!   [`MemoTable::invalidate`] on every epoch route-table swap (at the
//!   batch boundary where [`RouteReader::refresh`](crate::epoch::RouteReader::refresh) observes the new
//!   generation — the same place `first_invalid_hops` is rebuilt), so
//!   a swapped-in route reusing a `RouteId` slot can never serve the
//!   old route's verdict.
//! * **Sampled cross-checking.** With `sample_every = N`, every N-th
//!   cache hit still performs the full walk and compares verdict and
//!   final shim bytes bit-exactly against the cached entry. A mismatch
//!   is counted (`memo_divergence`) and the walked result wins; CI
//!   treats any divergence as fatal. `sample_every = 1` re-walks every
//!   hit (pure paranoia mode, used by the equivalence tests);
//!   `sample_every = 0` disables sampling.
//!
//! Replayed frames (`EnginePacket::frame = Some(..)`) and packets with
//! injected faults never consult the table — their walks are not pure
//! functions of the route.

/// Default sampling rate: cross-check one in this many cache hits.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// The terminal outcome of a route walk, as cached per `RouteId`.
///
/// Mirrors exactly the outcomes the worker's sequential walk can
/// settle a generated packet with; `hops`/`hop` carry the value the
/// worker adds to its hop histogram so memoized accounting is
/// bit-identical to walked accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoVerdict {
    /// The packet reached the end of a loop-free route after `hops`
    /// pipeline steps.
    Delivered {
        /// Pipeline steps taken.
        hops: u32,
    },
    /// The pipeline reported a loop at step `hop` on switch index
    /// `trigger` (an index into the worker's pipeline/ID tables).
    Loop {
        /// Node index whose pipeline reported.
        trigger: u32,
        /// Pipeline step at which the report fired (1-based).
        hop: u32,
    },
    /// The walk hit the worker's `max_hops` TTL after `hops` steps
    /// without a report (a loop the detector has not yet caught, or a
    /// route longer than the TTL).
    TtlDropped {
        /// Pipeline steps taken.
        hops: u32,
    },
    /// The route references a node outside the provisioned pipeline
    /// set, first at hop `hops` (the packet walks up to, not
    /// including, the invalid hop).
    RouteError {
        /// Pipeline steps taken before the invalid hop.
        hops: u32,
    },
    /// A pipeline rejected the frame (cannot happen for generated
    /// scratch frames, but the cache stores whatever the walk
    /// produced). `hops` is the steps *successfully* taken.
    FrameError {
        /// Pipeline steps successfully taken.
        hops: u32,
    },
}

/// Configuration for the memoization layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoConfig {
    /// Cross-check one in this many cache hits with a full walk
    /// (0 = never sample, 1 = re-walk every hit).
    pub sample_every: u64,
}

impl Default for MemoConfig {
    fn default() -> Self {
        MemoConfig {
            sample_every: DEFAULT_SAMPLE_EVERY,
        }
    }
}

/// A per-shard, per-generation cache of route walk outcomes.
///
/// Slots are indexed by `RouteId::index()`; the final shim bytes of
/// all routes live in one flat buffer (`shim_len` bytes per slot) so
/// `invalidate` reuses both allocations across generation swaps — no
/// per-swap `Vec` churn even under `--churn rate=1000`.
#[derive(Debug)]
pub struct MemoTable {
    shim_len: usize,
    sample_every: u64,
    /// Cache hits seen since the last sampled walk (drives
    /// [`MemoTable::should_sample`]).
    hits_since_sample: u64,
    slots: Vec<Option<MemoVerdict>>,
    shims: Vec<u8>,
}

impl MemoTable {
    /// Creates an empty table caching `shim_len`-byte final shims.
    pub fn new(config: MemoConfig, shim_len: usize) -> Self {
        MemoTable {
            shim_len,
            sample_every: config.sample_every,
            hits_since_sample: 0,
            slots: Vec::new(),
            shims: Vec::new(),
        }
    }

    /// Drops every cached entry and resizes for a route set of
    /// `route_count` slots, reusing the existing allocations. Called
    /// once per observed generation swap (and on supervised worker
    /// restart, where cheap re-warming beats reasoning about a
    /// half-poisoned cache).
    pub fn invalidate(&mut self, route_count: usize) {
        self.slots.clear();
        self.slots.resize(route_count, None);
        self.shims.clear();
        self.shims.resize(route_count * self.shim_len, 0);
    }

    /// Number of route slots currently provisioned.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slots are provisioned.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Looks up the cached verdict for a route slot (`None` = miss).
    #[inline]
    pub fn lookup_verdict(&self, index: usize) -> Option<MemoVerdict> {
        self.slots.get(index).copied().flatten()
    }

    /// Whether `shim` matches the cached final shim bytes for `index`
    /// bit-exactly. Only meaningful after a hit on the same slot.
    pub fn shim_matches(&self, index: usize, shim: &[u8]) -> bool {
        let start = index * self.shim_len;
        self.shims[start..start + self.shim_len] == *shim
    }

    /// Records a walk outcome and its final shim bytes for a slot.
    ///
    /// # Panics
    ///
    /// Panics if `shim` is not exactly `shim_len` bytes or `index` is
    /// out of range — both are worker bugs, not data conditions.
    pub fn record(&mut self, index: usize, verdict: MemoVerdict, shim: &[u8]) {
        assert_eq!(shim.len(), self.shim_len, "final shim has wrong length");
        self.slots[index] = Some(verdict);
        let start = index * self.shim_len;
        self.shims[start..start + self.shim_len].copy_from_slice(shim);
    }

    /// Ticks the hit counter and reports whether this hit should be
    /// cross-checked with a full walk (every `sample_every`-th hit;
    /// never when `sample_every` is 0).
    #[inline]
    pub fn should_sample(&mut self) -> bool {
        if self.sample_every == 0 {
            return false;
        }
        self.hits_since_sample += 1;
        if self.hits_since_sample >= self.sample_every {
            self.hits_since_sample = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_misses_until_recorded() {
        let mut t = MemoTable::new(MemoConfig::default(), 4);
        t.invalidate(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup_verdict(0), None);
        assert_eq!(t.lookup_verdict(2), None);
        // Out-of-range lookups are misses, not panics: a packet can
        // carry a RouteId minted before the table grew.
        assert_eq!(t.lookup_verdict(99), None);

        t.record(1, MemoVerdict::Delivered { hops: 5 }, &[1, 2, 3, 4]);
        assert_eq!(
            t.lookup_verdict(1),
            Some(MemoVerdict::Delivered { hops: 5 })
        );
        assert!(t.shim_matches(1, &[1, 2, 3, 4]));
        assert!(!t.shim_matches(1, &[1, 2, 3, 5]));
        // Neighbouring slots are untouched.
        assert_eq!(t.lookup_verdict(0), None);
        assert!(t.shim_matches(0, &[0, 0, 0, 0]));
    }

    #[test]
    fn invalidate_drops_entries_and_reuses_allocations() {
        let mut t = MemoTable::new(MemoConfig::default(), 2);
        t.invalidate(8);
        for i in 0..8 {
            t.record(i, MemoVerdict::Loop { trigger: 1, hop: 3 }, &[9, 9]);
        }
        let slots_cap = t.slots.capacity();
        let shims_cap = t.shims.capacity();
        // Same size: every entry gone, no new allocation.
        t.invalidate(8);
        assert!(t.slots.iter().all(Option::is_none));
        assert!(t.shims.iter().all(|&b| b == 0));
        assert_eq!(t.slots.capacity(), slots_cap);
        assert_eq!(t.shims.capacity(), shims_cap);
        // Shrinking generation: capacity still reused.
        t.invalidate(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.slots.capacity(), slots_cap);
        assert_eq!(t.shims.capacity(), shims_cap);
    }

    #[test]
    fn sampling_fires_every_nth_hit() {
        let mut t = MemoTable::new(MemoConfig { sample_every: 3 }, 1);
        t.invalidate(1);
        let fired: Vec<bool> = (0..9).map(|_| t.should_sample()).collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn sampling_disabled_and_paranoid_modes() {
        let mut off = MemoTable::new(MemoConfig { sample_every: 0 }, 1);
        off.invalidate(1);
        assert!((0..100).all(|_| !off.should_sample()));

        let mut every = MemoTable::new(MemoConfig { sample_every: 1 }, 1);
        every.invalidate(1);
        assert!((0..100).all(|_| every.should_sample()));
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn record_rejects_wrong_shim_length() {
        let mut t = MemoTable::new(MemoConfig::default(), 4);
        t.invalidate(1);
        t.record(0, MemoVerdict::TtlDropped { hops: 64 }, &[0; 3]);
    }
}
