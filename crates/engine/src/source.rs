//! Traffic sources: where engine packets come from.
//!
//! Two implementations cover the CLI's needs: a purely synthetic
//! generator (virtual nodes, no topology required) and a
//! simulator-replay adapter that resolves flows through a
//! [`Simulator`]'s real forwarding tables — including any injected
//! routing loops — and replays the routed paths as packet streams.

use crate::flow::FlowKey;
use crate::packet::{EnginePacket, PathSpec};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use unroller_core::InPacketDetector;
use unroller_sim::Simulator;
use unroller_topology::NodeId;

/// A bounded stream of engine packets. `fill` appends up to `max`
/// packets to `out` and returns how many it produced; 0 means the
/// source is exhausted and the engine should drain and stop.
pub trait TrafficSource {
    /// Produces the next burst of packets.
    fn fill(&mut self, max: usize, out: &mut Vec<EnginePacket>) -> usize;
}

struct FlowStream {
    key: FlowKey,
    healthy: PathSpec,
    poisoned: Option<PathSpec>,
    seq: u64,
}

/// Replays packets along paths a source resolved up front, round-robin
/// across flows, flipping every flow from its healthy path to its
/// poisoned one at a configurable point in the stream — the moment the
/// routing loop "happens" mid-run.
pub struct ReplaySource {
    flows: Vec<FlowStream>,
    emitted: u64,
    total: u64,
    loop_at: Option<u64>,
    next_flow: usize,
}

/// A routing-loop injection for [`ReplaySource::from_sim`].
#[derive(Debug, Clone)]
pub struct LoopInjection {
    /// The forwarding cycle to install (node indices; length ≥ 2, every
    /// consecutive pair adjacent in the topology).
    pub cycle: Vec<NodeId>,
    /// The destination whose forwarding entries get poisoned.
    pub dst: NodeId,
    /// The global packet index at which the poisoned tables take
    /// effect.
    pub at_packet: u64,
}

impl ReplaySource {
    /// Builds a replay source from explicit per-flow paths (used by
    /// tests and the synthetic path below).
    pub fn from_paths(
        flows: Vec<(FlowKey, PathSpec, Option<PathSpec>)>,
        total: u64,
        loop_at: Option<u64>,
    ) -> Self {
        assert!(!flows.is_empty(), "at least one flow");
        ReplaySource {
            flows: flows
                .into_iter()
                .map(|(key, healthy, poisoned)| FlowStream {
                    key,
                    healthy,
                    poisoned,
                    seq: 0,
                })
                .collect(),
            emitted: 0,
            total,
            loop_at,
            next_flow: 0,
        }
    }

    /// Resolves `flow_count` flows through the simulator's forwarding
    /// tables. Endpoint pairs are drawn with `seed`; each flow's healthy
    /// path is recorded first, then (if `inject` is given) the cycle is
    /// installed via [`Simulator::inject_cycle`] and every flow's
    /// post-injection route is recorded as its poisoned path — flows the
    /// loop doesn't touch keep routing cleanly, exactly as in a real
    /// misconfiguration.
    ///
    /// The simulator is left with the poisoned tables installed (call
    /// [`Simulator::recompute_all_routes`] to heal it afterwards).
    pub fn from_sim<D: InPacketDetector>(
        sim: &mut Simulator<D>,
        flow_count: usize,
        total: u64,
        inject: Option<&LoopInjection>,
        seed: u64,
    ) -> Self {
        assert!(flow_count >= 1, "at least one flow");
        let n = sim.graph().node_count();
        assert!(n >= 2, "topology needs at least two nodes");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x656e67);
        let nodes: Vec<NodeId> = (0..n).collect();

        // Endpoints first: half the flows (at least one, when injecting)
        // are pinned to the poisoned destination so the loop actually
        // sees traffic; the rest are random pairs. Flow 0 additionally
        // starts *on* the cycle, guaranteeing at least one flow is
        // trapped regardless of where shortest paths happen to run.
        let mut endpoints = Vec::with_capacity(flow_count);
        for f in 0..flow_count {
            let dst = match inject {
                Some(inj) if f % 2 == 0 => inj.dst,
                // `nodes` covers 0..n with n >= 2 (asserted above), so
                // indexing a drawn position cannot fail.
                _ => nodes[rng.gen_range(0..n)],
            };
            let src = match inject {
                Some(inj) if f == 0 => {
                    assert!(
                        !inj.cycle.contains(&inj.dst),
                        "the poisoned destination cannot sit on the cycle"
                    );
                    inj.cycle[0]
                }
                _ => loop {
                    let s = nodes[rng.gen_range(0..n)];
                    if s != dst {
                        break s;
                    }
                },
            };
            endpoints.push((src, dst));
        }

        let healthy: Vec<PathSpec> = endpoints
            .iter()
            .map(|&(src, dst)| PathSpec::from_route(&sim.route(src, dst)))
            .collect();

        let poisoned: Vec<Option<PathSpec>> = if let Some(inj) = inject {
            sim.inject_cycle(&inj.cycle, inj.dst);
            endpoints
                .iter()
                .map(|&(src, dst)| Some(PathSpec::from_route(&sim.route(src, dst))))
                .collect()
        } else {
            vec![None; flow_count]
        };

        let flows = endpoints
            .iter()
            .zip(healthy)
            .zip(poisoned)
            .enumerate()
            .map(|(f, ((&(src, dst), h), p))| {
                (FlowKey::synthetic(src as u32, dst as u32, f as u32), h, p)
            })
            .collect();
        ReplaySource::from_paths(flows, total, inject.map(|i| i.at_packet))
    }

    /// Whether any flow's active path (post-injection) loops.
    pub fn any_looping_flow(&self) -> bool {
        self.flows
            .iter()
            .any(|f| f.poisoned.as_ref().map(|p| p.loops()).unwrap_or(false))
    }

    /// The flows whose active (post-injection) path loops — the ground
    /// truth a detection-recall measurement compares detections against.
    pub fn looping_flow_keys(&self) -> Vec<FlowKey> {
        self.flows
            .iter()
            .filter(|f| f.poisoned.as_ref().is_some_and(|p| p.loops()))
            .map(|f| f.key)
            .collect()
    }
}

impl TrafficSource for ReplaySource {
    fn fill(&mut self, max: usize, out: &mut Vec<EnginePacket>) -> usize {
        let mut produced = 0;
        let flow_count = self.flows.len();
        while produced < max && self.emitted < self.total {
            let poisoned_now = self.loop_at.map(|at| self.emitted >= at).unwrap_or(false);
            let flow = &mut self.flows[self.next_flow];
            self.next_flow = (self.next_flow + 1) % flow_count;
            let path = match (&flow.poisoned, poisoned_now) {
                (Some(p), true) => p.clone(),
                _ => flow.healthy.clone(),
            };
            out.push(EnginePacket {
                flow: flow.key,
                seq: flow.seq,
                path,
            });
            flow.seq += 1;
            self.emitted += 1;
            produced += 1;
        }
        produced
    }
}

/// A topology-free synthetic source: random loop-free walks over a
/// virtual node space, with a chosen subset of flows switching to a
/// looping path partway through the stream. Useful for benchmarking the
/// engine itself without simulator routing in the picture.
pub struct SyntheticSource {
    inner: ReplaySource,
}

impl SyntheticSource {
    /// `nodes` virtual switches, `flow_count` flows of which every
    /// `loop_every`-th (1-based; 0 disables) becomes looping at packet
    /// index `loop_at`.
    pub fn new(
        nodes: usize,
        flow_count: usize,
        total: u64,
        loop_every: usize,
        loop_at: u64,
        seed: u64,
    ) -> Self {
        assert!(nodes >= 4, "virtual node space too small");
        assert!(flow_count >= 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x73796e);
        let all: Vec<NodeId> = (0..nodes).collect();
        let flows = (0..flow_count)
            .map(|f| {
                let len = rng.gen_range(3..=12.min(nodes));
                let mut pool = all.clone();
                pool.shuffle(&mut rng);
                let walk: Vec<NodeId> = pool[..len].to_vec();
                let healthy = PathSpec::linear(walk.clone());
                let poisoned = if loop_every > 0 && (f + 1) % loop_every == 0 {
                    // Loop between the last two hops of the walk.
                    let cut = walk.len() - 2;
                    Some(PathSpec::looping(
                        walk[..cut].to_vec(),
                        walk[cut..].to_vec(),
                    ))
                } else {
                    None
                };
                // `walk` has at least 3 hops (len drawn from 3..=12).
                let key = FlowKey::synthetic(walk[0] as u32, walk[walk.len() - 1] as u32, f as u32);
                (key, healthy, poisoned)
            })
            .collect();
        SyntheticSource {
            inner: ReplaySource::from_paths(flows, total, Some(loop_at)),
        }
    }

    /// The flows configured to start looping (see
    /// [`ReplaySource::looping_flow_keys`]).
    pub fn looping_flow_keys(&self) -> Vec<FlowKey> {
        self.inner.looping_flow_keys()
    }
}

impl TrafficSource for SyntheticSource {
    fn fill(&mut self, max: usize, out: &mut Vec<EnginePacket>) -> usize {
        self.inner.fill(max, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unroller_sim::{NullDetector, SimConfig};
    use unroller_topology::generators::ring;
    use unroller_topology::ids::assign_sequential_ids;

    fn sim() -> Simulator<NullDetector> {
        let g = ring(8);
        let ids = assign_sequential_ids(8, 100);
        Simulator::new(g, ids, NullDetector, SimConfig::default())
    }

    #[test]
    fn replay_emits_exactly_total_packets() {
        let mut sim = sim();
        let mut src = ReplaySource::from_sim(&mut sim, 4, 100, None, 1);
        let mut out = Vec::new();
        let mut got = 0;
        loop {
            let n = src.fill(7, &mut out);
            if n == 0 {
                break;
            }
            got += n;
        }
        assert_eq!(got, 100);
        assert_eq!(out.len(), 100);
        assert!(out.iter().all(|p| !p.path.loops()), "no injection");
    }

    #[test]
    fn sequences_are_per_flow_and_contiguous() {
        let mut sim = sim();
        let mut src = ReplaySource::from_sim(&mut sim, 3, 30, None, 2);
        let mut out = Vec::new();
        while src.fill(8, &mut out) > 0 {}
        let mut per_flow: std::collections::HashMap<FlowKey, Vec<u64>> = Default::default();
        for p in &out {
            per_flow.entry(p.flow).or_default().push(p.seq);
        }
        assert_eq!(per_flow.len(), 3);
        for seqs in per_flow.values() {
            let expect: Vec<u64> = (0..seqs.len() as u64).collect();
            assert_eq!(seqs, &expect, "per-flow sequence numbers");
        }
    }

    #[test]
    fn injection_switches_flows_to_looping_paths() {
        let mut sim = sim();
        let inj = LoopInjection {
            cycle: vec![1, 2],
            dst: 4,
            at_packet: 20,
        };
        let mut src = ReplaySource::from_sim(&mut sim, 4, 80, Some(&inj), 3);
        assert!(src.any_looping_flow(), "some flow must cross the cycle");
        let mut out = Vec::new();
        while src.fill(16, &mut out) > 0 {}
        assert_eq!(out.len(), 80);
        let early_loops = out[..20].iter().filter(|p| p.path.loops()).count();
        let late_loops = out[20..].iter().filter(|p| p.path.loops()).count();
        assert_eq!(early_loops, 0, "healthy until the injection point");
        assert!(late_loops > 0, "poisoned paths after the injection point");
    }

    #[test]
    fn from_sim_is_deterministic_per_seed() {
        let run = |seed| {
            let mut sim = sim();
            let mut src = ReplaySource::from_sim(&mut sim, 5, 50, None, seed);
            let mut out = Vec::new();
            while src.fill(9, &mut out) > 0 {}
            out.iter().map(|p| (p.flow, p.seq)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds pick different flows");
    }

    #[test]
    fn synthetic_source_marks_looping_flows() {
        let mut src = SyntheticSource::new(64, 10, 200, 2, 50, 11);
        let mut out = Vec::new();
        while src.fill(32, &mut out) > 0 {}
        assert_eq!(out.len(), 200);
        assert!(out[..50].iter().all(|p| !p.path.loops()));
        assert!(out[50..].iter().any(|p| p.path.loops()));
    }
}
