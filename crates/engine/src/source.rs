//! Traffic sources: where engine packets come from.
//!
//! Four implementations cover the CLI's needs: a purely synthetic
//! generator (virtual nodes, no topology required), a
//! simulator-replay adapter that resolves flows through a
//! [`Simulator`]'s real forwarding tables — including any injected
//! routing loops — and replays the routed paths as packet streams, a
//! pcap replay source ([`PcapReplaySource`]) that feeds recorded wire
//! frames straight into the workers' zero-copy path, and a capture tee
//! ([`CaptureSource`]) that records any other source's traffic as a
//! pcap file replayable later.
//!
//! Every source *interns* its paths up front: distinct [`PathSpec`]s
//! are compiled once into a shared [`RouteSet`], and the packets a
//! source emits carry only a copyable [`RouteId`] — emission is a
//! couple of field writes, no allocation and no `Arc` refcount traffic,
//! however many packets a flow sends.

use crate::epoch::EpochRouteTable;
use crate::flow::FlowKey;
use crate::packet::{EnginePacket, PathSpec};
use crate::route::{RouteId, RouteSet, RouteSetBuilder};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use unroller_core::InPacketDetector;
use unroller_dataplane::parser::build_frame;
use unroller_dataplane::{
    EthernetHeader, HeaderLayout, PcapError, PcapReader, PcapWriter, WireHeader, ETHERTYPE_UNROLLER,
};
use unroller_sim::Simulator;
use unroller_topology::NodeId;

/// A bounded stream of engine packets. `fill` appends up to `max`
/// packets to `out` and returns how many it produced; 0 means the
/// source is exhausted and the engine should drain and stop.
pub trait TrafficSource {
    /// Produces the next burst of packets.
    fn fill(&mut self, max: usize, out: &mut Vec<EnginePacket>) -> usize;

    /// The interned route set every emitted packet's
    /// [`EnginePacket::route`] resolves against. The engine fetches it
    /// once per run and shares it read-only with every shard.
    fn routes(&self) -> Arc<RouteSet>;

    /// The live epoch table behind [`TrafficSource::routes`], for
    /// sources that republish route generations mid-run (control-plane
    /// churn). The default `None` tells the engine to wrap the static
    /// route set in a single-generation [`EpochRouteTable`] of its own.
    fn route_table(&self) -> Option<Arc<EpochRouteTable>> {
        None
    }
}

struct FlowStream {
    key: FlowKey,
    healthy: RouteId,
    poisoned: Option<RouteId>,
    seq: u64,
}

/// Replays packets along paths a source resolved up front, round-robin
/// across flows, flipping every flow from its healthy route to its
/// poisoned one at a configurable point in the stream — the moment the
/// routing loop "happens" mid-run.
pub struct ReplaySource {
    routes: Arc<RouteSet>,
    flows: Vec<FlowStream>,
    emitted: u64,
    total: u64,
    loop_at: Option<u64>,
    next_flow: usize,
}

/// A routing-loop injection for [`ReplaySource::from_sim`].
#[derive(Debug, Clone)]
pub struct LoopInjection {
    /// The forwarding cycle to install (node indices; length ≥ 2, every
    /// consecutive pair adjacent in the topology).
    pub cycle: Vec<NodeId>,
    /// The destination whose forwarding entries get poisoned.
    pub dst: NodeId,
    /// The global packet index at which the poisoned tables take
    /// effect.
    pub at_packet: u64,
}

impl ReplaySource {
    /// Builds a replay source from explicit per-flow paths (used by
    /// tests and the synthetic path below), interning each distinct
    /// path once.
    pub fn from_paths(
        flows: Vec<(FlowKey, PathSpec, Option<PathSpec>)>,
        total: u64,
        loop_at: Option<u64>,
    ) -> Self {
        assert!(!flows.is_empty(), "at least one flow");
        let mut builder = RouteSetBuilder::new();
        let flows = flows
            .into_iter()
            .map(|(key, healthy, poisoned)| FlowStream {
                key,
                healthy: builder.intern(&healthy),
                poisoned: poisoned.map(|p| builder.intern(&p)),
                seq: 0,
            })
            .collect();
        ReplaySource {
            routes: builder.build(),
            flows,
            emitted: 0,
            total,
            loop_at,
            next_flow: 0,
        }
    }

    /// Resolves `flow_count` flows through the simulator's forwarding
    /// tables. Endpoint pairs are drawn with `seed`; each flow's healthy
    /// path is recorded first, then (if `inject` is given) the cycle is
    /// installed via [`Simulator::inject_cycle`] and every flow's
    /// post-injection route is recorded as its poisoned path — flows the
    /// loop doesn't touch keep routing cleanly, exactly as in a real
    /// misconfiguration.
    ///
    /// The simulator is left with the poisoned tables installed (call
    /// [`Simulator::recompute_all_routes`] to heal it afterwards).
    pub fn from_sim<D: InPacketDetector>(
        sim: &mut Simulator<D>,
        flow_count: usize,
        total: u64,
        inject: Option<&LoopInjection>,
        seed: u64,
    ) -> Self {
        assert!(flow_count >= 1, "at least one flow");
        let n = sim.graph().node_count();
        assert!(n >= 2, "topology needs at least two nodes");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x656e67);
        let nodes: Vec<NodeId> = (0..n).collect();

        // Endpoints first: half the flows (at least one, when injecting)
        // are pinned to the poisoned destination so the loop actually
        // sees traffic; the rest are random pairs. Flow 0 additionally
        // starts *on* the cycle, guaranteeing at least one flow is
        // trapped regardless of where shortest paths happen to run.
        let mut endpoints = Vec::with_capacity(flow_count);
        for f in 0..flow_count {
            let dst = match inject {
                Some(inj) if f % 2 == 0 => inj.dst,
                // `nodes` covers 0..n with n >= 2 (asserted above), so
                // indexing a drawn position cannot fail.
                _ => nodes[rng.gen_range(0..n)],
            };
            let src = match inject {
                Some(inj) if f == 0 => {
                    assert!(
                        !inj.cycle.contains(&inj.dst),
                        "the poisoned destination cannot sit on the cycle"
                    );
                    inj.cycle[0]
                }
                _ => loop {
                    let s = nodes[rng.gen_range(0..n)];
                    if s != dst {
                        break s;
                    }
                },
            };
            endpoints.push((src, dst));
        }

        let healthy: Vec<PathSpec> = endpoints
            .iter()
            .map(|&(src, dst)| PathSpec::from_route(&sim.route(src, dst)))
            .collect();

        let poisoned: Vec<Option<PathSpec>> = if let Some(inj) = inject {
            sim.inject_cycle(&inj.cycle, inj.dst);
            endpoints
                .iter()
                .map(|&(src, dst)| Some(PathSpec::from_route(&sim.route(src, dst))))
                .collect()
        } else {
            vec![None; flow_count]
        };

        let flows = endpoints
            .iter()
            .zip(healthy)
            .zip(poisoned)
            .enumerate()
            .map(|(f, ((&(src, dst), h), p))| {
                (FlowKey::synthetic(src as u32, dst as u32, f as u32), h, p)
            })
            .collect();
        ReplaySource::from_paths(flows, total, inject.map(|i| i.at_packet))
    }

    /// Whether any flow's active route (post-injection) loops.
    pub fn any_looping_flow(&self) -> bool {
        self.flows
            .iter()
            .any(|f| f.poisoned.is_some_and(|p| self.routes.get(p).loops()))
    }

    /// Every flow's key, in flow order — lets a static forwarding-state
    /// oracle re-derive ground truth independently of the recorded
    /// per-flow routes (synthetic keys encode their endpoints, see
    /// [`FlowKey::synthetic_endpoints`]).
    pub fn flow_keys(&self) -> Vec<FlowKey> {
        self.flows.iter().map(|f| f.key).collect()
    }

    /// The flows whose active (post-injection) route loops — the ground
    /// truth a detection-recall measurement compares detections against.
    pub fn looping_flow_keys(&self) -> Vec<FlowKey> {
        self.flows
            .iter()
            .filter(|f| f.poisoned.is_some_and(|p| self.routes.get(p).loops()))
            .map(|f| f.key)
            .collect()
    }
}

impl TrafficSource for ReplaySource {
    fn fill(&mut self, max: usize, out: &mut Vec<EnginePacket>) -> usize {
        let mut produced = 0;
        let flow_count = self.flows.len();
        while produced < max && self.emitted < self.total {
            let poisoned_now = self.loop_at.map(|at| self.emitted >= at).unwrap_or(false);
            let flow = &mut self.flows[self.next_flow];
            self.next_flow = (self.next_flow + 1) % flow_count;
            // RouteId is Copy: emitting a packet writes four fields and
            // allocates nothing.
            let route = match (flow.poisoned, poisoned_now) {
                (Some(p), true) => p,
                _ => flow.healthy,
            };
            out.push(EnginePacket {
                flow: flow.key,
                seq: flow.seq,
                route,
                frame: None,
            });
            flow.seq += 1;
            self.emitted += 1;
            produced += 1;
        }
        produced
    }

    fn routes(&self) -> Arc<RouteSet> {
        self.routes.clone()
    }
}

/// A topology-free synthetic source: random loop-free walks over a
/// virtual node space, with a chosen subset of flows switching to a
/// looping path partway through the stream. Useful for benchmarking the
/// engine itself without simulator routing in the picture.
pub struct SyntheticSource {
    inner: ReplaySource,
}

impl SyntheticSource {
    /// `nodes` virtual switches, `flow_count` flows of which every
    /// `loop_every`-th (1-based; 0 disables) becomes looping at packet
    /// index `loop_at`.
    pub fn new(
        nodes: usize,
        flow_count: usize,
        total: u64,
        loop_every: usize,
        loop_at: u64,
        seed: u64,
    ) -> Self {
        assert!(nodes >= 4, "virtual node space too small");
        assert!(flow_count >= 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x73796e);
        let all: Vec<NodeId> = (0..nodes).collect();
        let flows = (0..flow_count)
            .map(|f| {
                let len = rng.gen_range(3..=12.min(nodes));
                let mut pool = all.clone();
                pool.shuffle(&mut rng);
                let walk: Vec<NodeId> = pool[..len].to_vec();
                let healthy = PathSpec::linear(walk.clone());
                let poisoned = if loop_every > 0 && (f + 1) % loop_every == 0 {
                    // Loop between the last two hops of the walk.
                    let cut = walk.len() - 2;
                    Some(PathSpec::looping(
                        walk[..cut].to_vec(),
                        walk[cut..].to_vec(),
                    ))
                } else {
                    None
                };
                // `walk` has at least 3 hops (len drawn from 3..=12).
                let key = FlowKey::synthetic(walk[0] as u32, walk[walk.len() - 1] as u32, f as u32);
                (key, healthy, poisoned)
            })
            .collect();
        SyntheticSource {
            inner: ReplaySource::from_paths(flows, total, Some(loop_at)),
        }
    }

    /// The flows configured to start looping (see
    /// [`ReplaySource::looping_flow_keys`]).
    pub fn looping_flow_keys(&self) -> Vec<FlowKey> {
        self.inner.looping_flow_keys()
    }
}

impl TrafficSource for SyntheticSource {
    fn fill(&mut self, max: usize, out: &mut Vec<EnginePacket>) -> usize {
        self.inner.fill(max, out)
    }

    fn routes(&self) -> Arc<RouteSet> {
        self.inner.routes()
    }
}

/// Replays the frames of a classic pcap capture through the engine.
///
/// Each record's Ethernet header identifies the flow: MACs following
/// the [`EthernetHeader::for_hosts`] convention map back to
/// `(src_host, dst_host)` node pairs, and a caller-supplied resolver
/// turns each pair into the path its packets follow (typically a
/// closure over [`Simulator::route`]); each resolved path is interned
/// once, on the pair's first appearance. The recorded bytes ride along
/// on every packet ([`EnginePacket::frame`]) so workers process the
/// captured shim state itself — a frame captured mid-journey resumes
/// exactly where the capture point saw it. Records the engine cannot
/// attribute (runts, foreign MACs, non-Unroller EtherTypes,
/// unresolvable pairs) are counted in
/// [`PcapReplaySource::skipped_frames`], never silently dropped.
#[derive(Debug)]
pub struct PcapReplaySource {
    routes: Arc<RouteSet>,
    packets: std::collections::VecDeque<EnginePacket>,
    skipped: u64,
}

impl PcapReplaySource {
    /// Drains `reader` and resolves every attributable frame into an
    /// engine packet. Fails on a malformed capture (truncated record);
    /// unattributable-but-well-formed records are skipped and counted.
    pub fn from_reader<F>(reader: PcapReader, mut resolve: F) -> Result<Self, PcapError>
    where
        F: FnMut(NodeId, NodeId) -> Option<PathSpec>,
    {
        let mut packets = std::collections::VecDeque::new();
        let mut skipped = 0u64;
        let mut builder = RouteSetBuilder::new();
        // Per endpoint-pair state: flow index (stable per pair, in
        // first-appearance order), interned route, next sequence number.
        let mut flows: HashMap<(u32, u32), (u32, Option<RouteId>, u64)> = HashMap::new();
        for record in reader {
            let record = record?;
            let Some(eth) = EthernetHeader::decode(&record.data) else {
                skipped += 1; // runt: not even an Ethernet header
                continue;
            };
            if eth.ethertype != ETHERTYPE_UNROLLER {
                skipped += 1;
                continue;
            }
            let Some((src, dst)) = eth.host_pair() else {
                skipped += 1; // foreign MACs: no host mapping
                continue;
            };
            let next_index = flows.len() as u32;
            let (flow_index, route, seq) = flows.entry((src, dst)).or_insert_with(|| {
                let route = resolve(src as NodeId, dst as NodeId).map(|path| builder.intern(&path));
                (next_index, route, 0)
            });
            let Some(route) = route else {
                skipped += 1; // resolver knows no route for this pair
                continue;
            };
            packets.push_back(EnginePacket {
                flow: FlowKey::synthetic(src, dst, *flow_index),
                seq: *seq,
                route: *route,
                frame: Some(record.data.into_boxed_slice()),
            });
            *seq += 1;
        }
        Ok(PcapReplaySource {
            routes: builder.build(),
            packets,
            skipped,
        })
    }

    /// Opens and drains a capture file.
    pub fn open<F>(
        path: impl AsRef<std::path::Path>,
        resolve: F,
    ) -> std::io::Result<Result<Self, PcapError>>
    where
        F: FnMut(NodeId, NodeId) -> Option<PathSpec>,
    {
        match PcapReader::open(path)? {
            Ok(reader) => Ok(Self::from_reader(reader, resolve)),
            Err(e) => Ok(Err(e)),
        }
    }

    /// Packets ready to replay.
    pub fn packet_count(&self) -> usize {
        self.packets.len()
    }

    /// Records the capture held that could not be attributed to a flow.
    pub fn skipped_frames(&self) -> u64 {
        self.skipped
    }

    /// The flows whose resolved routes loop (ground truth for recall
    /// when replaying a capture through a looping routing state).
    pub fn looping_flow_keys(&self) -> Vec<FlowKey> {
        let mut seen = std::collections::HashSet::new();
        self.packets
            .iter()
            .filter(|p| self.routes.get(p.route).loops() && seen.insert(p.flow))
            .map(|p| p.flow)
            .collect()
    }
}

impl TrafficSource for Box<dyn TrafficSource> {
    fn fill(&mut self, max: usize, out: &mut Vec<EnginePacket>) -> usize {
        (**self).fill(max, out)
    }

    fn routes(&self) -> Arc<RouteSet> {
        (**self).routes()
    }

    fn route_table(&self) -> Option<Arc<EpochRouteTable>> {
        (**self).route_table()
    }
}

impl TrafficSource for PcapReplaySource {
    fn fill(&mut self, max: usize, out: &mut Vec<EnginePacket>) -> usize {
        let mut produced = 0;
        while produced < max {
            let Some(p) = self.packets.pop_front() else {
                break;
            };
            out.push(p);
            produced += 1;
        }
        produced
    }

    fn routes(&self) -> Arc<RouteSet> {
        self.routes.clone()
    }
}

/// A tee that records another source's traffic as a pcap capture while
/// passing it through unchanged — except each packet also gets its
/// initial wire frame attached, so what the engine processes is exactly
/// what the capture holds. Frames are synthesized at the source host:
/// MACs from the flow's endpoint addresses, an all-zero Unroller shim,
/// and timestamps spaced 1 µs apart in emission order.
pub struct CaptureSource<S> {
    inner: S,
    writer: Arc<Mutex<PcapWriter>>,
    layout: HeaderLayout,
    emitted: u64,
    capture_errors: Arc<AtomicU64>,
}

impl<S: TrafficSource> CaptureSource<S> {
    /// Wraps `inner`, recording into `writer` (shared so the capture
    /// can be written out after the engine consumes the source).
    pub fn new(inner: S, layout: HeaderLayout, writer: Arc<Mutex<PcapWriter>>) -> Self {
        CaptureSource {
            inner,
            writer,
            layout,
            emitted: 0,
            capture_errors: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Packets that passed through uncaptured because the writer mutex
    /// was poisoned. The handle is shared so a caller can keep reading
    /// the count after the engine has consumed the source.
    pub fn error_counter(&self) -> Arc<AtomicU64> {
        self.capture_errors.clone()
    }

    /// Packets this source served without recording them (see
    /// [`CaptureSource::error_counter`]).
    pub fn capture_errors(&self) -> u64 {
        self.capture_errors.load(Ordering::Relaxed)
    }

    /// Unwraps the tee, handing the inner source back (its clone of the
    /// capture writer is dropped) — for post-run access to source state
    /// the [`TrafficSource`] trait doesn't expose.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TrafficSource> TrafficSource for CaptureSource<S> {
    fn fill(&mut self, max: usize, out: &mut Vec<EnginePacket>) -> usize {
        let start = out.len();
        let produced = self.inner.fill(max, out);
        // A panic while another handle held the writer may have left a
        // half-written record behind, so a poisoned mutex means the
        // capture can no longer be trusted. Traffic must keep flowing
        // regardless: count the unrecorded packets and serve them with
        // no frame attached instead of taking the engine down.
        let mut writer = match self.writer.lock() {
            Ok(writer) => writer,
            Err(_) => {
                self.capture_errors
                    .fetch_add((out.len() - start) as u64, Ordering::Relaxed);
                return produced;
            }
        };
        for p in &mut out[start..] {
            let src = p.flow.src_ip & 0x00ff_ffff;
            let dst = p.flow.dst_ip & 0x00ff_ffff;
            let frame = build_frame(
                &self.layout,
                &EthernetHeader::for_hosts(src, dst),
                &WireHeader::initial(&self.layout),
                b"unroller-capture",
            );
            writer.push(self.emitted * 1_000, &frame);
            self.emitted += 1;
            p.frame = Some(frame.into_boxed_slice());
        }
        produced
    }

    fn routes(&self) -> Arc<RouteSet> {
        self.inner.routes()
    }

    fn route_table(&self) -> Option<Arc<EpochRouteTable>> {
        self.inner.route_table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unroller_sim::{NullDetector, SimConfig};
    use unroller_topology::generators::ring;
    use unroller_topology::ids::assign_sequential_ids;

    fn sim() -> Simulator<NullDetector> {
        let g = ring(8);
        let ids = assign_sequential_ids(8, 100);
        Simulator::new(g, ids, NullDetector, SimConfig::default())
    }

    #[test]
    fn replay_emits_exactly_total_packets() {
        let mut sim = sim();
        let mut src = ReplaySource::from_sim(&mut sim, 4, 100, None, 1);
        let routes = src.routes();
        let mut out = Vec::new();
        let mut got = 0;
        loop {
            let n = src.fill(7, &mut out);
            if n == 0 {
                break;
            }
            got += n;
        }
        assert_eq!(got, 100);
        assert_eq!(out.len(), 100);
        assert!(
            out.iter().all(|p| !routes.get(p.route).loops()),
            "no injection"
        );
    }

    #[test]
    fn sequences_are_per_flow_and_contiguous() {
        let mut sim = sim();
        let mut src = ReplaySource::from_sim(&mut sim, 3, 30, None, 2);
        let mut out = Vec::new();
        while src.fill(8, &mut out) > 0 {}
        let mut per_flow: std::collections::HashMap<FlowKey, Vec<u64>> = Default::default();
        for p in &out {
            per_flow.entry(p.flow).or_default().push(p.seq);
        }
        assert_eq!(per_flow.len(), 3);
        for seqs in per_flow.values() {
            let expect: Vec<u64> = (0..seqs.len() as u64).collect();
            assert_eq!(seqs, &expect, "per-flow sequence numbers");
        }
    }

    #[test]
    fn injection_switches_flows_to_looping_paths() {
        let mut sim = sim();
        let inj = LoopInjection {
            cycle: vec![1, 2],
            dst: 4,
            at_packet: 20,
        };
        let mut src = ReplaySource::from_sim(&mut sim, 4, 80, Some(&inj), 3);
        assert!(src.any_looping_flow(), "some flow must cross the cycle");
        let routes = src.routes();
        let mut out = Vec::new();
        while src.fill(16, &mut out) > 0 {}
        assert_eq!(out.len(), 80);
        let loops = |p: &EnginePacket| routes.get(p.route).loops();
        let early_loops = out[..20].iter().filter(|p| loops(p)).count();
        let late_loops = out[20..].iter().filter(|p| loops(p)).count();
        assert_eq!(early_loops, 0, "healthy until the injection point");
        assert!(late_loops > 0, "poisoned paths after the injection point");
    }

    #[test]
    fn from_sim_is_deterministic_per_seed() {
        let run = |seed| {
            let mut sim = sim();
            let mut src = ReplaySource::from_sim(&mut sim, 5, 50, None, seed);
            let mut out = Vec::new();
            while src.fill(9, &mut out) > 0 {}
            out.iter().map(|p| (p.flow, p.seq)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds pick different flows");
    }

    #[test]
    fn synthetic_source_marks_looping_flows() {
        let mut src = SyntheticSource::new(64, 10, 200, 2, 50, 11);
        let routes = src.routes();
        let mut out = Vec::new();
        while src.fill(32, &mut out) > 0 {}
        assert_eq!(out.len(), 200);
        let loops = |p: &EnginePacket| routes.get(p.route).loops();
        assert!(out[..50].iter().all(|p| !loops(p)));
        assert!(out[50..].iter().any(loops));
    }

    #[test]
    fn interning_dedupes_shared_flow_paths() {
        // Two flows on the same healthy path plus one distinct poisoned
        // path: three path handles, two compiled routes.
        let shared = PathSpec::linear(vec![0, 1, 2]);
        let src = ReplaySource::from_paths(
            vec![
                (FlowKey::synthetic(0, 2, 0), shared.clone(), None),
                (
                    FlowKey::synthetic(0, 2, 1),
                    shared,
                    Some(PathSpec::looping(vec![0], vec![1, 2])),
                ),
            ],
            10,
            Some(5),
        );
        assert_eq!(src.routes().len(), 2, "equal paths intern to one route");
    }

    #[test]
    fn capture_then_replay_roundtrips_the_traffic() {
        // Record a simulator replay into an in-memory pcap, then feed
        // that capture back through PcapReplaySource: same packet
        // count, same per-pair flow streams, frames attached.
        let params = unroller_core::UnrollerParams::default();
        let layout = HeaderLayout::from_params(&params);
        let mut sim1 = sim();
        let inner = ReplaySource::from_sim(&mut sim1, 3, 40, None, 5);
        let writer = Arc::new(Mutex::new(PcapWriter::default()));
        let mut captured = CaptureSource::new(inner, layout, writer.clone());
        let mut original = Vec::new();
        while captured.fill(16, &mut original) > 0 {}
        assert_eq!(original.len(), 40);
        assert!(original.iter().all(|p| p.frame.is_some()));
        drop(captured);
        let pcap = Arc::try_unwrap(writer)
            .expect("sole owner after the source is drained")
            .into_inner()
            .unwrap()
            .finish();

        let sim2 = sim();
        let reader = PcapReader::new(pcap).unwrap();
        let mut replay = PcapReplaySource::from_reader(reader, |src, dst| {
            Some(PathSpec::from_route(&sim2.route(src, dst)))
        })
        .unwrap();
        assert_eq!(replay.packet_count(), 40);
        assert_eq!(replay.skipped_frames(), 0);
        let mut replayed = Vec::new();
        while replay.fill(16, &mut replayed) > 0 {}
        assert_eq!(replayed.len(), 40);
        for (a, b) in original.iter().zip(&replayed) {
            assert_eq!(a.frame, b.frame, "recorded bytes survive the roundtrip");
            assert_eq!(
                (a.flow.src_ip, a.flow.dst_ip),
                (b.flow.src_ip, b.flow.dst_ip),
                "endpoints recovered from the MACs"
            );
        }
        // Per-pair sequence numbers are contiguous from zero.
        let mut per_flow: std::collections::HashMap<FlowKey, Vec<u64>> = Default::default();
        for p in &replayed {
            per_flow.entry(p.flow).or_default().push(p.seq);
        }
        for seqs in per_flow.values() {
            assert_eq!(seqs, &(0..seqs.len() as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn poisoned_capture_writer_degrades_instead_of_panicking() {
        // Poison the shared writer from a panicking thread, then keep
        // filling: traffic flows on with no frames attached and every
        // unrecorded packet lands in the capture_errors counter.
        let params = unroller_core::UnrollerParams::default();
        let layout = HeaderLayout::from_params(&params);
        let inner = SyntheticSource::new(16, 4, 40, 0, 0, 9);
        let writer = Arc::new(Mutex::new(PcapWriter::default()));
        let mut captured = CaptureSource::new(inner, layout, writer.clone());
        let errors = captured.error_counter();

        let mut out = Vec::new();
        assert_eq!(captured.fill(10, &mut out), 10);
        assert!(out.iter().all(|p| p.frame.is_some()));
        assert_eq!(captured.capture_errors(), 0);

        let poisoner = writer.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("capture writer dies mid-record");
        })
        .join();
        assert!(writer.lock().is_err(), "mutex must now be poisoned");

        out.clear();
        assert_eq!(captured.fill(10, &mut out), 10, "traffic keeps flowing");
        assert!(
            out.iter().all(|p| p.frame.is_none()),
            "no frames once the capture is untrusted"
        );
        assert_eq!(captured.capture_errors(), 10);
        assert_eq!(errors.load(Ordering::Relaxed), 10, "shared handle agrees");

        out.clear();
        while captured.fill(16, &mut out) > 0 {}
        assert_eq!(captured.capture_errors(), 30, "every later burst counted");
    }

    #[test]
    fn pcap_replay_skips_unattributable_records() {
        let params = unroller_core::UnrollerParams::default();
        let layout = HeaderLayout::from_params(&params);
        let mut w = PcapWriter::default();
        // 1: a healthy Unroller frame between hosts 1 and 2.
        w.push(
            0,
            &build_frame(
                &layout,
                &EthernetHeader::for_hosts(1, 2),
                &WireHeader::initial(&layout),
                b"ok",
            ),
        );
        // 2: a runt (too short for an Ethernet header).
        w.push(1_000, &[0xab; 5]);
        // 3: a non-Unroller EtherType.
        let mut eth = EthernetHeader::for_hosts(1, 2);
        eth.ethertype = 0x0800;
        w.push(
            2_000,
            &build_frame(&layout, &eth, &WireHeader::initial(&layout), b"ipv4"),
        );
        // 4: foreign MACs.
        let mut foreign = build_frame(
            &layout,
            &EthernetHeader::for_hosts(1, 2),
            &WireHeader::initial(&layout),
            b"who",
        );
        foreign[6] = 0xde; // clobber the source MAC's 0x02 prefix
        w.push(3_000, &foreign);
        // 5: a pair the resolver cannot route.
        w.push(
            4_000,
            &build_frame(
                &layout,
                &EthernetHeader::for_hosts(7, 9),
                &WireHeader::initial(&layout),
                b"lost",
            ),
        );
        let reader = PcapReader::new(w.finish()).unwrap();
        let src = PcapReplaySource::from_reader(reader, |s, d| {
            (s == 1 && d == 2).then(|| PathSpec::linear(vec![0, 1]))
        })
        .unwrap();
        assert_eq!(src.packet_count(), 1);
        assert_eq!(src.skipped_frames(), 4);
    }

    #[test]
    fn pcap_replay_surfaces_corrupt_captures() {
        let mut w = PcapWriter::default();
        w.push(0, &[1, 2, 3]);
        let mut bytes = w.finish();
        bytes.truncate(bytes.len() - 1);
        let reader = PcapReader::new(bytes).unwrap();
        let err = PcapReplaySource::from_reader(reader, |_, _| None).unwrap_err();
        assert_eq!(err, PcapError::TruncatedRecord { index: 0 });
    }
}
