//! The shard worker: one thread, one ring, one private copy of every
//! switch pipeline.
//!
//! A worker owns a full clone of the per-switch
//! [`UnrollerPipeline`]s, indexed by node — register files are
//! read-only per packet and small, so cloning them per shard buys
//! completely lock-free packet processing: the hot loop touches only
//! shard-owned state and its (atomic, uncontended) metrics block.
//! Flow affinity is what makes this sound: a flow's packets all arrive
//! on this one shard, so nothing about a packet's journey is ever
//! visible to another thread.

use crate::aggregate::LoopEvent;
use crate::metrics::{thread_cpu_ns, ShardMetrics};
use crate::packet::EnginePacket;
use crate::ring::RingConsumer;
use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Instant;
use unroller_core::SwitchId;
use unroller_dataplane::{HeaderLayout, UnrollerPipeline, WireHeader};

/// Cap on §3.5 membership collection: a real switch would bound the
/// report it punts to the controller; 64 IDs covers any loop a sane
/// TTL lets live.
const MEMBERSHIP_CAP: usize = 64;

/// One shard's processing loop.
pub struct ShardWorker {
    /// Shard index (for event attribution).
    pub shard: usize,
    /// Per-node pipelines, indexed by `NodeId` (`pipelines[node]`).
    pub pipelines: Vec<UnrollerPipeline>,
    /// Switch IDs, indexed the same way.
    pub ids: Arc<[SwitchId]>,
    /// The shim layout shared by all pipelines.
    pub layout: HeaderLayout,
    /// Hop budget per packet (the TTL).
    pub max_hops: u32,
    /// Batch ceiling per ring pull.
    pub batch_size: usize,
    /// This shard's metrics block.
    pub metrics: Arc<ShardMetrics>,
    /// Loop events out (MPSC toward the aggregator).
    pub events: Sender<LoopEvent>,
    /// Packets in (SPSC from the dispatcher).
    pub consumer: RingConsumer<EnginePacket>,
}

impl ShardWorker {
    /// Runs until the dispatcher closes the ring. Consumes the worker.
    pub fn run(self) {
        let cpu_start = thread_cpu_ns();
        let mut batch: Vec<EnginePacket> = Vec::with_capacity(self.batch_size);
        // One scratch header reused across every packet: walking a path
        // allocates nothing.
        let mut scratch = WireHeader::initial(&self.layout);
        loop {
            batch.clear();
            let wait_start = Instant::now();
            if !self.consumer.recv_batch(&mut batch, self.batch_size) {
                break;
            }
            let proc_start = Instant::now();
            self.metrics
                .wait_ns
                .record((proc_start - wait_start).as_nanos() as u64);
            self.metrics.batches.fetch_add(1, Ordering::Relaxed);
            self.metrics.batch_sizes.record(batch.len() as u64);
            for packet in &batch {
                self.process(packet, &mut scratch);
            }
            self.metrics
                .packets
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            self.metrics
                .proc_ns
                .record(proc_start.elapsed().as_nanos() as u64);
        }
        if let (Some(start), Some(end)) = (cpu_start, thread_cpu_ns()) {
            self.metrics
                .cpu_ns
                .store(end.saturating_sub(start), Ordering::Relaxed);
        }
    }

    /// Walks one packet along its path through the per-switch
    /// pipelines.
    fn process(&self, packet: &EnginePacket, scratch: &mut WireHeader) {
        scratch.xcnt = 0;
        scratch.thcnt = 0;
        scratch.swids.fill(0);

        let mut hop = 0u32;
        loop {
            let Some(node) = packet.path.hop(hop as usize) else {
                // Path ended: delivered.
                self.metrics.hops.fetch_add(hop as u64, Ordering::Relaxed);
                self.metrics.delivered.fetch_add(1, Ordering::Relaxed);
                return;
            };
            let Some(pipeline) = self.pipelines.get(node) else {
                self.metrics.hops.fetch_add(hop as u64, Ordering::Relaxed);
                self.metrics.route_errors.fetch_add(1, Ordering::Relaxed);
                return;
            };
            hop += 1;
            if pipeline.process_header(scratch).reported() {
                self.metrics.hops.fetch_add(hop as u64, Ordering::Relaxed);
                self.report_loop(packet, node, hop);
                return;
            }
            if hop >= self.max_hops {
                self.metrics.hops.fetch_add(hop as u64, Ordering::Relaxed);
                self.metrics.ttl_dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    /// §3.5 membership collection: from the trigger switch, keep
    /// following the (known, looping) path recording switch IDs until
    /// the trigger reappears — the recorded set is the loop.
    fn report_loop(&self, packet: &EnginePacket, trigger_node: usize, hop: u32) {
        let trigger = self.ids[trigger_node];
        let mut members = vec![trigger];
        let mut complete = false;
        let mut i = hop as usize; // path index of the hop *after* the trigger
        while members.len() < MEMBERSHIP_CAP {
            let Some(node) = packet.path.hop(i) else {
                break;
            };
            let Some(&id) = self.ids.get(node) else {
                break;
            };
            if id == trigger {
                complete = true;
                break;
            }
            members.push(id);
            i += 1;
        }
        self.metrics.loop_events.fetch_add(1, Ordering::Relaxed);
        // A send can only fail post-aggregator-teardown, which join
        // ordering rules out; ignore rather than panic a worker.
        let _ = self.events.send(LoopEvent {
            flow: packet.flow,
            seq: packet.seq,
            shard: self.shard,
            trigger,
            hop,
            members,
            complete,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use crate::packet::PathSpec;
    use crate::ring::{ring, FullPolicy};
    use unroller_core::UnrollerParams;

    fn worker_fixture(
        nodes: usize,
        max_hops: u32,
    ) -> (
        ShardWorker,
        crate::ring::RingProducer<EnginePacket>,
        std::sync::mpsc::Receiver<LoopEvent>,
    ) {
        let params = UnrollerParams::default();
        let ids: Arc<[SwitchId]> = (0..nodes as u32).map(|i| 100 + i).collect();
        let pipelines = ids
            .iter()
            .map(|&id| UnrollerPipeline::new(id, params).unwrap())
            .collect();
        let (producer, consumer, _) = ring(64, FullPolicy::Block);
        let (ev_tx, ev_rx) = std::sync::mpsc::channel();
        let worker = ShardWorker {
            shard: 0,
            pipelines,
            ids,
            layout: HeaderLayout::from_params(&params),
            max_hops,
            batch_size: 8,
            metrics: Arc::new(ShardMetrics::default()),
            events: ev_tx,
            consumer,
        };
        (worker, producer, ev_rx)
    }

    fn packet(seq: u64, path: PathSpec) -> EnginePacket {
        EnginePacket {
            flow: FlowKey::synthetic(0, 1, 0),
            seq,
            path,
        }
    }

    #[test]
    fn delivers_loop_free_packets() {
        let (worker, producer, ev_rx) = worker_fixture(6, 64);
        let metrics = worker.metrics.clone();
        for seq in 0..10 {
            producer.push(packet(seq, PathSpec::linear(vec![0, 1, 2, 3])));
        }
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.packets, 10);
        assert_eq!(snap.delivered, 10);
        assert_eq!(snap.loop_events, 0);
        assert_eq!(snap.hops, 40);
        assert!(snap.batches >= 2);
        assert!(ev_rx.try_recv().is_err(), "no events for clean traffic");
    }

    #[test]
    fn detects_loop_and_collects_membership() {
        let (worker, producer, ev_rx) = worker_fixture(6, 64);
        let metrics = worker.metrics.clone();
        // 0 → [1, 2, 3] cycling: IDs 101, 102, 103 form the loop.
        producer.push(packet(0, PathSpec::looping(vec![0], vec![1, 2, 3])));
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.loop_events, 1);
        assert_eq!(snap.delivered, 0);
        assert_eq!(snap.ttl_dropped, 0, "detector beats the TTL");
        let event = ev_rx.recv().unwrap();
        assert!(event.complete, "membership closed the cycle");
        let mut members = event.members.clone();
        members.sort_unstable();
        assert_eq!(members, vec![101, 102, 103]);
        assert_eq!(event.hop as u64, snap.hops);
    }

    #[test]
    fn ttl_caps_undetectable_walks() {
        // max_hops below the detection bound (a ping-pong is detected
        // on hop 3, the loop-closing revisit): the TTL fires first.
        let (worker, producer, _ev_rx) = worker_fixture(4, 2);
        let metrics = worker.metrics.clone();
        producer.push(packet(0, PathSpec::looping(vec![], vec![0, 1])));
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.ttl_dropped, 1);
        assert_eq!(snap.loop_events, 0);
        assert_eq!(snap.hops, 2);
    }

    #[test]
    fn unknown_nodes_count_route_errors() {
        let (worker, producer, _ev_rx) = worker_fixture(3, 64);
        let metrics = worker.metrics.clone();
        producer.push(packet(0, PathSpec::linear(vec![0, 99])));
        drop(producer);
        worker.run();
        assert_eq!(metrics.snapshot().route_errors, 1);
    }

    #[test]
    fn cpu_time_recorded_on_linux() {
        let (worker, producer, _ev_rx) = worker_fixture(4, 64);
        let metrics = worker.metrics.clone();
        producer.push(packet(0, PathSpec::linear(vec![0, 1])));
        drop(producer);
        worker.run();
        if thread_cpu_ns().is_some() {
            // Stored (possibly 0 ticks for so little work, but stored).
            let _ = metrics.snapshot().cpu_ns;
        }
    }
}
