//! The shard worker: one thread, one ring, one private copy of every
//! switch pipeline — run under in-thread supervision.
//!
//! A worker owns a full clone of the per-switch
//! [`UnrollerPipeline`]s, indexed by node — register files are
//! read-only per packet and small, so cloning them per shard buys
//! completely lock-free packet processing: the hot loop touches only
//! shard-owned state and its (atomic, uncontended) metrics block.
//! Flow affinity is what makes this sound: a flow's packets all arrive
//! on this one shard, so nothing about a packet's journey is ever
//! visible to another thread.
//!
//! **Wire-frame hot path.** Every hop runs
//! [`UnrollerPipeline::process_frame_in_place`] on a raw byte frame:
//! shim bits are read and rewritten directly in the buffer, with no
//! header decode and no allocation. Generated packets share one
//! shard-owned scratch frame (only its shim bytes are re-zeroed per
//! packet); packets replayed from a capture carry their own recorded
//! bytes and are processed in them, shim state and all.
//!
//! **Interned routes, swappable mid-run.** Packets carry a [`RouteId`]
//! into the current route-table *generation*: the worker holds a
//! [`RouteReader`] onto the engine's
//! [`EpochRouteTable`](crate::epoch::EpochRouteTable) and polls it once
//! per batch — one atomic load when nothing changed, a pointer swap
//! when the control plane published new routes. Route validity is
//! settled once per *generation*: on every swap the worker re-evaluates
//! [`RouteSet::first_invalid_hops`](crate::route::RouteSet::first_invalid_hops)
//! against its own pipeline count, so the per-hop walk compares one
//! integer instead of bounds-checking a map lookup — `route_errors` is
//! decided before the first packet of each generation, and the cached
//! table can never go stale across a swap. Loop events raised against
//! a generation published after startup also record **detection
//! latency** (publish → first loop event on this shard).
//!
//! **Memoized walks.** With memoization enabled
//! ([`EngineConfig::memo`](crate::engine::EngineConfig::memo)), the
//! worker keeps a per-`RouteId` [`MemoTable`] of walk outcomes for
//! generated traffic: the first packet on a route walks and records
//! `(verdict, final shim)`, every later packet settles from the cached
//! entry in one lookup, and a configurable 1-in-N sampler re-walks
//! hits to cross-check the cache bit-exactly (`memo_divergence` counts
//! any mismatch). The table is invalidated alongside `first_invalid_hops`
//! on every generation swap — both caches are keyed to the reader's
//! pinned generation — so a swapped-in route reusing a slot never
//! serves a stale verdict. Replayed frames and faulted packets always
//! take the sequential walk.
//!
//! **Hop-stepped residual walks.** With stepped batching enabled
//! ([`EngineConfig::stepped`](crate::engine::EngineConfig::stepped)),
//! unmemoized generated packets are deferred into a lane pool and
//! advanced one hop-step at a time, [`STEP_LANES`] frames in lockstep
//! ([`process_frame_batch_stepped`]): the per-hop fixed-offset shim
//! accesses of independent frames overlap instead of serializing one
//! packet's walk at a time. Lane outcomes settle through the same
//! accounting as sequential walks.
//!
//! **Supervision.** Packet processing runs inside `catch_unwind`: a
//! panic (injected by a [`FaultPlan`](crate::faults::FaultPlan) or a
//! real bug) loses exactly the packet being processed — counted in
//! `panic_lost`, never silent — and the supervisor restarts the shard
//! in place: fresh pipeline clones from the pristine template, a clean
//! scratch header, and the batch resumed at the next packet. Flows
//! stay pinned to the shard because the ring, and therefore the flow →
//! shard mapping, never changes. A per-shard restart budget bounds
//! pathological inputs: once exhausted the shard drains its ring into
//! the loss counters instead of looping on poison forever.

use crate::aggregate::LoopEvent;
use crate::epoch::RouteReader;
use crate::faults::{
    apply_bitflip_frame, inject_panic, install_quiet_panic_hook, EventFate, EventFaults,
    PacketFault, ShardFaults,
};
use crate::flow::FlowKey;
use crate::memo::{MemoConfig, MemoTable, MemoVerdict};
use crate::metrics::{thread_cpu_ns, ShardMetrics};
use crate::packet::EnginePacket;
use crate::ring::RingConsumer;
use crate::route::CompiledRoute;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};
use unroller_core::{SwitchId, Verdict};
use unroller_dataplane::parser::build_frame;
use unroller_dataplane::pipeline::{process_frame_batch_stepped, STEP_LANES};
use unroller_dataplane::{
    EthernetHeader, FrameError, HeaderLayout, UnrollerPipeline, WireHeader, ETH_HEADER_LEN,
};

/// Cap on §3.5 membership collection: a real switch would bound the
/// report it punts to the controller; 64 IDs covers any loop a sane
/// TTL lets live.
const MEMBERSHIP_CAP: usize = 64;

/// Minimum Ethernet frame length; the scratch frame is padded to it so
/// processing touches realistically sized wire buffers.
const MIN_FRAME_LEN: usize = 64;

/// Sentinel in the per-route validity table: every hop is in bounds.
/// (A real hop index never reaches it — `max_hops` caps walks far
/// below `u32::MAX`.)
const ROUTE_VALID: u32 = u32::MAX;

/// Minimum deferred packets before a drain uses the hop-stepped lane
/// pool; smaller backlogs walk sequentially (the lockstep overhead
/// only pays for itself with enough independent frames in flight).
const STEP_MIN: usize = 8;

/// One shard's processing loop.
pub struct ShardWorker {
    /// Shard index (for event attribution).
    pub shard: usize,
    /// Pristine per-node pipeline template, indexed by `NodeId`
    /// (`pipelines[node]`); shared read-only across shards. Each worker
    /// clones a private working set from it — and re-clones on restart,
    /// discarding whatever a panic left half-written.
    pub pipelines: Arc<Vec<UnrollerPipeline>>,
    /// Switch IDs, indexed the same way.
    pub ids: Arc<[SwitchId]>,
    /// This shard's lock-free handle onto the engine's epoch route
    /// table: every packet's `RouteId` resolves against the generation
    /// the reader is pinned to, re-polled once per batch.
    pub routes: RouteReader,
    /// The shim layout shared by all pipelines.
    pub layout: HeaderLayout,
    /// Hop budget per packet (the TTL).
    pub max_hops: u32,
    /// Batch ceiling per ring pull.
    pub batch_size: usize,
    /// This shard's metrics block.
    pub metrics: Arc<ShardMetrics>,
    /// Loop events out (MPSC toward the aggregator).
    pub events: Sender<LoopEvent>,
    /// Packets in (SPSC from the dispatcher).
    pub consumer: RingConsumer<EnginePacket>,
    /// Packet/stall fault streams; `None` runs fault-free.
    pub faults: Option<ShardFaults>,
    /// Loop-event fault stream (inactive when fault-free).
    pub event_faults: EventFaults,
    /// Watchdog kick flag: set by the watchdog when this shard stops
    /// consuming while its ring holds packets; aborts injected stalls.
    pub kick: Arc<AtomicBool>,
    /// CPU core to pin this shard's thread to
    /// ([`EngineConfig::pin_cores`](crate::engine::EngineConfig::pin_cores));
    /// `None` leaves scheduling to the OS.
    pub pin_core: Option<usize>,
    /// Per-route verdict memoization for generated traffic; `None`
    /// walks every packet.
    pub memo: Option<MemoConfig>,
    /// Advance unmemoized generated walks through the hop-stepped lane
    /// pool instead of one packet at a time.
    pub stepped: bool,
}

/// State of one in-flight lane in the hop-stepped pool: which batch
/// packet it carries and where its walk stands. The frame itself lives
/// at the same index in [`StepLanes::frames`].
#[derive(Debug, Clone, Copy)]
struct LaneState {
    /// Index into the current batch.
    batch_idx: usize,
    /// Pipeline steps completed so far.
    hop: u32,
    /// Cycle cursor (mirrors the sequential walk's wrap-without-modulo).
    cycle_idx: usize,
    /// First invalid hop of this lane's route (`ROUTE_VALID` if none).
    err_hop: u32,
}

/// The hop-stepped lane pool: up to [`STEP_LANES`] generated packets
/// advanced one pipeline step per iteration, in lockstep. All buffers
/// are allocated once per worker and reused across batches.
struct StepLanes {
    /// One wire frame per lane (cloned from the scratch frame; only
    /// shim bytes are ever rewritten). Slots at index ≥ `states.len()`
    /// are free.
    frames: Vec<Vec<u8>>,
    /// In-flight lane states; `states[l]` walks in `frames[l]`.
    states: Vec<LaneState>,
    /// Per-lane node for the current step (parallel to `states`).
    nodes: Vec<usize>,
    /// Per-lane verdicts from the current step.
    verdicts: Vec<Result<Verdict, FrameError>>,
}

impl StepLanes {
    fn new(scratch: &[u8]) -> Self {
        StepLanes {
            frames: vec![scratch.to_vec(); STEP_LANES],
            states: Vec::with_capacity(STEP_LANES),
            nodes: vec![0; STEP_LANES],
            verdicts: Vec::with_capacity(STEP_LANES),
        }
    }

    /// Discards all in-flight lanes (after a panic), returning how many
    /// packets were lost with them.
    fn abandon(&mut self) -> usize {
        let lost = self.states.len();
        self.states.clear();
        lost
    }

    /// Post-restart reset: fresh frames, no in-flight lanes.
    fn reset(&mut self, scratch: &[u8]) {
        self.states.clear();
        for frame in &mut self.frames {
            frame.clear();
            frame.extend_from_slice(scratch);
        }
    }
}

impl ShardWorker {
    /// Runs until the dispatcher closes the ring. Consumes the worker.
    pub fn run(mut self) {
        if let Some(core) = self.pin_core {
            if crate::affinity::pin_to_core(core) {
                self.metrics
                    .pinned_core
                    .store(core as u64 + 1, Ordering::Relaxed);
            }
        }
        if self.faults.is_some() {
            install_quiet_panic_hook();
        }
        let cpu_start = thread_cpu_ns();
        let mut working: Vec<UnrollerPipeline> = (*self.pipelines).clone();
        // Route validity, settled once *per generation*: err_hops[route]
        // is the first hop that would leave the pipeline array
        // (ROUTE_VALID when none does). The hot walk compares against
        // this instead of re-validating every hop of every packet; the
        // table is rebuilt on every route-table swap, keyed to the
        // reader's pinned generation — a swapped-in route reusing a
        // `RouteId` slot with a different hop count must never be
        // judged by the old generation's validity.
        let mut err_hops: Vec<u32> = Vec::new();
        self.routes
            .routes()
            .first_invalid_hops_into(working.len(), &mut err_hops);
        // One scratch wire frame reused across every frameless packet:
        // the zero-copy pipeline rewrites shim bits in this buffer
        // directly, so walking a path allocates nothing.
        let mut scratch = self.scratch_frame();
        // The memo table shares err_hops' invalidation discipline: both
        // are generation-keyed caches rebuilt at the same batch
        // boundary, with allocations reused across swaps.
        let mut memo: Option<MemoTable> = self.memo.map(|cfg| {
            let mut table = MemoTable::new(cfg, self.layout.total_bytes());
            table.invalidate(self.routes.routes().len());
            table
        });
        // Batch indices of generated packets deferred to the stepped
        // drain (unmemoized walks worth overlapping).
        let mut pending: Vec<usize> = Vec::with_capacity(self.batch_size);
        let mut lanes: Option<StepLanes> = self.stepped.then(|| StepLanes::new(&scratch));
        // True while the drain holds a packet it popped but has not yet
        // settled or parked in a lane — the panic handler's precise
        // loss count.
        let drain_popped = Cell::new(false);
        let mut batch: Vec<EnginePacket> = Vec::with_capacity(self.batch_size);
        let mut pfaults: Vec<PacketFault> = Vec::new();
        let mut faults = self.faults.take();
        let restart_budget = faults
            .as_ref()
            .map(|f| f.max_restarts())
            .unwrap_or(u64::MAX);
        let mut restarts = 0u64;
        let mut draining_only = false;
        loop {
            batch.clear();
            let wait_start = Instant::now();
            if !self.consumer.recv_batch(&mut batch, self.batch_size) {
                break;
            }
            // Batch boundary: adopt any newly published route-table
            // generation. One atomic load when nothing changed; on a
            // swap, re-key the validity cache to the new generation.
            if self.routes.refresh().is_some() {
                self.routes
                    .routes()
                    .first_invalid_hops_into(working.len(), &mut err_hops);
                if let Some(table) = memo.as_mut() {
                    // Same keying as err_hops: entries from the old
                    // generation must never answer for a reused slot.
                    table.invalidate(self.routes.routes().len());
                }
                self.metrics
                    .route_swaps_observed
                    .fetch_add(1, Ordering::Relaxed);
            }
            let proc_start = Instant::now();
            self.metrics
                .wait_ns
                .record((proc_start - wait_start).as_nanos() as u64);
            self.metrics.batches.fetch_add(1, Ordering::Relaxed);
            self.metrics.batch_sizes.record(batch.len() as u64);
            if draining_only {
                // Restart budget exhausted: consume and count, never
                // process — the ring must still drain so the dispatcher
                // does not wedge on a Block policy.
                self.metrics
                    .panic_lost
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                continue;
            }
            if let Some(f) = faults.as_mut() {
                if let Some(stall) = f.batch_stall() {
                    self.stall(stall);
                }
                // Per-packet fates are drawn up front, in packet order,
                // so decisions replay identically whatever the batch
                // boundaries or panic interleavings turn out to be.
                pfaults.clear();
                pfaults.extend((0..batch.len()).map(|_| f.packet_fault()));
            }
            let cursor = Cell::new(0usize);
            let mut lost_in_batch = 0u64;
            loop {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    while cursor.get() < batch.len() {
                        let i = cursor.get();
                        cursor.set(i + 1);
                        let fault = pfaults.get(i).copied().unwrap_or(PacketFault::None);
                        self.process(
                            &working,
                            &err_hops,
                            &mut batch[i],
                            &mut scratch,
                            fault,
                            &mut memo,
                            &mut pending,
                            i,
                        );
                    }
                    self.drain_pending(
                        &working,
                        &err_hops,
                        &batch,
                        &mut scratch,
                        &mut memo,
                        &mut pending,
                        lanes.as_mut(),
                        &drain_popped,
                    );
                }));
                if outcome.is_ok() {
                    break;
                }
                // Account for what the panic took down: the packet at
                // cursor-1 when it fired in the per-packet loop, plus
                // (in the stepped drain) every in-flight lane packet
                // and any packet popped but not yet settled — all were
                // already removed from `pending`, so none is retried
                // (a deterministic poison packet must not loop the
                // restart budget away).
                let lanes_lost = lanes.as_mut().map_or(0, StepLanes::abandon) as u64;
                let popped_lost = u64::from(drain_popped.replace(false));
                let lost_now = (lanes_lost + popped_lost).max(1);
                lost_in_batch += lost_now;
                self.metrics
                    .panic_lost
                    .fetch_add(lost_now, Ordering::Relaxed);
                if restarts >= restart_budget {
                    let rest = (batch.len() - cursor.get()) as u64 + pending.len() as u64;
                    pending.clear();
                    lost_in_batch += rest;
                    self.metrics.panic_lost.fetch_add(rest, Ordering::Relaxed);
                    draining_only = true;
                    break;
                }
                restarts += 1;
                self.metrics.restarts.fetch_add(1, Ordering::Relaxed);
                // Restart: re-pin this shard's flows to fresh pipeline
                // clones and a clean scratch frame, discarding any
                // state the panic left half-written. The memo table is
                // re-warmed from scratch — cheaper than proving a
                // half-recorded entry impossible.
                working = (*self.pipelines).clone();
                scratch = self.scratch_frame();
                if let Some(table) = memo.as_mut() {
                    table.invalidate(self.routes.routes().len());
                }
                if let Some(pool) = lanes.as_mut() {
                    pool.reset(&scratch);
                }
            }
            self.metrics
                .packets
                .fetch_add(batch.len() as u64 - lost_in_batch, Ordering::Relaxed);
            self.metrics
                .proc_ns
                .record(proc_start.elapsed().as_nanos() as u64);
        }
        if let (Some(start), Some(end)) = (cpu_start, thread_cpu_ns()) {
            self.metrics
                .cpu_ns
                .store(end.saturating_sub(start), Ordering::Relaxed);
        }
    }

    /// An injected ring stall: stop consuming for `dur`, polling the
    /// watchdog's kick flag so a detected stall is cut short — the
    /// recovery path the watchdog exists to exercise.
    fn stall(&self, dur: Duration) {
        self.metrics.stalls_injected.fetch_add(1, Ordering::Relaxed);
        let deadline = Instant::now() + dur;
        while Instant::now() < deadline {
            if self.kick.swap(false, Ordering::Relaxed) {
                self.metrics.stalls_aborted.fetch_add(1, Ordering::Relaxed);
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// The reusable wire buffer for frameless packets: a minimum-size
    /// Ethernet frame carrying an all-zero shim. Only the shim bytes
    /// are reset between packets (the rest is never written).
    fn scratch_frame(&self) -> Vec<u8> {
        let mut frame = build_frame(
            &self.layout,
            &EthernetHeader::for_hosts(0, 1),
            &WireHeader::initial(&self.layout),
            &[],
        );
        frame.resize(frame.len().max(MIN_FRAME_LEN), 0);
        frame
    }

    /// Processes one packet, applying this packet's injected fault (if
    /// any). Generated packets (no frame, no fault) — whose walk is a
    /// pure function of their route — go through the memo fast path
    /// and/or the stepped drain when enabled; packets that carry
    /// recorded wire bytes or an injected fault always take the
    /// sequential walk in their own state.
    #[allow(clippy::too_many_arguments)]
    fn process(
        &self,
        pipelines: &[UnrollerPipeline],
        err_hops: &[u32],
        packet: &mut EnginePacket,
        scratch: &mut [u8],
        fault: PacketFault,
        memo: &mut Option<MemoTable>,
        pending: &mut Vec<usize>,
        index: usize,
    ) {
        let flip = match fault {
            PacketFault::Panic => {
                self.metrics.panics_injected.fetch_add(1, Ordering::Relaxed);
                inject_panic(self.shard);
            }
            PacketFault::BitFlip { at_hop, bit } => Some((at_hop, bit)),
            PacketFault::None => None,
        };
        if packet.frame.is_none() && flip.is_none() {
            if self.stepped {
                // Defer unmemoized walks to the lane drain; memo hits
                // settle right here on the fast path.
                let hit = memo
                    .as_ref()
                    .is_some_and(|m| m.lookup_verdict(packet.route.index()).is_some());
                if !hit {
                    pending.push(index);
                    return;
                }
            }
            self.process_generated(pipelines, err_hops, packet, scratch, memo);
            return;
        }
        let frame: &mut [u8] = match packet.frame.as_mut() {
            Some(frame) => frame,
            None => {
                // Source host emits an all-zero shim: reset just those
                // bytes; everything else in the scratch frame is inert.
                let shim_end = ETH_HEADER_LEN + self.layout.total_bytes();
                scratch[ETH_HEADER_LEN..shim_end].fill(0);
                scratch
            }
        };
        // Checked lookup: a `RouteId` is minted against some generation
        // but resolved against the reader's *current* one, which may be
        // smaller. An out-of-range id is a route error, not a panic.
        let Some(route) = self.routes.routes().get_checked(packet.route) else {
            self.metrics.route_errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        // In bounds: `err_hops` is rebuilt from the same generation the
        // checked lookup just succeeded against.
        let err_hop = err_hops[packet.route.index()];
        let end = self.walk_frame(pipelines, route, err_hop, frame, flip);
        self.settle(packet.flow, packet.seq, route, end);
    }

    /// The memo-aware path for a generated packet: settle from the
    /// cached verdict on a hit (re-walking 1-in-N hits to cross-check),
    /// walk-and-record on a miss, plain walk with no table.
    fn process_generated(
        &self,
        pipelines: &[UnrollerPipeline],
        err_hops: &[u32],
        packet: &EnginePacket,
        scratch: &mut [u8],
        memo: &mut Option<MemoTable>,
    ) {
        let Some(route) = self.routes.routes().get_checked(packet.route) else {
            self.metrics.route_errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let idx = packet.route.index();
        let err_hop = err_hops[idx];
        let shim_end = ETH_HEADER_LEN + self.layout.total_bytes();
        if let Some(table) = memo.as_mut() {
            if let Some(cached) = table.lookup_verdict(idx) {
                self.metrics.memo_hits.fetch_add(1, Ordering::Relaxed);
                if table.should_sample() {
                    // Sampled cross-check: the full walk stays the
                    // ground truth — compare verdict and final shim
                    // bit-exactly, count any mismatch, and settle from
                    // the walked result so divergence can never leak
                    // into the run's accounting.
                    self.metrics
                        .memo_sampled_walks
                        .fetch_add(1, Ordering::Relaxed);
                    let end = self.walk_generated(pipelines, route, err_hop, scratch);
                    if end != cached || !table.shim_matches(idx, &scratch[ETH_HEADER_LEN..shim_end])
                    {
                        self.metrics.memo_divergence.fetch_add(1, Ordering::Relaxed);
                    }
                    self.settle(packet.flow, packet.seq, route, end);
                } else {
                    self.settle(packet.flow, packet.seq, route, cached);
                }
                return;
            }
            self.metrics.memo_misses.fetch_add(1, Ordering::Relaxed);
            let end = self.walk_generated(pipelines, route, err_hop, scratch);
            table.record(idx, end, &scratch[ETH_HEADER_LEN..shim_end]);
            self.settle(packet.flow, packet.seq, route, end);
            return;
        }
        let end = self.walk_generated(pipelines, route, err_hop, scratch);
        self.settle(packet.flow, packet.seq, route, end);
    }

    /// Resets the scratch shim to the generated-traffic initial state
    /// (all zeros) and walks it.
    fn walk_generated(
        &self,
        pipelines: &[UnrollerPipeline],
        route: &CompiledRoute,
        err_hop: u32,
        scratch: &mut [u8],
    ) -> MemoVerdict {
        let shim_end = ETH_HEADER_LEN + self.layout.total_bytes();
        scratch[ETH_HEADER_LEN..shim_end].fill(0);
        self.walk_frame(pipelines, route, err_hop, scratch, None)
    }

    /// Walks one wire frame along its interned route through the
    /// per-switch pipelines — shim bits rewritten in place at every hop
    /// via the zero-copy frame path — and returns the terminal outcome
    /// without touching any outcome counter ([`Self::settle`] does
    /// that), so walked, memoized, and lane-stepped packets all settle
    /// through identical accounting.
    fn walk_frame(
        &self,
        pipelines: &[UnrollerPipeline],
        route: &CompiledRoute,
        err_hop: u32,
        frame: &mut [u8],
        mut flip: Option<(u32, u32)>,
    ) -> MemoVerdict {
        let mut hop = 0u32;
        // Cycle cursor: walks `pre` by hop index, then wraps through
        // `cycle` without a per-hop modulo.
        let mut cycle_idx = 0usize;
        loop {
            let node = if (hop as usize) < route.pre.len() {
                route.pre[hop as usize]
            } else if route.cycle.is_empty() {
                // Route ended: delivered.
                return MemoVerdict::Delivered { hops: hop };
            } else {
                let n = route.cycle[cycle_idx];
                cycle_idx += 1;
                if cycle_idx == route.cycle.len() {
                    cycle_idx = 0;
                }
                n
            };
            if hop == err_hop {
                // Pre-computed per generation: this hop leaves the
                // pipeline array. Everything before it was processed
                // normally.
                return MemoVerdict::RouteError { hops: hop };
            }
            // In bounds by the err_hop pre-check (hop < err_hop here).
            let pipeline = &pipelines[node];
            if let Some((at_hop, bit)) = flip {
                if hop == at_hop {
                    // On-the-wire corruption between two switches.
                    apply_bitflip_frame(frame, &self.layout, bit);
                    self.metrics
                        .bitflips_injected
                        .fetch_add(1, Ordering::Relaxed);
                    flip = None;
                }
            }
            hop += 1;
            match pipeline.process_frame_in_place(frame) {
                Ok(verdict) if verdict.reported() => {
                    return MemoVerdict::Loop {
                        trigger: node as u32,
                        hop,
                    };
                }
                Ok(_) => {}
                Err(_) => {
                    // A malformed frame fails identically at every
                    // switch: count it once and terminate the walk.
                    return MemoVerdict::FrameError { hops: hop - 1 };
                }
            }
            if hop >= self.max_hops {
                return MemoVerdict::TtlDropped { hops: hop };
            }
        }
    }

    /// Applies a walk outcome to the shard's books: hop and outcome
    /// counters, plus §3.5 membership collection and the loop event for
    /// detections. The single accounting sink for every walk flavour —
    /// a memoized verdict is indistinguishable from a walked one here.
    fn settle(&self, flow: FlowKey, seq: u64, route: &CompiledRoute, end: MemoVerdict) {
        match end {
            MemoVerdict::Delivered { hops } => {
                self.metrics.hops.fetch_add(hops as u64, Ordering::Relaxed);
                self.metrics.delivered.fetch_add(1, Ordering::Relaxed);
            }
            MemoVerdict::Loop { trigger, hop } => {
                self.metrics.hops.fetch_add(hop as u64, Ordering::Relaxed);
                self.report_loop(flow, seq, route, trigger as usize, hop);
            }
            MemoVerdict::TtlDropped { hops } => {
                self.metrics.hops.fetch_add(hops as u64, Ordering::Relaxed);
                self.metrics.ttl_dropped.fetch_add(1, Ordering::Relaxed);
            }
            MemoVerdict::RouteError { hops } => {
                self.metrics.hops.fetch_add(hops as u64, Ordering::Relaxed);
                self.metrics.route_errors.fetch_add(1, Ordering::Relaxed);
            }
            MemoVerdict::FrameError { hops } => {
                self.metrics.hops.fetch_add(hops as u64, Ordering::Relaxed);
                self.metrics.frame_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drains the deferred generated packets at the end of a batch:
    /// through the hop-stepped lane pool when the backlog is deep
    /// enough to overlap, sequentially otherwise. Every packet is
    /// popped from `pending` *before* it is processed, so a poisonous
    /// packet is lost (and counted) rather than retried forever.
    #[allow(clippy::too_many_arguments)]
    fn drain_pending(
        &self,
        pipelines: &[UnrollerPipeline],
        err_hops: &[u32],
        batch: &[EnginePacket],
        scratch: &mut [u8],
        memo: &mut Option<MemoTable>,
        pending: &mut Vec<usize>,
        lanes: Option<&mut StepLanes>,
        drain_popped: &Cell<bool>,
    ) {
        if pending.is_empty() {
            return;
        }
        if let Some(pool) = lanes {
            if pending.len() >= STEP_MIN {
                self.drain_lanes(
                    pipelines,
                    err_hops,
                    batch,
                    memo,
                    pending,
                    pool,
                    drain_popped,
                );
                return;
            }
        }
        while let Some(i) = pending.pop() {
            drain_popped.set(true);
            self.process_generated(pipelines, err_hops, &batch[i], scratch, memo);
            drain_popped.set(false);
        }
    }

    /// The hop-stepped drain: keep up to [`STEP_LANES`] unmemoized
    /// walks in flight, advancing all of them one pipeline step per
    /// iteration so their fixed-offset shim accesses overlap, refilling
    /// retired lanes from the backlog. Packets whose route got warmed
    /// by an earlier lane settle straight from the memo at refill.
    ///
    /// A non-injected panic mid-step abandons every in-flight lane
    /// (all counted in `panic_lost` by the supervisor); injected panics
    /// never reach the lane pool, so fault-plan accounting keeps its
    /// one-packet-per-panic precision.
    #[allow(clippy::too_many_arguments)]
    fn drain_lanes(
        &self,
        pipelines: &[UnrollerPipeline],
        err_hops: &[u32],
        batch: &[EnginePacket],
        memo: &mut Option<MemoTable>,
        pending: &mut Vec<usize>,
        lanes: &mut StepLanes,
        drain_popped: &Cell<bool>,
    ) {
        let shim_end = ETH_HEADER_LEN + self.layout.total_bytes();
        let routes = self.routes.routes();
        loop {
            // Refill free lanes from the backlog.
            while lanes.states.len() < STEP_LANES {
                let Some(i) = pending.pop() else { break };
                drain_popped.set(true);
                let packet = &batch[i];
                let Some(route) = routes.get_checked(packet.route) else {
                    self.metrics.route_errors.fetch_add(1, Ordering::Relaxed);
                    drain_popped.set(false);
                    continue;
                };
                let idx = packet.route.index();
                if let Some(table) = memo.as_mut() {
                    if let Some(cached) = table.lookup_verdict(idx) {
                        // An earlier lane on the same route already
                        // warmed the slot mid-drain.
                        self.metrics.memo_hits.fetch_add(1, Ordering::Relaxed);
                        if table.should_sample() {
                            self.metrics
                                .memo_sampled_walks
                                .fetch_add(1, Ordering::Relaxed);
                            let slot = lanes.states.len();
                            let frame = &mut lanes.frames[slot];
                            frame[ETH_HEADER_LEN..shim_end].fill(0);
                            let end = self.walk_frame(pipelines, route, err_hops[idx], frame, None);
                            if end != cached
                                || !table.shim_matches(idx, &frame[ETH_HEADER_LEN..shim_end])
                            {
                                self.metrics.memo_divergence.fetch_add(1, Ordering::Relaxed);
                            }
                            self.settle(packet.flow, packet.seq, route, end);
                        } else {
                            self.settle(packet.flow, packet.seq, route, cached);
                        }
                        drain_popped.set(false);
                        continue;
                    }
                    self.metrics.memo_misses.fetch_add(1, Ordering::Relaxed);
                }
                let slot = lanes.states.len();
                lanes.frames[slot][ETH_HEADER_LEN..shim_end].fill(0);
                lanes.states.push(LaneState {
                    batch_idx: i,
                    hop: 0,
                    cycle_idx: 0,
                    err_hop: err_hops[idx],
                });
                drain_popped.set(false);
            }
            if lanes.states.is_empty() {
                return;
            }
            // Phase A (descending, so a swap_remove pulls in a lane
            // that was already handled): pick each lane's next node,
            // retiring walks that end without a pipeline step.
            let mut l = lanes.states.len();
            while l > 0 {
                l -= 1;
                let st = &mut lanes.states[l];
                let route = routes
                    .get_checked(batch[st.batch_idx].route)
                    .expect("validated at lane entry; generation is fixed within a batch");
                let node = if (st.hop as usize) < route.pre.len() {
                    route.pre[st.hop as usize]
                } else if route.cycle.is_empty() {
                    let hops = st.hop;
                    self.retire_lane(batch, memo, lanes, l, MemoVerdict::Delivered { hops });
                    continue;
                } else {
                    let n = route.cycle[st.cycle_idx];
                    st.cycle_idx += 1;
                    if st.cycle_idx == route.cycle.len() {
                        st.cycle_idx = 0;
                    }
                    n
                };
                if st.hop == st.err_hop {
                    let hops = st.hop;
                    self.retire_lane(batch, memo, lanes, l, MemoVerdict::RouteError { hops });
                    continue;
                }
                lanes.nodes[l] = node;
            }
            let active = lanes.states.len();
            if active == 0 {
                continue;
            }
            // Phase B: one pipeline step for every lane, in lockstep.
            lanes.verdicts.clear();
            process_frame_batch_stepped(
                pipelines,
                &mut lanes.frames[..active],
                &lanes.nodes[..active],
                &mut lanes.verdicts,
            );
            // Phase C (descending, same swap_remove argument): apply
            // the step outcomes.
            let mut l = active;
            while l > 0 {
                l -= 1;
                lanes.states[l].hop += 1;
                let hop = lanes.states[l].hop;
                match lanes.verdicts[l] {
                    Ok(verdict) if verdict.reported() => {
                        let trigger = lanes.nodes[l] as u32;
                        self.retire_lane(batch, memo, lanes, l, MemoVerdict::Loop { trigger, hop });
                    }
                    Ok(_) => {
                        if hop >= self.max_hops {
                            self.retire_lane(
                                batch,
                                memo,
                                lanes,
                                l,
                                MemoVerdict::TtlDropped { hops: hop },
                            );
                        }
                    }
                    Err(_) => {
                        self.retire_lane(
                            batch,
                            memo,
                            lanes,
                            l,
                            MemoVerdict::FrameError { hops: hop - 1 },
                        );
                    }
                }
            }
        }
    }

    /// Retires lane `l` with outcome `end`: record it in the memo
    /// (final shim bytes exactly as a sequential scratch walk would
    /// leave them — a reporting hop does not rewrite the frame), settle
    /// the packet, and compact the pool with a swap-remove that keeps
    /// `frames`/`nodes` parallel to `states`.
    fn retire_lane(
        &self,
        batch: &[EnginePacket],
        memo: &mut Option<MemoTable>,
        lanes: &mut StepLanes,
        l: usize,
        end: MemoVerdict,
    ) {
        let st = lanes.states[l];
        let last = lanes.states.len() - 1;
        lanes.states.swap_remove(l);
        lanes.frames.swap(l, last);
        lanes.nodes[l] = lanes.nodes[last];
        let packet = &batch[st.batch_idx];
        let route = self
            .routes
            .routes()
            .get_checked(packet.route)
            .expect("validated at lane entry; generation is fixed within a batch");
        if let Some(table) = memo.as_mut() {
            let shim_end = ETH_HEADER_LEN + self.layout.total_bytes();
            table.record(
                packet.route.index(),
                end,
                &lanes.frames[last][ETH_HEADER_LEN..shim_end],
            );
        }
        self.settle(packet.flow, packet.seq, route, end);
    }

    /// §3.5 membership collection: from the trigger switch, keep
    /// following the (known, looping) route recording switch IDs until
    /// the trigger reappears — the recorded set is the loop. Takes the
    /// packet's fields separately so the caller's in-place frame borrow
    /// stays undisturbed.
    fn report_loop(
        &self,
        flow: FlowKey,
        seq: u64,
        route: &CompiledRoute,
        trigger_node: usize,
        hop: u32,
    ) {
        let trigger = self.ids[trigger_node];
        let mut members = vec![trigger];
        let mut complete = false;
        let mut i = hop as usize; // route index of the hop *after* the trigger
        while members.len() < MEMBERSHIP_CAP {
            let Some(node) = route.hop(i) else {
                break;
            };
            let Some(&id) = self.ids.get(node) else {
                break;
            };
            if id == trigger {
                complete = true;
                break;
            }
            members.push(id);
            i += 1;
        }
        self.metrics.loop_events.fetch_add(1, Ordering::Relaxed);
        let gen = self.routes.generation();
        if gen > self.routes.initial_generation() {
            // This loop lives in a route generation published while
            // traffic was already flowing — live detection, not replay.
            self.metrics
                .loops_after_swap
                .fetch_add(1, Ordering::Relaxed);
            // First loop event this shard raises against `gen` records
            // the detection latency: swap publish → loop event.
            if self.metrics.latency_gen.fetch_max(gen, Ordering::Relaxed) < gen {
                if let Some(published) = self.routes.publish_ns(gen) {
                    self.metrics
                        .detect_latency_ns
                        .record(self.routes.now_ns().saturating_sub(published));
                }
            }
        }
        let event = LoopEvent {
            flow,
            seq,
            shard: self.shard,
            trigger,
            hop,
            members,
            complete,
        };
        match self.event_faults.fate() {
            EventFate::Drop => {
                self.metrics
                    .events_dropped_injected
                    .fetch_add(1, Ordering::Relaxed);
            }
            EventFate::Duplicate => {
                self.metrics
                    .events_duplicated_injected
                    .fetch_add(1, Ordering::Relaxed);
                self.send_event(event.clone());
                self.send_event(event);
            }
            EventFate::Deliver => self.send_event(event),
        }
    }

    /// Sends one event toward the aggregator, tolerating a closed
    /// channel: a send can only fail post-aggregator-teardown, which
    /// join ordering rules out in a healthy run — count it and keep
    /// draining rather than panic a worker.
    fn send_event(&self, event: LoopEvent) {
        if self.events.send(event).is_err() {
            self.metrics
                .events_send_failed
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

// Keep the sentinel honest if the table representation ever changes.
const _: () = assert!(ROUTE_VALID == u32::MAX);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochRouteTable;
    use crate::faults::FaultPlan;
    use crate::flow::FlowKey;
    use crate::packet::PathSpec;
    use crate::ring::{ring, FullPolicy};
    use crate::route::{RouteId, RouteSet, RouteSetBuilder};
    use std::time::Duration;
    use unroller_core::UnrollerParams;

    const RECV_WAIT: Duration = Duration::from_secs(10);

    fn worker_fixture(
        nodes: usize,
        max_hops: u32,
    ) -> (
        ShardWorker,
        crate::ring::RingProducer<EnginePacket>,
        std::sync::mpsc::Receiver<LoopEvent>,
    ) {
        let params = UnrollerParams::default();
        let ids: Arc<[SwitchId]> = (0..nodes as u32).map(|i| 100 + i).collect();
        let pipelines = Arc::new(
            ids.iter()
                .map(|&id| UnrollerPipeline::new(id, params).expect("valid default params"))
                .collect::<Vec<_>>(),
        );
        // Tests enqueue everything before `run()` starts consuming, so
        // the ring must hold the largest test workload without blocking.
        let (producer, consumer, _) = ring(512, FullPolicy::Block);
        let (ev_tx, ev_rx) = std::sync::mpsc::channel();
        let worker = ShardWorker {
            shard: 0,
            pipelines,
            ids,
            routes: Arc::new(EpochRouteTable::new(RouteSetBuilder::new().build())).reader(),
            layout: HeaderLayout::from_params(&params),
            max_hops,
            batch_size: 8,
            metrics: Arc::new(ShardMetrics::default()),
            events: ev_tx,
            consumer,
            faults: None,
            event_faults: EventFaults::inactive(),
            kick: Arc::new(AtomicBool::new(false)),
            pin_core: None,
            memo: None,
            stepped: false,
        };
        (worker, producer, ev_rx)
    }

    /// Interns one path and installs the resulting single-route set on
    /// the worker (as generation 1 of a fresh epoch table); most tests
    /// walk exactly one distinct path.
    fn install_route(worker: &mut ShardWorker, path: PathSpec) -> RouteId {
        let mut b = RouteSetBuilder::new();
        let id = b.intern(&path);
        worker.routes = Arc::new(EpochRouteTable::new(b.build())).reader();
        id
    }

    fn packet(seq: u64, route: RouteId) -> EnginePacket {
        EnginePacket {
            flow: FlowKey::synthetic(0, 1, 0),
            seq,
            route,
            frame: None,
        }
    }

    #[test]
    fn delivers_loop_free_packets() {
        let (mut worker, producer, ev_rx) = worker_fixture(6, 64);
        let route = install_route(&mut worker, PathSpec::linear(vec![0, 1, 2, 3]));
        let metrics = worker.metrics.clone();
        for seq in 0..10 {
            producer.push(packet(seq, route));
        }
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.packets, 10);
        assert_eq!(snap.delivered, 10);
        assert_eq!(snap.loop_events, 0);
        assert_eq!(snap.hops, 40);
        assert!(snap.batches >= 2);
        assert!(ev_rx.try_recv().is_err(), "no events for clean traffic");
    }

    #[test]
    fn detects_loop_and_collects_membership() {
        let (mut worker, producer, ev_rx) = worker_fixture(6, 64);
        // 0 → [1, 2, 3] cycling: IDs 101, 102, 103 form the loop.
        let route = install_route(&mut worker, PathSpec::looping(vec![0], vec![1, 2, 3]));
        let metrics = worker.metrics.clone();
        producer.push(packet(0, route));
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.loop_events, 1);
        assert_eq!(snap.delivered, 0);
        assert_eq!(snap.ttl_dropped, 0, "detector beats the TTL");
        let event = ev_rx
            .recv_timeout(RECV_WAIT)
            .expect("worker sent the loop event before exiting");
        assert!(event.complete, "membership closed the cycle");
        let mut members = event.members.clone();
        members.sort_unstable();
        assert_eq!(members, vec![101, 102, 103]);
        assert_eq!(event.hop as u64, snap.hops);
    }

    #[test]
    fn ttl_caps_undetectable_walks() {
        // max_hops below the detection bound (a ping-pong is detected
        // on hop 3, the loop-closing revisit): the TTL fires first.
        let (mut worker, producer, _ev_rx) = worker_fixture(4, 2);
        let route = install_route(&mut worker, PathSpec::looping(vec![], vec![0, 1]));
        let metrics = worker.metrics.clone();
        producer.push(packet(0, route));
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.ttl_dropped, 1);
        assert_eq!(snap.loop_events, 0);
        assert_eq!(snap.hops, 2);
    }

    #[test]
    fn unknown_nodes_count_route_errors() {
        let (mut worker, producer, _ev_rx) = worker_fixture(3, 64);
        let route = install_route(&mut worker, PathSpec::linear(vec![0, 99]));
        let metrics = worker.metrics.clone();
        producer.push(packet(0, route));
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.route_errors, 1);
        assert_eq!(snap.hops, 1, "the valid prefix was processed");
    }

    #[test]
    fn looping_route_with_invalid_cycle_hop_errors_out() {
        // The invalid hop sits inside the cycle: the pre-computed
        // err_hop must stop the walk there instead of letting the
        // wrapped cycle cursor index out of the pipeline array.
        let (mut worker, producer, _ev_rx) = worker_fixture(3, 64);
        let route = install_route(&mut worker, PathSpec::looping(vec![0], vec![1, 88]));
        let metrics = worker.metrics.clone();
        producer.push(packet(0, route));
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.route_errors, 1);
        assert_eq!(snap.hops, 2, "hops 0 and 1 processed before the error");
        assert_eq!(snap.loop_events, 0);
    }

    #[test]
    fn cpu_time_recorded_on_linux() {
        let (mut worker, producer, _ev_rx) = worker_fixture(4, 64);
        let route = install_route(&mut worker, PathSpec::linear(vec![0, 1]));
        let metrics = worker.metrics.clone();
        producer.push(packet(0, route));
        drop(producer);
        worker.run();
        if thread_cpu_ns().is_some() {
            // Stored (possibly 0 ticks for so little work, but stored).
            let _ = metrics.snapshot().cpu_ns;
        }
    }

    #[test]
    fn pinned_worker_records_its_core() {
        let (mut worker, producer, _ev_rx) = worker_fixture(4, 64);
        let route = install_route(&mut worker, PathSpec::linear(vec![0, 1]));
        worker.pin_core = Some(0); // core 0 always exists
        let metrics = worker.metrics.clone();
        producer.push(packet(0, route));
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        if cfg!(target_os = "linux") {
            assert_eq!(snap.pinned_core, Some(0), "pin to core 0 succeeds");
        } else {
            assert_eq!(snap.pinned_core, None, "pinning is Linux-only");
        }
    }

    #[test]
    fn dead_aggregator_is_tolerated_and_counted() {
        // Dropping the event receiver before the worker runs forces
        // every loop-event send to fail: the worker must finish its
        // ring cleanly and count the failures instead of panicking.
        let (mut worker, producer, ev_rx) = worker_fixture(6, 64);
        let route = install_route(&mut worker, PathSpec::looping(vec![0], vec![1, 2]));
        let metrics = worker.metrics.clone();
        drop(ev_rx);
        for seq in 0..5 {
            producer.push(packet(seq, route));
        }
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.packets, 5, "worker drains despite the dead sink");
        assert_eq!(snap.loop_events, 5);
        assert_eq!(snap.events_send_failed, 5);
    }

    #[test]
    fn injected_panics_are_supervised_and_accounted() {
        let (mut worker, producer, _ev_rx) = worker_fixture(6, 64);
        let route = install_route(&mut worker, PathSpec::linear(vec![0, 1, 2]));
        // Every packet panics; budget of 3 restarts, then drain-only.
        worker.faults = Some(
            FaultPlan {
                seed: 1,
                panic_rate: 1.0,
                max_restarts: 3,
                ..FaultPlan::default()
            }
            .for_shard(0),
        );
        let metrics = worker.metrics.clone();
        for seq in 0..20 {
            producer.push(packet(seq, route));
        }
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.restarts, 3, "budget honored exactly");
        assert_eq!(
            snap.packets + snap.panic_lost,
            20,
            "every packet is either processed or counted lost"
        );
        assert_eq!(snap.packets, 0, "all-panic plan processes nothing");
        assert!(snap.panics_injected >= 4, "the supervised panics fired");
    }

    #[test]
    fn moderate_panic_rate_loses_only_the_panicking_packets() {
        let (mut worker, producer, _ev_rx) = worker_fixture(6, 64);
        let route = install_route(&mut worker, PathSpec::linear(vec![0, 1, 2, 3]));
        worker.faults = Some(
            FaultPlan {
                seed: 9,
                panic_rate: 0.05,
                ..FaultPlan::default()
            }
            .for_shard(0),
        );
        let metrics = worker.metrics.clone();
        for seq in 0..400 {
            producer.push(packet(seq, route));
        }
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert!(snap.panic_lost > 0, "5% over 400 packets fires");
        assert_eq!(snap.packets + snap.panic_lost, 400);
        assert_eq!(
            snap.restarts, snap.panic_lost,
            "each panic loses exactly one packet and costs one restart"
        );
        assert_eq!(snap.delivered, snap.packets, "survivors all deliver");
    }

    #[test]
    fn bitflips_are_injected_and_survive_processing() {
        let (mut worker, producer, _ev_rx) = worker_fixture(8, 64);
        let route = install_route(&mut worker, PathSpec::linear(vec![0, 1, 2, 3, 4, 5]));
        worker.faults = Some(
            FaultPlan {
                seed: 4,
                bitflip_rate: 1.0,
                ..FaultPlan::default()
            }
            .for_shard(0),
        );
        let metrics = worker.metrics.clone();
        for seq in 0..100 {
            producer.push(packet(seq, route));
        }
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.packets, 100, "corruption never crashes the walk");
        assert!(snap.bitflips_injected > 0, "flips landed");
        // A flipped header may mis-deliver or false-report, but every
        // packet still terminates one way or another. Flips land inside
        // the shim, so the frame itself stays parseable.
        assert_eq!(snap.frame_errors, 0);
        assert_eq!(
            snap.delivered + snap.ttl_dropped + snap.loop_events + snap.route_errors,
            100
        );
    }

    #[test]
    fn injected_stall_is_cut_short_by_a_kick() {
        let (mut worker, producer, _ev_rx) = worker_fixture(4, 64);
        let route = install_route(&mut worker, PathSpec::linear(vec![0, 1]));
        worker.faults = Some(
            FaultPlan {
                seed: 2,
                stall_rate: 1.0,
                stall_ms: 60_000, // would dwarf the test without a kick
                ..FaultPlan::default()
            }
            .for_shard(0),
        );
        let kick = worker.kick.clone();
        let metrics = worker.metrics.clone();
        producer.push(packet(0, route));
        drop(producer);
        // Pre-arm the kick: the stall loop observes it on its first
        // poll and aborts immediately.
        kick.store(true, Ordering::Relaxed);
        let start = Instant::now();
        worker.run();
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "kick must abort the stall"
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.stalls_injected, 1);
        assert_eq!(snap.stalls_aborted, 1);
        assert_eq!(snap.packets, 1);
    }

    #[test]
    fn carried_frames_are_processed_in_their_own_bytes() {
        // A packet with recorded wire bytes (a capture replay) must be
        // processed in that buffer: a shim pre-walked through switches
        // 0 and 1 re-enters switch 0 and reports on the FIRST hop of
        // the replayed walk — state the scratch frame would not have.
        let (mut worker, producer, ev_rx) = worker_fixture(6, 64);
        let route = install_route(&mut worker, PathSpec::linear(vec![0, 2, 3]));
        let params = UnrollerParams::default();
        let layout = HeaderLayout::from_params(&params);
        let mut frame = build_frame(
            &layout,
            &EthernetHeader::for_hosts(0, 1),
            &WireHeader::initial(&layout),
            b"replayed",
        );
        // Pre-walk: the capture point saw the packet after switches
        // 100 and 101 (the fixture's IDs for nodes 0 and 1).
        UnrollerPipeline::new(100, params)
            .unwrap()
            .process_frame_in_place(&mut frame)
            .unwrap();
        UnrollerPipeline::new(101, params)
            .unwrap()
            .process_frame_in_place(&mut frame)
            .unwrap();
        let metrics = worker.metrics.clone();
        let mut p = packet(0, route);
        p.frame = Some(frame.into_boxed_slice());
        producer.push(p);
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.loop_events, 1, "carried shim state must be honored");
        assert_eq!(snap.hops, 1, "reported on the first replayed hop");
        let event = ev_rx.recv_timeout(RECV_WAIT).expect("loop event");
        assert_eq!(event.trigger, 100);
    }

    #[test]
    fn malformed_frames_count_frame_errors() {
        let (mut worker, producer, _ev_rx) = worker_fixture(4, 64);
        let route = install_route(&mut worker, PathSpec::linear(vec![0, 1]));
        let metrics = worker.metrics.clone();
        let mut runt = packet(0, route);
        runt.frame = Some(vec![0u8; 6].into_boxed_slice()); // shorter than an Ethernet header
        producer.push(runt);
        let mut wrong_type = packet(1, route);
        let params = UnrollerParams::default();
        let layout = HeaderLayout::from_params(&params);
        let mut eth = EthernetHeader::for_hosts(0, 1);
        eth.ethertype = 0x0800;
        wrong_type.frame = Some(
            build_frame(&layout, &eth, &WireHeader::initial(&layout), b"ipv4").into_boxed_slice(),
        );
        producer.push(wrong_type);
        producer.push(packet(2, route)); // healthy
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.packets, 3, "malformed frames still count consumed");
        assert_eq!(snap.frame_errors, 2);
        assert_eq!(snap.delivered, 1);
    }

    #[test]
    fn event_faults_drop_and_duplicate_loop_events() {
        let plan = FaultPlan {
            seed: 6,
            event_drop_rate: 0.3,
            event_dup_rate: 0.3,
            ..FaultPlan::default()
        };
        let (mut worker, producer, ev_rx) = worker_fixture(6, 64);
        let route = install_route(&mut worker, PathSpec::looping(vec![0], vec![1, 2]));
        worker.event_faults = plan.event_faults(0);
        let metrics = worker.metrics.clone();
        for seq in 0..50 {
            producer.push(packet(seq, route));
        }
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.loop_events, 50, "every detection is counted");
        assert!(snap.events_dropped_injected > 0);
        assert!(snap.events_duplicated_injected > 0);
        let received = ev_rx.try_iter().count() as u64;
        assert_eq!(
            received,
            snap.loop_events - snap.events_dropped_injected + snap.events_duplicated_injected,
            "channel traffic matches the injected drop/dup accounting"
        );
    }

    /// Spins until the worker has consumed `n` packets, so a publish
    /// lands on a batch boundary between two known packets.
    fn wait_for_packets(metrics: &Arc<ShardMetrics>, n: u64) {
        let deadline = Instant::now() + RECV_WAIT;
        while metrics.snapshot().packets < n {
            assert!(
                Instant::now() < deadline,
                "worker never consumed packet {n}"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn route_swap_rekeys_the_validity_cache() {
        // Gen 1: a 3-hop route whose last hop (99) is invalid — the
        // cached err_hop is 2. Gen 2 swaps the *same slot* to a 6-hop
        // fully valid route: a stale validity cache would flag hop 2 of
        // the new route as a spurious `route_error` (or, worse, let the
        // walk index past the old route's end).
        let (mut worker, producer, _ev_rx) = worker_fixture(8, 64);
        let table = Arc::new(EpochRouteTable::new(RouteSet::from_specs(&[
            PathSpec::linear(vec![0, 1, 99]),
        ])));
        worker.routes = table.reader();
        let route = RouteId::from_index(0);
        let metrics = worker.metrics.clone();
        producer.push(packet(0, route));
        let handle = std::thread::spawn(move || worker.run());
        wait_for_packets(&metrics, 1);
        table.publish(RouteSet::from_specs(&[PathSpec::linear(vec![
            0, 1, 2, 3, 4, 5,
        ])]));
        for seq in 1..=2 {
            producer.push(packet(seq, route));
        }
        drop(producer);
        handle.join().unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.packets, 3);
        assert_eq!(snap.route_errors, 1, "only the gen-1 walk errors");
        assert_eq!(snap.delivered, 2, "gen-2 walks deliver, no spurious errors");
        // 2 valid hops before the gen-1 error + 6 per delivered walk.
        assert_eq!(snap.hops, 2 + 12);
        assert_eq!(snap.route_swaps_observed, 1);
        assert_eq!(snap.loops_after_swap, 0);
    }

    #[test]
    fn loops_after_swap_record_detection_latency() {
        let (mut worker, producer, ev_rx) = worker_fixture(6, 64);
        let table = Arc::new(EpochRouteTable::new(RouteSet::from_specs(&[
            PathSpec::linear(vec![0, 1, 2]),
        ])));
        worker.routes = table.reader();
        let route = RouteId::from_index(0);
        let metrics = worker.metrics.clone();
        producer.push(packet(0, route));
        let handle = std::thread::spawn(move || worker.run());
        wait_for_packets(&metrics, 1);
        // Swap the flow's slot to a micro-loop, published mid-traffic.
        table.publish(RouteSet::from_specs(&[PathSpec::looping(
            vec![0],
            vec![1, 2],
        )]));
        producer.push(packet(1, route));
        producer.push(packet(2, route));
        drop(producer);
        handle.join().unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.delivered, 1, "the gen-1 packet delivered");
        assert_eq!(snap.loop_events, 2);
        assert_eq!(
            snap.loops_after_swap, 2,
            "both loops live in a post-startup generation"
        );
        assert_eq!(
            snap.detect_latency_ns.count, 1,
            "latency recorded once per generation per shard"
        );
        assert!(snap.detect_latency_ns.max < 10_000_000_000, "sane latency");
        assert_eq!(ev_rx.try_iter().count(), 2);
    }

    #[test]
    fn route_swap_never_serves_a_stale_memo_verdict() {
        // Gen 1 caches `Delivered` for slot 0. Gen 2 swaps the SAME
        // slot to a micro-loop with sampling disabled (`sample_every:
        // 0`), so only generation-keyed invalidation stands between
        // post-swap packets and the stale cached verdict. A stale hit
        // would count them delivered and raise no loop events.
        let (mut worker, producer, ev_rx) = worker_fixture(6, 64);
        let table = Arc::new(EpochRouteTable::new(RouteSet::from_specs(&[
            PathSpec::linear(vec![0, 1, 2]),
        ])));
        worker.routes = table.reader();
        worker.memo = Some(MemoConfig { sample_every: 0 });
        let route = RouteId::from_index(0);
        let metrics = worker.metrics.clone();
        // Enough gen-1 packets to both fill and then hit the cache.
        for seq in 0..4 {
            producer.push(packet(seq, route));
        }
        let handle = std::thread::spawn(move || worker.run());
        wait_for_packets(&metrics, 4);
        table.publish(RouteSet::from_specs(&[PathSpec::looping(
            vec![0],
            vec![1, 2],
        )]));
        for seq in 4..8 {
            producer.push(packet(seq, route));
        }
        drop(producer);
        handle.join().unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.delivered, 4, "only the gen-1 packets deliver");
        assert_eq!(snap.loop_events, 4, "every post-swap packet re-walks");
        assert_eq!(snap.route_swaps_observed, 1);
        assert!(snap.memo_hits >= 3, "gen-1 cache was actually serving");
        assert!(
            snap.memo_misses >= 2,
            "the swap forced at least one re-warm miss"
        );
        assert_eq!(ev_rx.try_iter().count(), 4);
    }

    #[test]
    fn carried_frames_bypass_the_memo() {
        // A generated packet caches `Delivered` for the route; a
        // replayed frame on the SAME route arrives pre-walked through
        // two other switches and must loop-report in its own bytes —
        // serving it the cached generated-walk verdict would silently
        // drop the detection.
        let (mut worker, producer, ev_rx) = worker_fixture(6, 64);
        let route = install_route(&mut worker, PathSpec::linear(vec![0, 2, 3]));
        worker.memo = Some(MemoConfig { sample_every: 0 });
        let params = UnrollerParams::default();
        let layout = HeaderLayout::from_params(&params);
        let mut frame = build_frame(
            &layout,
            &EthernetHeader::for_hosts(0, 1),
            &WireHeader::initial(&layout),
            b"replayed",
        );
        UnrollerPipeline::new(100, params)
            .unwrap()
            .process_frame_in_place(&mut frame)
            .unwrap();
        UnrollerPipeline::new(101, params)
            .unwrap()
            .process_frame_in_place(&mut frame)
            .unwrap();
        let metrics = worker.metrics.clone();
        producer.push(packet(0, route)); // warms the cache
        let mut replayed = packet(1, route);
        replayed.frame = Some(frame.into_boxed_slice());
        producer.push(replayed);
        producer.push(packet(2, route)); // hits the cache
        drop(producer);
        worker.run();
        let snap = metrics.snapshot();
        assert_eq!(snap.delivered, 2, "both generated packets deliver");
        assert_eq!(snap.loop_events, 1, "the carried shim state is honored");
        assert_eq!(snap.memo_misses, 1);
        assert_eq!(snap.memo_hits, 1, "the replayed frame never consulted it");
        assert_eq!(ev_rx.try_iter().count(), 1);
    }

    /// Runs a fixed mixed workload — delivered, looping, route-error
    /// and TTL-capped routes interleaved — under the given memo/stepped
    /// mode and returns the shard snapshot.
    fn run_mixed(memo: Option<MemoConfig>, stepped: bool) -> crate::metrics::ShardSnapshot {
        let (mut worker, producer, _ev_rx) = worker_fixture(12, 8);
        let mut b = RouteSetBuilder::new();
        let routes = [
            b.intern(&PathSpec::linear(vec![0, 1, 2, 3])),
            b.intern(&PathSpec::looping(vec![0], vec![1, 2, 3])),
            b.intern(&PathSpec::linear(vec![0, 1, 99])),
            // Ten distinct hops: nothing to revisit, so the TTL (8)
            // fires before the route ends.
            b.intern(&PathSpec::linear(vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9])),
        ];
        worker.routes = Arc::new(EpochRouteTable::new(b.build())).reader();
        worker.memo = memo;
        worker.stepped = stepped;
        let metrics = worker.metrics.clone();
        for seq in 0..60 {
            producer.push(packet(seq, routes[seq as usize % routes.len()]));
        }
        drop(producer);
        worker.run();
        metrics.snapshot()
    }

    #[test]
    fn memoized_and_stepped_modes_match_sequential_accounting() {
        let walked = run_mixed(None, false);
        assert_eq!(walked.packets, 60);
        assert_eq!(walked.delivered, 15);
        assert_eq!(walked.loop_events, 15);
        assert_eq!(walked.route_errors, 15);
        assert_eq!(walked.ttl_dropped, 15, "the long route outruns the TTL");
        for (name, snap) in [
            ("stepped", run_mixed(None, true)),
            (
                "memo",
                run_mixed(Some(MemoConfig { sample_every: 1 }), false),
            ),
            (
                "memo+stepped",
                run_mixed(Some(MemoConfig { sample_every: 1 }), true),
            ),
            (
                "memo-unsampled",
                run_mixed(Some(MemoConfig { sample_every: 0 }), false),
            ),
        ] {
            assert_eq!(snap.packets, walked.packets, "{name}: packets");
            assert_eq!(snap.delivered, walked.delivered, "{name}: delivered");
            assert_eq!(snap.loop_events, walked.loop_events, "{name}: loops");
            assert_eq!(
                snap.route_errors, walked.route_errors,
                "{name}: route_errors"
            );
            assert_eq!(snap.ttl_dropped, walked.ttl_dropped, "{name}: ttl");
            assert_eq!(snap.hops, walked.hops, "{name}: hop totals");
            assert_eq!(snap.frame_errors, 0, "{name}: frame_errors");
            assert_eq!(snap.memo_divergence, 0, "{name}: divergence");
        }
        let memoized = run_mixed(Some(MemoConfig { sample_every: 1 }), false);
        assert_eq!(memoized.memo_misses, 4, "one warm-up walk per route");
        assert_eq!(memoized.memo_hits, 56);
        assert_eq!(
            memoized.memo_sampled_walks, 56,
            "paranoid mode re-walks every hit"
        );
    }
}
