//! # unroller-engine
//!
//! A sharded, multi-threaded packet-processing runtime that drives the
//! Unroller ingress pipeline (`unroller-dataplane`) over batched packet
//! streams — the software-switch deployment story for the paper's
//! in-band loop detector.
//!
//! Flows are RSS-hashed onto worker shards ([`flow`]), each shard pulls
//! batches off a bounded SPSC ring with explicit backpressure
//! accounting ([`ring`]), walks packets through its private clone of
//! the per-switch pipelines ([`worker`]), and funnels loop events to an
//! aggregator that dedupes per flow and hands localized reports to the
//! `unroller-control` controller ([`aggregate`]). A metrics layer
//! ([`metrics`]) keeps per-shard counters and latency histograms, and
//! [`scaling`] packages multi-shard-count experiments into the JSON
//! report (`results/engine_scaling.json`) the repo's evaluation
//! tracks.
//!
//! The runtime is built to *misbehave on request*: a seeded
//! [`faults::FaultPlan`] injects worker panics, header bit-flips, ring
//! stalls, and loop-event channel faults, and the supervision layer
//! ([`worker`] restarts, the [`supervise`] watchdog and overload
//! shedder) recovers from all of them with every action counted —
//! `results/engine_faults.json` sweeps fault rates against detection
//! recall.
//!
//! ```
//! use unroller_engine::{Engine, EngineConfig, FullPolicy, SyntheticSource};
//!
//! let ids: Vec<u32> = (0..32).map(|i| 100 + i).collect();
//! let engine = Engine::new(
//!     EngineConfig { shards: 2, full_policy: FullPolicy::Block, ..Default::default() },
//!     &ids,
//! )
//! .unwrap();
//! // 8 flows over 32 virtual nodes; every 4th flow starts looping at
//! // packet 100 of 1000.
//! let mut source = SyntheticSource::new(32, 8, 1_000, 4, 100, 7);
//! let report = engine.run(&mut source).unwrap();
//! assert!(report.loop_detected());
//! assert!(report.accounted());
//! ```

// deny (not forbid) so the one audited exception — the
// `sched_setaffinity` binding in [`affinity`] — can opt in with an
// explicit `#[allow]`; everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod aggregate;
pub mod churn;
pub mod engine;
pub mod epoch;
pub mod eventlog;
pub mod faults;
pub mod flow;
pub mod json;
pub mod memo;
pub mod metrics;
pub mod packet;
pub mod ring;
pub mod route;
pub mod scaling;
pub mod source;
pub mod supervise;
pub mod worker;

pub use aggregate::{AggregatorReport, ControllerSink, DomainRouter, EventSink, LoopEvent};
pub use churn::{ChurnPlan, ChurnSource};
pub use engine::{Engine, EngineConfig, EngineError, EngineReport, EventsLogConfig};
pub use epoch::{EpochRouteTable, RouteReader};
pub use eventlog::{EventLogWriter, RunMeta, EVENT_LOG_VERSION};
pub use faults::{FaultPlan, FaultSpecError, SplitMix64};
pub use flow::FlowKey;
pub use json::Json;
pub use memo::{MemoConfig, MemoTable, MemoVerdict, DEFAULT_SAMPLE_EVERY};
pub use metrics::{Histogram, HistogramSnapshot, ShardMetrics, ShardSnapshot};
pub use packet::{EnginePacket, PathSpec};
pub use ring::{BatchPush, FullPolicy, PushOutcome, RingCounters, RingCountersSnapshot};
pub use route::{CompiledRoute, RouteId, RouteSet, RouteSetBuilder};
pub use scaling::{run_scaling, ScalingReport, ScalingRun};
pub use source::{
    CaptureSource, LoopInjection, PcapReplaySource, ReplaySource, SyntheticSource, TrafficSource,
};
pub use supervise::{Shedder, WatchdogReport};
