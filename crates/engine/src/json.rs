//! A minimal JSON document builder for report export.
//!
//! The workspace's `serde`/`serde_json` entries are offline vendor
//! stubs (see `DESIGN.md` §9), so the engine renders its snapshots and
//! scaling reports through this small value tree instead. Only what the
//! reports need: objects keep insertion order, floats render with
//! enough precision to round-trip, and non-finite floats become `null`
//! (NaN/∞ are not JSON — better an explicit null than an unparseable
//! file).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters, byte sizes).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values render as `null`.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::set`].
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Inserts (or replaces) a key in an object. Panics on non-objects —
    /// report-building code constructs the tree statically, so a
    /// mismatch is a programming error, not input data.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        let Json::Object(entries) = self else {
            panic!("Json::set on a non-object");
        };
        if let Some(entry) = entries.iter_mut().find(|(k, _)| k == key) {
            entry.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
        self
    }

    /// Renders the document compactly (single line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the document with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{f:?}` keeps a decimal point / exponent, so the
                    // value reads back as a float, not an integer.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                });
            }
            Json::Object(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Str("hi".into()), Json::Str("hi".to_string()));
    }

    #[test]
    fn floats_round_trip_and_non_finite_become_null() {
        assert_eq!(Json::Float(2.0).render(), "2.0", "stays a float");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
        assert_eq!(Json::Float(0.1).render(), "0.1");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn object_keeps_insertion_order_and_set_replaces() {
        let mut obj = Json::object();
        obj.set("b", Json::UInt(1));
        obj.set("a", Json::UInt(2));
        obj.set("b", Json::UInt(3));
        assert_eq!(obj.render(), r#"{"b":3,"a":2}"#);
    }

    #[test]
    fn nested_pretty_output_is_valid() {
        let mut obj = Json::object();
        obj.set("xs", Json::Array(vec![Json::UInt(1), Json::UInt(2)]));
        obj.set("empty", Json::Array(vec![]));
        let pretty = obj.render_pretty();
        assert!(pretty.contains("\"xs\": [\n"));
        assert!(pretty.contains("\"empty\": []"));
        assert!(pretty.ends_with("}\n"));
    }
}
