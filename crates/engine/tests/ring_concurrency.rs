//! Concurrency and interleaving properties of the SPSC ring.
//!
//! The lib's unit tests pin down each API in isolation; these tests
//! attack the *combinations*: single pushes interleaved with batched
//! pushes and partial drains (property-tested), and genuine two-thread
//! producer/consumer races with randomized batch sizes under both full
//! policies. The invariant throughout is exactly-once FIFO delivery:
//! every enqueued item comes out once, in order, and everything else is
//! a counted drop — never a silent loss, never a duplicate.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use unroller_engine::ring::ring;
use unroller_engine::FullPolicy;

/// Replays a generated op sequence against a small Drop-policy ring,
/// tracking exactly which items the ring accepted: `push` reports
/// acceptance directly, and `push_batch` under Drop accepts a prefix of
/// the batch of length `enqueued` (nothing stalls without a blocking
/// policy). Partial drains are interleaved between ops; at the end the
/// producer closes the ring and the consumer drains the rest.
fn run_interleaved(
    ops: &[(bool, usize, bool, usize)],
    capacity: usize,
    policy: FullPolicy,
) -> Result<(), TestCaseError> {
    let (producer, consumer, counters) = ring::<u64>(capacity, policy);
    let mut expected: Vec<u64> = Vec::new();
    let mut received: Vec<u64> = Vec::new();
    let mut in_ring = 0usize;
    let mut next: u64 = 0;
    let mut dropped = 0usize;
    for &(use_batch, batch_len, drain, drain_max) in ops {
        if use_batch {
            let mut batch: Vec<u64> = (next..next + batch_len as u64).collect();
            next += batch_len as u64;
            let result = producer.push_batch(&mut batch);
            prop_assert!(batch.is_empty(), "push_batch must drain its input");
            prop_assert_eq!(
                result.enqueued + result.stalled + result.dropped,
                batch_len,
                "every batch item must be accounted"
            );
            let accepted = result.enqueued + result.stalled;
            expected.extend(next - batch_len as u64..next - batch_len as u64 + accepted as u64);
            in_ring += accepted;
            dropped += result.dropped;
        } else {
            let item = next;
            next += 1;
            if producer.push(item) {
                expected.push(item);
                in_ring += 1;
            } else {
                dropped += 1;
            }
        }
        // Only drain when something is in flight: `recv_batch` blocks
        // on an empty, still-open ring (there is no producer thread
        // here to wake it).
        if drain && in_ring > 0 {
            let before = received.len();
            prop_assert!(consumer.recv_batch(&mut received, drain_max));
            in_ring -= received.len() - before;
        }
    }
    drop(producer);
    while consumer.recv_batch(&mut received, 16) {}
    let want: Vec<u64> = expected;
    prop_assert_eq!(&received, &want, "exactly-once FIFO");
    let snap = counters.snapshot();
    prop_assert_eq!(snap.enqueued, want.len() as u64);
    prop_assert_eq!(snap.dropped_full, dropped as u64);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Drop policy, tiny ring: drops are frequent, and every one must
    /// be counted while the accepted prefix stays FIFO.
    #[test]
    fn interleaved_ops_stay_fifo_under_drop(
        ops in prop::collection::vec(
            (any::<bool>(), 0usize..8, any::<bool>(), 1usize..8),
            0..48,
        ),
    ) {
        run_interleaved(&ops, 4, FullPolicy::Drop)?;
    }

    /// Block policy with headroom: the single-threaded harness cannot
    /// unblock a stalled producer, so the ring is sized to never fill —
    /// which also proves Block never drops when space exists.
    #[test]
    fn interleaved_ops_stay_fifo_under_block(
        ops in prop::collection::vec(
            (any::<bool>(), 0usize..8, any::<bool>(), 1usize..8),
            0..48,
        ),
    ) {
        // 48 ops × at most 8 items each stays under 512.
        run_interleaved(&ops, 512, FullPolicy::Block)?;
    }
}

/// Two real threads, Block policy, a ring far smaller than the stream:
/// the producer genuinely stalls and parks, and still every item must
/// arrive exactly once in order.
#[test]
fn two_thread_block_stress_delivers_every_item_in_order() {
    const TOTAL: u64 = 20_000;
    let (producer, consumer, counters) = ring::<u64>(8, FullPolicy::Block);
    let received = std::thread::scope(|scope| {
        let consumer_thread = scope.spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(11);
            let mut received = Vec::with_capacity(TOTAL as usize);
            let mut out = Vec::new();
            while consumer.recv_batch(&mut out, rng.gen_range(1usize..32)) {
                received.append(&mut out);
            }
            received
        });
        scope.spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(12);
            let mut next: u64 = 0;
            let mut batch = Vec::new();
            while next < TOTAL {
                if rng.gen_bool(0.3) {
                    assert!(producer.push(next), "Block with a live consumer");
                    next += 1;
                } else {
                    let len = (rng.gen_range(1u64..48)).min(TOTAL - next);
                    batch.extend(next..next + len);
                    next += len;
                    let result = producer.push_batch(&mut batch);
                    assert_eq!(result.dropped, 0, "Block with a live consumer");
                }
            }
            // Producer drops here, closing the ring.
        });
        consumer_thread.join().expect("consumer thread")
    });
    assert_eq!(received.len() as u64, TOTAL);
    assert!(
        received.iter().copied().eq(0..TOTAL),
        "exactly-once FIFO across threads"
    );
    let snap = counters.snapshot();
    assert_eq!(snap.enqueued, TOTAL);
    assert_eq!(snap.dropped_full, 0);
}

/// Two threads under Drop: the consumer receives exactly the items the
/// producer saw accepted (per-push results and per-batch accepted
/// prefixes), in order — and the drop counter covers the rest.
#[test]
fn two_thread_drop_stress_loses_only_counted_items() {
    const TOTAL: u64 = 20_000;
    let (producer, consumer, counters) = ring::<u64>(8, FullPolicy::Drop);
    let (accepted, received) = std::thread::scope(|scope| {
        let consumer_thread = scope.spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(21);
            let mut received = Vec::new();
            let mut out = Vec::new();
            while consumer.recv_batch(&mut out, rng.gen_range(1usize..32)) {
                received.append(&mut out);
            }
            received
        });
        let producer_thread = scope.spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(22);
            let mut accepted = Vec::new();
            let mut next: u64 = 0;
            let mut batch = Vec::new();
            while next < TOTAL {
                if rng.gen_bool(0.3) {
                    if producer.push(next) {
                        accepted.push(next);
                    }
                    next += 1;
                } else {
                    let len = (rng.gen_range(1u64..48)).min(TOTAL - next);
                    batch.extend(next..next + len);
                    let result = producer.push_batch(&mut batch);
                    // Drop policy accepts a prefix and drops the tail.
                    let taken = (result.enqueued + result.stalled) as u64;
                    accepted.extend(next..next + taken);
                    next += len;
                }
            }
            accepted
        });
        (
            producer_thread.join().expect("producer thread"),
            consumer_thread.join().expect("consumer thread"),
        )
    });
    assert_eq!(received, accepted, "exactly the accepted items, in order");
    let snap = counters.snapshot();
    assert_eq!(snap.enqueued, accepted.len() as u64);
    assert_eq!(
        snap.enqueued + snap.dropped_full,
        TOTAL,
        "every offered item is either delivered or a counted drop"
    );
}
