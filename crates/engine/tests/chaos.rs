//! Chaos tests: the engine under its own fault injector.
//!
//! The robustness contract these pin down: a seeded fault plan may
//! panic workers, corrupt headers in flight, stall rings, and drop or
//! duplicate loop events — and the run still completes, still detects
//! the injected routing loop, and still accounts for every offered
//! packet. Recovery actions are never silent: restarts, lost packets,
//! kicks, and quarantines all surface as counters.

use proptest::prelude::*;
use rand::Rng;
use std::time::Duration;
use unroller_control::{Controller, FlakyHealer, HealPolicy};
use unroller_engine::aggregate::{aggregate, deliver};
use unroller_engine::{
    ControllerSink, Engine, EngineConfig, FaultPlan, FlowKey, FullPolicy, LoopEvent,
    SyntheticSource,
};

fn ids(n: u32) -> Vec<u32> {
    (0..n).map(|i| 100 + i).collect()
}

/// The headline chaos run: worker panics, wire bit-flips, and loop-event
/// channel faults all at once, on multiple shards. Completion, loop
/// detection, and packet accounting must all survive.
#[test]
fn seeded_fault_run_completes_detects_and_accounts() {
    let plan = FaultPlan {
        seed: 42,
        panic_rate: 0.002,
        bitflip_rate: 0.001,
        event_drop_rate: 0.2,
        event_dup_rate: 0.2,
        ..FaultPlan::default()
    };
    let engine = Engine::new(
        EngineConfig {
            shards: 2,
            full_policy: FullPolicy::Block,
            faults: plan,
            ..EngineConfig::default()
        },
        &ids(32),
    )
    .unwrap();
    // 8 flows, every 4th loops from packet 100 on.
    let mut source = SyntheticSource::new(32, 8, 20_000, 4, 100, 7);
    let report = engine.run(&mut source).expect("chaos run must complete");

    assert!(report.loop_detected(), "faults must not mask the loop");
    assert!(
        report.accounted(),
        "accounting holds under faults: {report:?}"
    );
    assert!(
        report.restarts() > 0,
        "0.2% panic rate over 20k packets fires"
    );
    assert!(report.panic_lost() > 0);
    assert_eq!(
        report.processed() + report.panic_lost(),
        20_000,
        "every packet is processed or counted as panic-lost"
    );
    let injected_drops: u64 = report
        .shard_snapshots
        .iter()
        .map(|s| s.events_dropped_injected)
        .sum();
    let injected_dups: u64 = report
        .shard_snapshots
        .iter()
        .map(|s| s.events_duplicated_injected)
        .sum();
    assert!(injected_drops > 0, "event drops fired");
    assert!(injected_dups > 0, "event duplications fired");
    // The counters the CI chaos-smoke job greps for must serialize.
    let rendered = report.to_json().render_pretty();
    for key in ["restarts", "panic_lost", "bitflips_injected", "fault_plan"] {
        assert!(rendered.contains(key), "missing {key} in JSON");
    }
}

/// Injected ring stalls end to end: the watchdog notices the stalled
/// shard (no consumption, ring backlog) and kicks it; the stall aborts
/// early and both sides of the exchange are counted.
#[test]
fn watchdog_cuts_injected_stalls_short() {
    let plan = FaultPlan {
        seed: 3,
        stall_rate: 1.0,
        stall_ms: 50,
        ..FaultPlan::default()
    };
    let engine = Engine::new(
        EngineConfig {
            shards: 2,
            ring_capacity: 64,
            full_policy: FullPolicy::Block,
            faults: plan,
            watchdog: Some(Duration::from_millis(2)),
            ..EngineConfig::default()
        },
        &ids(32),
    )
    .unwrap();
    let mut source = SyntheticSource::new(32, 8, 5_000, 4, 100, 5);
    let report = engine.run(&mut source).expect("stalled run completes");
    assert!(report.accounted());
    let injected: u64 = report
        .shard_snapshots
        .iter()
        .map(|s| s.stalls_injected)
        .sum();
    let aborted: u64 = report
        .shard_snapshots
        .iter()
        .map(|s| s.stalls_aborted)
        .sum();
    assert!(injected > 0, "every batch stalls under rate 1.0");
    assert!(aborted > 0, "the watchdog kicked at least one stall");
    assert!(report.watchdog.kicks > 0);
    assert!(report.watchdog.stalls_detected >= report.watchdog.kicks);
}

/// The degraded-mode story end to end: detection works, but healing
/// always fails — the controller quarantines the loop, a repeat pass
/// skips it idempotently, and a rerun with the trapped flows
/// quarantined at ingress sees no loop traffic at all.
#[test]
fn failed_healing_quarantines_and_degraded_rerun_drops_at_ingress() {
    let switch_ids = ids(32);
    let run = |quarantine: Vec<FlowKey>| {
        let engine = Engine::new(
            EngineConfig {
                shards: 2,
                full_policy: FullPolicy::Block,
                quarantine,
                ..EngineConfig::default()
            },
            &switch_ids,
        )
        .unwrap();
        // Every flow loops from the first packet.
        let mut source = SyntheticSource::new(32, 8, 2_000, 1, 0, 13);
        engine.run(&mut source).expect("fault-free run")
    };

    let report = run(Vec::new());
    assert!(report.loop_detected());

    // Healing that never succeeds: bounded retries, then quarantine.
    let mut sink = ControllerSink::new(Controller::new(&switch_ids));
    deliver(&report.aggregator.events, &mut sink);
    let localized = sink.controller.localized_loops().len();
    assert!(localized > 0, "memberships localize");
    // The inner executor would succeed, but the flaky layer (a dead RPC
    // path) eats every attempt before it gets there.
    struct WouldSucceed;
    impl unroller_control::HealExecutor for WouldSucceed {
        fn attempt(&mut self, _l: &unroller_control::LocalizedLoop) -> bool {
            true
        }
    }
    let mut inner = WouldSucceed;
    let mut always_fail = FlakyHealer {
        inner: &mut inner,
        fails: || true,
    };
    let policy = HealPolicy {
        max_attempts: 3,
        ..HealPolicy::default()
    };
    let heal = sink.controller.heal_all(policy, &mut always_fail);
    assert!(heal.healed.is_empty());
    assert_eq!(heal.quarantined.len(), localized, "every loop gave up");
    assert_eq!(heal.retries, 2 * localized as u64, "3 attempts each");
    assert!(!heal.fully_healed());
    for nodes in &heal.quarantined {
        assert!(sink.controller.is_quarantined(nodes));
    }

    // Idempotence: a second pass re-attempts nothing.
    let again = sink.controller.heal_all(policy, &mut always_fail);
    assert_eq!(again.attempts, 0);
    assert_eq!(again.already_quarantined, localized as u64);

    // Degraded mode: drop the trapped flows at ingress instead.
    let trapped = SyntheticSource::new(32, 8, 2_000, 1, 0, 13).looping_flow_keys();
    assert_eq!(trapped.len(), 8, "every flow loops in this source");
    let degraded = run(trapped);
    assert!(!degraded.loop_detected(), "no loop traffic reaches workers");
    assert_eq!(degraded.quarantined, 2_000);
    assert!(degraded.accounted());
}

/// One synthetic loop event per (flow, seq).
fn event(flow_index: u32, seq: u64) -> LoopEvent {
    LoopEvent {
        flow: FlowKey::synthetic(1, 2, flow_index),
        seq,
        shard: 0,
        trigger: 110,
        hop: 4,
        members: vec![110, 111 + flow_index],
        complete: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Aggregator dedupe under the faults the injector produces on the
    /// event channel: arbitrary duplication and arbitrary reordering.
    /// Whatever arrives, the aggregator must report each flow exactly
    /// once, count every arrival, and attribute the surviving event to
    /// the first arrival of its flow.
    #[test]
    fn aggregator_dedupe_survives_duplication_and_reordering(
        flows in prop::collection::vec(0u32..12, 1..40),
        dup_mask in prop::collection::vec(any::<bool>(), 40),
        shuffle_seed in any::<u64>(),
    ) {
        // Base stream: one event per entry, seq = position; duplicated
        // entries appear twice (what EventFate::Duplicate does).
        let mut stream: Vec<LoopEvent> = Vec::new();
        for (i, &f) in flows.iter().enumerate() {
            let ev = event(f, i as u64);
            if dup_mask[i % dup_mask.len()] {
                stream.push(ev.clone());
            }
            stream.push(ev);
        }
        // Reorder arbitrarily (cross-shard arrival order is unspecified).
        let mut rng = unroller_core::test_rng(shuffle_seed);
        for i in (1..stream.len()).rev() {
            stream.swap(i, rng.gen_range(0..=i));
        }

        let sent = stream.len() as u64;
        let distinct: std::collections::HashSet<FlowKey> =
            stream.iter().map(|e| e.flow).collect();
        let first_arrival: std::collections::HashMap<FlowKey, u64> = stream
            .iter()
            .enumerate()
            .rev()
            .map(|(pos, e)| (e.flow, pos as u64))
            .collect();

        let (tx, rx) = std::sync::mpsc::channel();
        for ev in &stream {
            tx.send(ev.clone()).unwrap();
        }
        drop(tx);
        let report = aggregate(rx);

        prop_assert_eq!(report.events_received, sent);
        prop_assert_eq!(report.unique_flows, distinct.len() as u64);
        prop_assert_eq!(
            report.duplicates_suppressed,
            sent - distinct.len() as u64
        );
        prop_assert_eq!(report.events.len(), distinct.len());
        // Exactly one event per flow, and it is the first that arrived.
        let mut reported: std::collections::HashSet<FlowKey> = Default::default();
        for ev in &report.events {
            prop_assert!(reported.insert(ev.flow), "flow reported twice");
            let first_pos = first_arrival[&ev.flow];
            let first_ev = &stream[first_pos as usize];
            prop_assert_eq!(ev.seq, first_ev.seq, "kept the first arrival");
        }
        prop_assert_eq!(reported, distinct);
    }
}
