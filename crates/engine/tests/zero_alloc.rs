//! Proves the generated-traffic hot loop allocates nothing per packet.
//!
//! A counting `GlobalAlloc` wrapper tallies every allocation in the
//! process; the engine is then run twice over identical no-loop
//! synthetic traffic at 2 000 and 12 000 packets. Everything per-run is
//! constant (rings, staging buffers, worker scratch, threads), so if
//! the per-packet path is allocation-free the two counts are *equal* —
//! any per-packet Box, Vec growth, or clone shows up as a count delta
//! proportional to the extra 10 000 packets.
//!
//! The lib crate denies `unsafe_code`; this test file opts back in only
//! for the `GlobalAlloc` impl (the trait itself is unsafe to
//! implement), which does nothing beyond counting and delegating to
//! [`System`].

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use unroller_engine::{Engine, EngineConfig, FullPolicy, SyntheticSource};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count of one single-shard engine run over `packets`
/// no-loop synthetic packets. Source and engine construction happen
/// outside the measured window; only `run` is counted.
fn allocs_for_run(packets: u64) -> u64 {
    let ids: Vec<u32> = (0..16).map(|i| 100 + i).collect();
    let engine = Engine::new(
        EngineConfig {
            shards: 1,
            full_policy: FullPolicy::Block,
            ..Default::default()
        },
        &ids,
    )
    .expect("engine construction");
    let mut source = SyntheticSource::new(16, 8, packets, 0, 0, 9);
    let before = ALLOCS.load(Ordering::Relaxed);
    let report = engine.run(&mut source).expect("engine run");
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(report.accounted(), "accounting invariant");
    assert_eq!(report.processed(), packets, "every packet processed");
    after - before
}

/// One test only: concurrent tests in the same binary would tally
/// their allocations into the shared counter.
#[test]
fn generated_traffic_hot_loop_allocates_nothing_per_packet() {
    // Warm up once so lazily-initialized runtime state (TLS, stdio
    // locks, thread bookkeeping) is paid before measurement.
    let _ = allocs_for_run(500);
    let small = allocs_for_run(2_000);
    let large = allocs_for_run(12_000);
    // A handful of allocations vary run-to-run with thread timing
    // (lazy TLS / parking bookkeeping, paid once per run, not per
    // packet) — so the bound is a small constant, not exact equality.
    // A single per-packet allocation would add at least 10 000.
    let delta = large.abs_diff(small);
    assert!(
        delta <= 8,
        "10 000 extra packets must not allocate: {small} allocs at 2k vs {large} at 12k"
    );
}
