//! Live-churn integration tests: epoch reclamation under arbitrary
//! reader/writer interleavings, and the engine processing an update
//! storm — with and without worker panics — scored against the live
//! forwarding-state oracle.

use proptest::prelude::*;
use std::sync::Arc;
use unroller_engine::{
    ChurnPlan, ChurnSource, Engine, EngineConfig, EpochRouteTable, FaultPlan, FullPolicy, PathSpec,
    RouteReader, RouteSet,
};
use unroller_topology::generators::ring;

/// A route set whose length encodes the generation that published it,
/// so a reader's `(generation, routes)` pair can be checked for
/// coherence from outside.
fn tagged_set(generation: u64) -> Arc<RouteSet> {
    let specs: Vec<PathSpec> = (0..generation)
        .map(|i| PathSpec::linear(vec![i as usize, i as usize + 1]))
        .collect();
    RouteSet::from_specs(specs.iter())
}

/// One epoch-table operation in a model-checked interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Writer publishes the next generation.
    Publish,
    /// Reader in slot `i` (mod capacity) catches up to the current
    /// generation.
    Refresh(usize),
    /// Reader in slot `i` quiesces for good (dropped).
    Drop(usize),
    /// A new reader registers in the first free slot.
    Register,
    /// Explicit reclamation pass (publish also reclaims).
    Reclaim,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted choice by hand (the vendored proptest has no
    // `prop_oneof`): publishes and refreshes dominate, drops and
    // reclaims salt the sequence.
    (0u8..10, 0usize..4).prop_map(|(kind, i)| match kind {
        0..=2 => Op::Publish,
        3..=5 => Op::Refresh(i),
        6 => Op::Drop(i),
        7 | 8 => Op::Register,
        _ => Op::Reclaim,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Model-checked reclamation: under any interleaving of publishes,
    /// refreshes, reader registration, and reader drops —
    ///
    /// 1. every live reader always holds the route set its pinned
    ///    generation claims (no reader ever observes a torn or
    ///    reclaimed generation),
    /// 2. a reader's generation never runs ahead of the published one,
    /// 3. retention is bounded by the oldest pinned generation: once
    ///    every reader catches up (or quiesces), everything older than
    ///    the current generation is freed.
    #[test]
    fn reclamation_is_safe_and_bounded_under_any_interleaving(
        ops in prop::collection::vec(op_strategy(), 1..80),
    ) {
        let table = Arc::new(EpochRouteTable::new(tagged_set(1)));
        let mut published: u64 = 1;
        let mut slots: Vec<Option<RouteReader>> = vec![None, None, None, None];
        slots[0] = Some(table.reader());

        for op in ops {
            match op {
                Op::Publish => {
                    published += 1;
                    let generation = table.publish(tagged_set(published));
                    prop_assert_eq!(generation, published);
                }
                Op::Refresh(i) => {
                    if let Some(reader) = slots[i % 4].as_mut() {
                        let before = reader.generation();
                        let moved = reader.refresh();
                        prop_assert_eq!(
                            moved.is_some(),
                            before != published,
                            "refresh reports a swap iff one was pending"
                        );
                    }
                }
                Op::Drop(i) => {
                    slots[i % 4] = None;
                }
                Op::Register => {
                    if let Some(free) = slots.iter_mut().find(|s| s.is_none()) {
                        *free = Some(table.reader());
                    }
                }
                Op::Reclaim => {
                    table.try_reclaim();
                }
            }
            // Invariants 1 and 2, after every single operation.
            let mut oldest_pinned = published;
            for reader in slots.iter().flatten() {
                let generation = reader.generation();
                prop_assert!(generation <= published);
                prop_assert_eq!(
                    reader.routes().len() as u64,
                    generation,
                    "reader holds the route set its generation claims"
                );
                prop_assert!(
                    reader.table().publish_ns(generation).is_some(),
                    "a pinned generation keeps its publish timestamp"
                );
                oldest_pinned = oldest_pinned.min(generation);
            }
            // Invariant 3: nothing older than the oldest pin survives a
            // reclamation pass, so retention is bounded by reader lag.
            table.try_reclaim();
            prop_assert!(
                (table.retained() as u64) <= published.saturating_sub(oldest_pinned),
                "retained {} generations with oldest pin {} of {}",
                table.retained(),
                oldest_pinned,
                published
            );
        }

        // Once every reader quiesces, every retired generation frees.
        slots.iter_mut().for_each(|s| *s = None);
        table.try_reclaim();
        prop_assert_eq!(table.retained(), 0);
    }
}

/// The headline live-churn run, fault-free: an update storm publishes
/// generations mid-traffic, the live oracle accumulates the
/// ever-trapped flow set, and the engine detects every one of them —
/// recall 1.0 — while staying fully accounted.
#[test]
fn churn_run_detects_every_trapped_flow() {
    let plan = ChurnPlan::parse("rate=500,seed=7,links=3").unwrap();
    let mut source = ChurnSource::new(ring(16), &plan, 16, 100_000);
    let table = source.table();
    let engine = Engine::new(
        EngineConfig {
            shards: 2,
            ring_capacity: 512,
            full_policy: FullPolicy::Block,
            ..EngineConfig::default()
        },
        &(0..16).map(|i| 100 + i).collect::<Vec<u32>>(),
    )
    .unwrap();
    let report = engine.run(&mut source).expect("churn run completes");

    assert!(report.accounted(), "accounting holds under churn");
    source.oracle_check().expect("oracle mirror stays in sync");
    assert!(
        source.generations_published() >= 3,
        "the storm published mid-run generations"
    );
    let trapped = source.looping_flow_keys();
    assert!(
        !trapped.is_empty(),
        "count-to-infinity trapped at least one flow"
    );
    let detected: std::collections::HashSet<_> =
        report.aggregator.events.iter().map(|e| e.flow).collect();
    for flow in &trapped {
        assert!(
            detected.contains(flow),
            "live oracle recall must be 1.0; missed {flow:?}"
        );
    }
    let loops_after_swap: u64 = report
        .shard_snapshots
        .iter()
        .map(|s| s.loops_after_swap)
        .sum();
    assert!(
        loops_after_swap > 0,
        "loops were detected on generations published after traffic started"
    );
    let swaps: u64 = report
        .shard_snapshots
        .iter()
        .map(|s| s.route_swaps_observed)
        .sum();
    assert!(swaps > 0, "workers observed the swaps");
    // Old generations were reclaimed while traffic flowed.
    assert!(table.reclaimed() > 0);
    assert!(table.retained() <= 1);
}

/// Chaos: the same storm with seeded worker panics on top. Workers die
/// mid-batch and restart onto the *current* generation; the run still
/// completes, still accounts for every packet (processed + panic-lost),
/// and still detects every flow the live oracle ever saw trapped.
#[test]
fn churn_survives_worker_panics_with_full_recall() {
    let churn = ChurnPlan::parse("rate=500,seed=11,links=3").unwrap();
    let mut source = ChurnSource::new(ring(16), &churn, 16, 100_000);
    let faults = FaultPlan {
        seed: 23,
        panic_rate: 0.0005,
        ..FaultPlan::default()
    };
    let engine = Engine::new(
        EngineConfig {
            shards: 2,
            ring_capacity: 512,
            full_policy: FullPolicy::Block,
            faults,
            ..EngineConfig::default()
        },
        &(0..16).map(|i| 100 + i).collect::<Vec<u32>>(),
    )
    .unwrap();
    let report = engine.run(&mut source).expect("chaos churn run completes");

    assert!(report.restarts() > 0, "the panic rate fired");
    assert!(report.panic_lost() > 0);
    assert!(report.accounted(), "accounting holds under churn + panics");
    source.oracle_check().expect("oracle mirror stays in sync");

    let trapped = source.looping_flow_keys();
    assert!(!trapped.is_empty());
    let detected: std::collections::HashSet<_> =
        report.aggregator.events.iter().map(|e| e.flow).collect();
    for flow in &trapped {
        assert!(
            detected.contains(flow),
            "recall must survive worker panics; missed {flow:?}"
        );
    }
}
