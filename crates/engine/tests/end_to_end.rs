//! End-to-end engine tests: simulator-routed traffic with a routing
//! loop injected mid-stream, processed by a multi-shard engine, with
//! the resulting membership reports localized by the controller — the
//! full detect → report → localize chain at engine scale.

use unroller_control::Controller;
use unroller_engine::{
    aggregate::deliver, ControllerSink, Engine, EngineConfig, FullPolicy, LoopInjection,
    ReplaySource,
};
use unroller_sim::{NullDetector, SimConfig, Simulator};
use unroller_topology::generators::ring;
use unroller_topology::ids::assign_sequential_ids;

const NODES: usize = 16;

fn sim() -> Simulator<NullDetector> {
    let graph = ring(NODES);
    let ids = assign_sequential_ids(NODES, 100);
    Simulator::new(graph, ids, NullDetector, SimConfig::default())
}

#[test]
fn multi_shard_engine_detects_injected_loop_end_to_end() {
    let mut sim = sim();
    let injection = LoopInjection {
        cycle: vec![2, 3],
        dst: 8,
        at_packet: 2_000,
    };
    let mut source = ReplaySource::from_sim(&mut sim, 24, 10_000, Some(&injection), 5);
    assert!(source.any_looping_flow());

    let ids = sim.ids().to_vec();
    let engine = Engine::new(
        EngineConfig {
            shards: 2,
            full_policy: FullPolicy::Block,
            ..EngineConfig::default()
        },
        &ids,
    )
    .unwrap();
    let report = engine.run(&mut source).expect("fault-free run");

    // Every packet accounted for, spread over both shards.
    assert_eq!(report.offered, 10_000);
    assert!(report.accounted(), "{report:?}");
    assert!(
        report.shard_snapshots.iter().all(|s| s.packets > 0),
        "24 flows must reach both shards"
    );

    // The loop is detected: flows trapped by the poisoned tables stop
    // being delivered and raise (deduplicated) loop events instead.
    assert!(report.loop_detected());
    assert!(report.aggregator.duplicates_suppressed > 0);
    let delivered: u64 = report.shard_snapshots.iter().map(|s| s.delivered).sum();
    assert!(delivered > 0, "untouched flows still deliver");

    // Membership reports localize to exactly the injected cycle.
    let mut sink = ControllerSink::new(Controller::new(&ids));
    deliver(&report.aggregator.events, &mut sink);
    let loops = sink.controller.localized_loops();
    assert_eq!(loops.len(), 1, "one distinct loop: {loops:?}");
    let mut nodes = loops[0].nodes.clone();
    nodes.sort_unstable();
    assert_eq!(nodes, vec![2, 3], "localized to the injected cycle");
    assert!(sink.controller.total_reports() >= 1);
    assert_eq!(sink.controller.unresolved_reports, 0);

    // Healing the simulator restores delivery for the poisoned flows.
    sink.controller.heal(&mut sim);
    let healed = sim.route(2, 8);
    assert_eq!(*healed.last().unwrap(), 8, "route reaches dst after heal");
}

#[test]
fn shard_counts_agree_on_what_is_detected() {
    // Detection is a per-flow property; the shard count is an
    // execution detail and must not change the outcome.
    let run = |shards: usize| {
        let mut sim = sim();
        let injection = LoopInjection {
            cycle: vec![5, 6],
            dst: 12,
            at_packet: 1_000,
        };
        let mut source = ReplaySource::from_sim(&mut sim, 16, 6_000, Some(&injection), 9);
        let engine = Engine::new(
            EngineConfig {
                shards,
                full_policy: FullPolicy::Block,
                ..EngineConfig::default()
            },
            sim.ids(),
        )
        .unwrap();
        let report = engine.run(&mut source).expect("fault-free run");
        let mut flows: Vec<_> = report
            .aggregator
            .events
            .iter()
            .map(|e| (e.flow.rss_hash(), e.seq))
            .collect();
        flows.sort_unstable();
        flows
    };
    let single = run(1);
    assert!(!single.is_empty());
    assert_eq!(single, run(2), "1 vs 2 shards");
    assert_eq!(single, run(4), "1 vs 4 shards");
}

#[test]
fn no_injection_means_no_reports() {
    let mut sim = sim();
    let mut source = ReplaySource::from_sim(&mut sim, 8, 3_000, None, 2);
    let engine = Engine::new(
        EngineConfig {
            shards: 2,
            full_policy: FullPolicy::Block,
            ..EngineConfig::default()
        },
        sim.ids(),
    )
    .unwrap();
    let report = engine.run(&mut source).expect("fault-free run");
    assert!(!report.loop_detected());
    assert_eq!(report.aggregator.events_received, 0);
    let delivered: u64 = report.shard_snapshots.iter().map(|s| s.delivered).sum();
    assert_eq!(delivered, 3_000, "clean traffic all delivers");
    assert!(report.accounted());
}

#[test]
fn drop_policy_backpressure_is_fully_accounted() {
    let mut sim = sim();
    let injection = LoopInjection {
        cycle: vec![2, 3],
        dst: 8,
        at_packet: 500,
    };
    let mut source = ReplaySource::from_sim(&mut sim, 16, 8_000, Some(&injection), 7);
    let engine = Engine::new(
        EngineConfig {
            shards: 2,
            ring_capacity: 2,
            batch_size: 1,
            full_policy: FullPolicy::Drop,
            ..EngineConfig::default()
        },
        sim.ids(),
    )
    .unwrap();
    let report = engine.run(&mut source).expect("fault-free run");
    assert!(report.accounted(), "drops counted, never silent");
    assert_eq!(report.processed() + report.dropped_full(), 8_000);
    // The JSON export carries the backpressure counters.
    let rendered = report.to_json().render();
    assert!(rendered.contains("dropped_full"));
    assert!(rendered.contains("stalls"));
}
