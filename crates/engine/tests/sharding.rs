//! Property-based tests of the RSS flow-sharding invariants:
//!
//! * determinism — the same 5-tuple always maps to the same shard;
//! * range — the shard index is always in bounds;
//! * affinity under growth — remapping only happens when the shard
//!   count changes, never between identical calls;
//! * balance — across many random flows every shard's load stays
//!   within 2× of the uniform share.

use proptest::prelude::*;
use rand::Rng;
use unroller_engine::FlowKey;

fn flow_strategy() -> impl Strategy<Value = FlowKey> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
    )
        .prop_map(|(src_ip, dst_ip, src_port, dst_port, proto)| FlowKey {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The flow-affinity invariant the whole engine rests on: one
    /// tuple, one shard, every time.
    #[test]
    fn same_tuple_same_shard(flow in flow_strategy(), shards in 1usize..=64) {
        let first = flow.shard(shards);
        prop_assert!(first < shards);
        for _ in 0..8 {
            prop_assert_eq!(flow.shard(shards), first);
        }
        // The hash itself is stable too (the shard is derived from it).
        prop_assert_eq!(flow.rss_hash(), flow.rss_hash());
    }

    /// Packets of one flow never straddle shards even when computed
    /// from independently-constructed (equal) keys.
    #[test]
    fn equal_keys_agree(flow in flow_strategy(), shards in 1usize..=16) {
        let copy = FlowKey { ..flow };
        prop_assert_eq!(copy.shard(shards), flow.shard(shards));
    }

    /// Distribution: for a batch of random flows, every shard receives
    /// within a factor of two of the uniform share.
    #[test]
    fn load_within_two_of_uniform(seed in any::<u64>(), shards in 2usize..=8) {
        let mut rng = unroller_core::test_rng(seed);
        let flows = 4096usize;
        let mut counts = vec![0u64; shards];
        for _ in 0..flows {
            let flow = FlowKey {
                src_ip: rng.gen(),
                dst_ip: rng.gen(),
                src_port: rng.gen(),
                dst_port: rng.gen(),
                proto: rng.gen(),
            };
            counts[flow.shard(shards)] += 1;
        }
        let mean = flows as f64 / shards as f64;
        for (shard, &count) in counts.iter().enumerate() {
            prop_assert!(
                (count as f64) < 2.0 * mean && (count as f64) > mean / 2.0,
                "shard {} of {} got {} flows (uniform share {})",
                shard, shards, count, mean
            );
        }
    }
}
