//! Memoization equivalence tests: the per-route verdict cache and the
//! hop-stepped lane pool are pure performance features — every counter
//! a walked run produces (delivered, TTL drops, loop events, hop
//! totals, route errors) must be reproduced exactly with them enabled,
//! across detector parameter space, random route shapes, carried
//! frames with arbitrary in-flight shim state, and live route churn.
//!
//! The bit-exactness claim itself is enforced by running the memo in
//! paranoid mode (`sample_every: 1`): every cache hit re-walks the
//! packet and compares verdict *and* final shim bytes against the
//! cached entry, counting any mismatch in `memo_divergence` — which
//! these tests pin to zero.

use proptest::prelude::*;
use rand::Rng;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use unroller_core::UnrollerParams;
use unroller_dataplane::parser::build_frame;
use unroller_dataplane::{
    EthernetHeader, HeaderLayout, UnrollerPipeline, WireHeader, ETH_HEADER_LEN,
};
use unroller_engine::faults::EventFaults;
use unroller_engine::metrics::{ShardMetrics, ShardSnapshot};
use unroller_engine::ring::{ring, FullPolicy};
use unroller_engine::worker::ShardWorker;
use unroller_engine::{
    ChurnPlan, ChurnSource, Engine, EngineConfig, EnginePacket, EngineReport, EpochRouteTable,
    FlowKey, LoopInjection, MemoConfig, PathSpec, ReplaySource, RouteId, RouteSet,
};
use unroller_sim::{NullDetector, SimConfig, Simulator};
use unroller_topology::generators::ring as ring_topology;
use unroller_topology::ids::assign_sequential_ids;

/// Outcome counters that must be identical between a walked run and
/// any memoized/stepped run of the same traffic.
fn outcome_totals(report: &EngineReport) -> (u64, u64, u64, u64, u64, u64) {
    let sum = |f: fn(&ShardSnapshot) -> u64| report.shard_snapshots.iter().map(f).sum();
    (
        sum(|s| s.delivered),
        sum(|s| s.ttl_dropped),
        sum(|s| s.loop_events),
        sum(|s| s.route_errors),
        sum(|s| s.frame_errors),
        sum(|s| s.hops),
    )
}

/// One engine run over simulator-routed ring traffic with a loop
/// injected mid-stream, under the given detector params and memo mode.
fn engine_run(
    params: UnrollerParams,
    seed: u64,
    memo: Option<MemoConfig>,
    stepped: bool,
) -> EngineReport {
    const NODES: usize = 16;
    let mut sim = Simulator::new(
        ring_topology(NODES),
        assign_sequential_ids(NODES, 100),
        NullDetector,
        SimConfig::default(),
    );
    let injection = LoopInjection {
        cycle: vec![2, 3],
        dst: 8,
        at_packet: 1_000,
    };
    let mut source = ReplaySource::from_sim(&mut sim, 24, 6_000, Some(&injection), seed);
    let engine = Engine::new(
        EngineConfig {
            shards: 2,
            full_policy: FullPolicy::Block,
            params,
            memo,
            stepped,
            ..EngineConfig::default()
        },
        sim.ids(),
    )
    .unwrap();
    engine.run(&mut source).expect("fault-free run")
}

#[test]
fn memoized_and_stepped_engine_runs_match_walked_runs() {
    for params in [
        UnrollerParams::default(),
        UnrollerParams::default().with_z(7).with_th(4),
        UnrollerParams::default().with_c(2).with_h(2).with_z(12),
    ] {
        for seed in [5, 11] {
            let walked = engine_run(params, seed, None, false);
            assert!(walked.loop_detected());
            assert!(walked.accounted());
            assert!(!walked.memo_enabled);
            // Which packet first detects each flow's loop is part of
            // the contract for sequential modes (stepped drains reorder
            // within a batch, so they are held to flow-set equality).
            let mut walked_events: Vec<(u64, u64)> = walked
                .aggregator
                .events
                .iter()
                .map(|e| (e.flow.rss_hash(), e.seq))
                .collect();
            // Sorted: the aggregator interleaves the two shards'
            // event streams nondeterministically.
            walked_events.sort_unstable();
            let walked_flows: std::collections::BTreeSet<u64> =
                walked_events.iter().map(|&(f, _)| f).collect();
            for (name, memo, stepped) in [
                ("stepped", None, true),
                ("memo-paranoid", Some(MemoConfig { sample_every: 1 }), false),
                (
                    "memo-unsampled",
                    Some(MemoConfig { sample_every: 0 }),
                    false,
                ),
                (
                    "memo+stepped",
                    Some(MemoConfig {
                        sample_every: unroller_engine::DEFAULT_SAMPLE_EVERY,
                    }),
                    true,
                ),
            ] {
                let run = engine_run(params, seed, memo, stepped);
                assert!(run.accounted(), "{name}: accounted");
                assert_eq!(
                    outcome_totals(&run),
                    outcome_totals(&walked),
                    "{name}: outcome counters diverged from the walked run"
                );
                assert_eq!(run.memo_divergence(), 0, "{name}: divergence");
                if memo.is_some() {
                    assert!(run.memo_enabled);
                    assert!(run.memo_hits() > 0, "{name}: the cache was exercised");
                } else {
                    assert_eq!(run.memo_hits() + run.memo_misses(), 0, "{name}");
                }
                let flows: std::collections::BTreeSet<u64> = run
                    .aggregator
                    .events
                    .iter()
                    .map(|e| e.flow.rss_hash())
                    .collect();
                assert_eq!(flows, walked_flows, "{name}: detected flow set");
                if !stepped {
                    let mut events: Vec<(u64, u64)> = run
                        .aggregator
                        .events
                        .iter()
                        .map(|e| (e.flow.rss_hash(), e.seq))
                        .collect();
                    events.sort_unstable();
                    assert_eq!(
                        events, walked_events,
                        "{name}: first-detection packets diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn churn_storm_with_memo_keeps_full_recall_and_never_diverges() {
    // The worst case for the cache: a control-plane update storm swaps
    // route generations mid-traffic, reusing `RouteId` slots for
    // entirely different paths. Recall against the live oracle must
    // stay 1.0 and the sampled cross-checks must never fire.
    let plan = ChurnPlan::parse("rate=500,seed=7,links=3").unwrap();
    let mut source = ChurnSource::new(ring_topology(16), &plan, 16, 100_000);
    let engine = Engine::new(
        EngineConfig {
            shards: 2,
            ring_capacity: 512,
            full_policy: FullPolicy::Block,
            memo: Some(MemoConfig { sample_every: 2 }),
            stepped: true,
            ..EngineConfig::default()
        },
        &(0..16).map(|i| 100 + i).collect::<Vec<u32>>(),
    )
    .unwrap();
    let report = engine.run(&mut source).expect("churn run completes");

    assert!(report.accounted(), "accounting holds under churn");
    source.oracle_check().expect("oracle mirror stays in sync");
    let trapped = source.looping_flow_keys();
    assert!(!trapped.is_empty(), "the storm trapped at least one flow");
    let detected: std::collections::HashSet<_> =
        report.aggregator.events.iter().map(|e| e.flow).collect();
    for flow in &trapped {
        assert!(
            detected.contains(flow),
            "memoized recall must be 1.0; missed {flow:?}"
        );
    }
    let swaps: u64 = report
        .shard_snapshots
        .iter()
        .map(|s| s.route_swaps_observed)
        .sum();
    assert!(swaps > 0, "workers observed the swaps");
    assert_eq!(report.memo_divergence(), 0);
    assert!(report.memo_hits() > 0, "steady state hit the cache");
    assert!(report.memo_sampled_walks() > 0, "cross-checks actually ran");
    assert!(
        report.memo_misses() > 1,
        "each observed generation re-warms the cache"
    );
}

/// A standalone worker over an arbitrary route set, for twin-run
/// comparisons the engine's traffic sources cannot express (routes
/// with invalid hops, carried frames with arbitrary shim state).
fn run_worker(
    params: UnrollerParams,
    nodes: usize,
    max_hops: u32,
    routes: &Arc<RouteSet>,
    packets: &[EnginePacket],
    memo: Option<MemoConfig>,
    stepped: bool,
) -> ShardSnapshot {
    let ids: Arc<[u32]> = (0..nodes as u32).map(|i| 100 + i).collect();
    let pipelines = Arc::new(
        ids.iter()
            .map(|&id| UnrollerPipeline::new(id, params).expect("valid params"))
            .collect::<Vec<_>>(),
    );
    let (producer, consumer, _) = ring(512, FullPolicy::Block);
    let (ev_tx, ev_rx) = std::sync::mpsc::channel();
    let worker = ShardWorker {
        shard: 0,
        pipelines,
        ids,
        routes: Arc::new(EpochRouteTable::new(routes.clone())).reader(),
        layout: HeaderLayout::from_params(&params),
        max_hops,
        batch_size: 8,
        metrics: Arc::new(ShardMetrics::default()),
        events: ev_tx,
        consumer,
        faults: None,
        event_faults: EventFaults::inactive(),
        kick: Arc::new(AtomicBool::new(false)),
        pin_core: None,
        memo,
        stepped,
    };
    for p in packets {
        producer.push(EnginePacket {
            flow: p.flow,
            seq: p.seq,
            route: p.route,
            frame: p.frame.clone(),
        });
    }
    drop(producer);
    let metrics = worker.metrics.clone();
    worker.run();
    drop(ev_rx);
    metrics.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random routes (valid, looping, out-of-range hops) × detector
    /// params × initial shim states: paranoid-mode memoization
    /// (`sample_every: 1`) re-walks every cache hit and bit-compares
    /// verdict and final shim bytes, so `memo_divergence == 0` here IS
    /// the proof that the cached fast path is exact — on top of the
    /// twin-run counter equality against a memo-free worker.
    #[test]
    fn random_routes_params_and_shims_stay_bit_exact(
        seed in 0u64..1_000_000,
        params_idx in 0usize..4,
        stepped in 0usize..2,
    ) {
        let params = [
            UnrollerParams::default(),
            UnrollerParams::default().with_z(7).with_th(4),
            UnrollerParams::default().with_c(2).with_h(2).with_z(12),
            UnrollerParams::default().with_b(3).with_th(2),
        ][params_idx];
        let stepped = stepped == 1;
        let layout = HeaderLayout::from_params(&params);
        let mut rng = unroller_core::test_rng(seed);
        let nodes = rng.gen_range(4..12usize);
        let max_hops = rng.gen_range(4..32u32);

        // Random path shapes; hops occasionally land outside the
        // provisioned node set so the route-error path is exercised.
        let route_count = rng.gen_range(2..8usize);
        let specs: Vec<PathSpec> = (0..route_count)
            .map(|_| {
                let hop = |rng: &mut rand::rngs::StdRng| rng.gen_range(0..nodes + 2);
                let pre: Vec<usize> =
                    (0..rng.gen_range(1..8usize)).map(|_| hop(&mut rng)).collect();
                if rng.gen_range(0..3usize) == 0 {
                    let cycle: Vec<usize> =
                        (0..rng.gen_range(1..5usize)).map(|_| hop(&mut rng)).collect();
                    PathSpec::looping(pre, cycle)
                } else {
                    PathSpec::linear(pre)
                }
            })
            .collect();
        let routes = RouteSet::from_specs(&specs);

        let packets: Vec<EnginePacket> = (0..rng.gen_range(40..120u64))
            .map(|seq| {
                let slot = rng.gen_range(0..route_count);
                // One packet in five is a carried frame with a fully
                // random in-flight shim — it must bypass the cache and
                // be walked in its own bytes.
                let frame = (rng.gen_range(0..5usize) == 0).then(|| {
                    let mut f = build_frame(
                        &layout,
                        &EthernetHeader::for_hosts(0, 1),
                        &WireHeader::initial(&layout),
                        b"carried",
                    );
                    for b in &mut f[ETH_HEADER_LEN..ETH_HEADER_LEN + layout.total_bytes()] {
                        *b = rng.gen::<u32>() as u8;
                    }
                    f.into_boxed_slice()
                });
                EnginePacket {
                    flow: FlowKey::synthetic(0, 1, 0),
                    seq,
                    route: RouteId::from_index(slot),
                    frame,
                }
            })
            .collect();

        let walked = run_worker(params, nodes, max_hops, &routes, &packets, None, false);
        let memoized = run_worker(
            params,
            nodes,
            max_hops,
            &routes,
            &packets,
            Some(MemoConfig { sample_every: 1 }),
            stepped,
        );
        prop_assert_eq!(memoized.packets, walked.packets);
        prop_assert_eq!(memoized.delivered, walked.delivered);
        prop_assert_eq!(memoized.ttl_dropped, walked.ttl_dropped);
        prop_assert_eq!(memoized.loop_events, walked.loop_events);
        prop_assert_eq!(memoized.route_errors, walked.route_errors);
        prop_assert_eq!(memoized.frame_errors, walked.frame_errors);
        prop_assert_eq!(memoized.hops, walked.hops);
        prop_assert_eq!(memoized.memo_divergence, 0);
        prop_assert_eq!(
            memoized.memo_sampled_walks,
            memoized.memo_hits,
            "paranoid mode cross-checks every hit"
        );
        // Carried frames never touch the cache: lookups account for
        // exactly the generated packets.
        let generated = packets.iter().filter(|p| p.frame.is_none()).count() as u64;
        prop_assert_eq!(memoized.memo_hits + memoized.memo_misses, generated);
    }
}
