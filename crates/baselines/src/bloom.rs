//! An in-packet Bloom filter encoding the set of visited switches (§3,
//! §5 "an especially crafted approach that adds a Bloom Filter into
//! packets to store switch IDs").
//!
//! Each switch queries the filter for its own ID — a positive answer
//! reports a loop — and then inserts itself. Detection is immediate (the
//! first revisited switch always queries positive, so there are no false
//! negatives), the overhead is a constant `m` bits, but *any* hop may
//! suffer a false positive with probability governed by `m`, the number
//! of hash functions `k`, and how many switches were inserted so far.
//! Table 5 searches for the minimum `m` with zero observed false
//! positives — Unroller needs 6–100× fewer bits.

use unroller_core::hashing::{HashFamily, HashKind};
use unroller_core::profile::{Category, DetectorProfile, OverheadLevel};
use unroller_core::{InPacketDetector, SwitchId, Verdict};

/// The Bloom-filter in-packet loop detector.
#[derive(Debug, Clone)]
pub struct BloomFilterDetector {
    /// Filter size in bits.
    m: u32,
    /// Number of hash functions.
    k: u32,
    hashes: HashFamily,
}

/// The packet-carried filter: `m` bits packed into words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomState {
    words: Vec<u64>,
}

impl BloomFilterDetector {
    /// Creates a filter of `m` bits with `k` hash functions, seeded so
    /// every switch evaluates the same functions.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `k == 0`.
    pub fn new(m: u32, k: u32, seed: u64) -> Self {
        assert!(m >= 1, "filter needs at least one bit");
        assert!(k >= 1, "filter needs at least one hash function");
        BloomFilterDetector {
            m,
            k,
            hashes: HashFamily::new(HashKind::SplitMix, k, seed),
        }
    }

    /// Creates a filter sized for `expected` insertions using the
    /// text-book optimal hash count `k = max(1, round((m/n)·ln 2))`.
    pub fn with_optimal_k(m: u32, expected: u32, seed: u64) -> Self {
        let n = expected.max(1) as f64;
        let k = ((m as f64 / n) * std::f64::consts::LN_2).round().max(1.0) as u32;
        Self::new(m, k, seed)
    }

    /// Filter size in bits (`m`).
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of hash functions (`k`).
    pub fn k(&self) -> u32 {
        self.k
    }

    #[inline]
    fn bit_index(&self, func: usize, switch: SwitchId) -> usize {
        (self.hashes.hash(func, switch) as u64 % self.m as u64) as usize
    }
}

impl InPacketDetector for BloomFilterDetector {
    type State = BloomState;

    fn name(&self) -> &'static str {
        "bloom"
    }

    fn init_state(&self) -> BloomState {
        BloomState {
            words: vec![0; (self.m as usize).div_ceil(64)],
        }
    }

    fn reset_state(&self, state: &mut BloomState) {
        state.words.fill(0);
    }

    fn on_switch(&self, st: &mut BloomState, switch: SwitchId) -> Verdict {
        // Query: all k bits set ⇒ (probably) visited before.
        let mut present = true;
        for f in 0..self.k as usize {
            let idx = self.bit_index(f, switch);
            if st.words[idx / 64] & (1u64 << (idx % 64)) == 0 {
                present = false;
                break;
            }
        }
        if present {
            return Verdict::LoopReported;
        }
        // Insert.
        for f in 0..self.k as usize {
            let idx = self.bit_index(f, switch);
            st.words[idx / 64] |= 1u64 << (idx % 64);
        }
        Verdict::Continue
    }

    fn overhead_bits(&self, _hops: u64) -> u64 {
        self.m as u64
    }

    fn profile(&self) -> DetectorProfile {
        DetectorProfile {
            name: "Bloom",
            category: Category::FullPathEncodingOnPackets,
            real_time: true,
            switch_overhead: OverheadLevel::Low,
            network_overhead: OverheadLevel::High,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unroller_core::walk::{run_detector, Walk};

    #[test]
    fn detects_at_first_revisit_when_large_enough() {
        // A generously sized filter detects exactly at hop X + 1.
        let bloom = BloomFilterDetector::new(4096, 3, 7);
        let mut rng = unroller_core::test_rng(31);
        for _ in 0..100 {
            let w = Walk::random(5, 10, &mut rng);
            let out = run_detector(&bloom, &w, 10_000);
            assert_eq!(out.reported_at, Some(w.x() as u64 + 1));
            assert!(out.true_positive);
        }
    }

    #[test]
    fn no_false_negatives_even_when_tiny() {
        // A too-small filter false-positives early, but never *misses*
        // a loop: reported_at is always Some on looping walks.
        let bloom = BloomFilterDetector::new(8, 1, 7);
        let mut rng = unroller_core::test_rng(32);
        for _ in 0..100 {
            let w = Walk::random(5, 10, &mut rng);
            let out = run_detector(&bloom, &w, 10_000);
            assert!(out.reported_at.is_some());
            assert!(out.reported_at.unwrap() <= w.x() as u64 + 1);
        }
    }

    #[test]
    fn small_filters_false_positive_on_loop_free_paths() {
        // With m = 16 bits and 20 distinct switches inserted, false
        // positives are essentially certain over many runs.
        let bloom = BloomFilterDetector::new(16, 1, 7);
        let mut rng = unroller_core::test_rng(33);
        let mut fps = 0;
        for _ in 0..200 {
            let w = Walk::random_loop_free(20, &mut rng);
            if run_detector(&bloom, &w, 10_000).false_positive() {
                fps += 1;
            }
        }
        assert!(fps > 150, "only {fps}/200 false positives");
    }

    #[test]
    fn large_filters_rarely_false_positive() {
        let bloom = BloomFilterDetector::new(2048, 3, 7);
        let mut rng = unroller_core::test_rng(34);
        let mut fps = 0;
        for _ in 0..500 {
            let w = Walk::random_loop_free(20, &mut rng);
            if run_detector(&bloom, &w, 10_000).false_positive() {
                fps += 1;
            }
        }
        assert!(fps <= 2, "{fps}/500 false positives with a 2 Kbit filter");
    }

    #[test]
    fn optimal_k_formula() {
        // m = 100, n = 10 → k = round(10 · 0.693) = 7.
        assert_eq!(BloomFilterDetector::with_optimal_k(100, 10, 0).k(), 7);
        // Tiny filters fall back to k = 1.
        assert_eq!(BloomFilterDetector::with_optimal_k(4, 100, 0).k(), 1);
    }

    #[test]
    fn overhead_is_constant_m() {
        let bloom = BloomFilterDetector::new(171, 2, 7);
        assert_eq!(bloom.overhead_bits(1), 171);
        assert_eq!(bloom.overhead_bits(1_000_000), 171);
    }

    #[test]
    fn degenerate_one_bit_filter() {
        // m = 1: the first insertion saturates the filter, so the second
        // distinct switch already queries positive — instant false
        // positive, documented behaviour of the degenerate extreme.
        let bloom = BloomFilterDetector::new(1, 1, 7);
        let mut st = bloom.init_state();
        assert_eq!(bloom.on_switch(&mut st, 1), Verdict::Continue);
        assert_eq!(bloom.on_switch(&mut st, 2), Verdict::LoopReported);
    }

    #[test]
    fn reset_clears_filter() {
        let bloom = BloomFilterDetector::new(64, 2, 7);
        let mut st = bloom.init_state();
        let _ = bloom.on_switch(&mut st, 9);
        bloom.reset_state(&mut st);
        assert_eq!(bloom.on_switch(&mut st, 9), Verdict::Continue);
    }
}
