//! # unroller-baselines
//!
//! The state-of-the-art in-packet loop detectors the paper compares
//! Unroller against (§2, §5), plus the ablation variant of §3.5, all
//! implementing the same
//! [`InPacketDetector`](unroller_core::InPacketDetector) trait as
//! Unroller itself:
//!
//! * [`int::IntPathRecorder`] — INT-style full path encoding: every
//!   switch appends its 4-byte ID; a switch seeing its own ID reports.
//!   Zero false positives, instant detection, per-packet overhead linear
//!   in the path length.
//! * [`bloom::BloomFilterDetector`] — a Bloom filter carried on the
//!   packet encodes the set of visited switches. Constant overhead,
//!   instant detection, false positives governed by the filter size.
//! * [`pathdump::PathDump`] — the OSDI'16 two-VLAN-tag trick: valid
//!   paths in FatTree/VL2-like topologies have at most one up→down turn,
//!   so needing a "third tag" (second turn) implies a loop. Fixed 64-bit
//!   overhead, but only applicable to layered data-center topologies.
//! * [`onswitch::FlowRegistry`] — the on-switch-state category
//!   (FlowRadar-style registries + periodic export): high switch SRAM,
//!   low network overhead, detection only at the epoch export.
//! * [`mirroring::Collector`] — the header-mirroring category
//!   (NetSight/Everflow postcards, trajectory sampling): detection at a
//!   collector, not in flight, with measurable postcard traffic.
//! * [`noreset::NoResetMin`] and [`noreset::ProbabilisticInsert`] — the
//!   §3.5 ablations showing why Unroller's phase resets matter: without
//!   them, identifiers recorded on the pre-loop path cause false
//!   negatives.
//!
//! ```
//! use unroller_baselines::int::IntPathRecorder;
//! use unroller_core::prelude::*;
//!
//! let int = IntPathRecorder::new();
//! let mut st = int.init_state();
//! assert_eq!(int.on_switch(&mut st, 1), Verdict::Continue);
//! assert_eq!(int.on_switch(&mut st, 2), Verdict::Continue);
//! assert_eq!(int.on_switch(&mut st, 1), Verdict::LoopReported);
//! // ...but the packet now carries 8B header + 2 recorded 4B IDs:
//! assert_eq!(int.overhead_bits(2), 64 + 2 * 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod int;
pub mod mirroring;
pub mod noreset;
pub mod onswitch;
pub mod pathdump;

pub use bloom::BloomFilterDetector;
pub use int::IntPathRecorder;
pub use mirroring::{Collector, LoopFinding, MirrorConfig};
pub use noreset::{NoResetMin, ProbabilisticInsert};
pub use onswitch::{FlowRegistry, OnSwitchConfig};
pub use pathdump::{Layer, PathDump};
