//! Ablation variants demonstrating why Unroller's phase resets matter
//! (§3.5 "Importance of switch ID resetting").
//!
//! Both variants keep identifiers on the packet *without ever resetting
//! them*:
//!
//! * [`NoResetMin`] tracks the single minimum ID forever. It works when
//!   the packet's first hop is already on the loop, but when the global
//!   minimum lies on the pre-loop path the stored ID can never match a
//!   loop switch — a **false negative**.
//! * [`ProbabilisticInsert`] is the exact §3.5 strawman: "each switch
//!   inserts its ID, with a set probability, only if the incoming packet
//!   does not already carry the maximum number of IDs". Pre-loop
//!   switches can fill every slot, again causing false negatives.
//!
//! The `ablation` experiment quantifies the false-negative rate of both
//! against Unroller's zero.

use unroller_core::hashing::{HashFamily, HashKind};
use unroller_core::profile::{Category, DetectorProfile, OverheadLevel};
use unroller_core::{InPacketDetector, SwitchId, Verdict};

/// Minimum-ID tracking without phase resets.
#[derive(Debug, Clone, Default)]
pub struct NoResetMin {
    _priv: (),
}

impl NoResetMin {
    /// Creates the detector.
    pub fn new() -> Self {
        NoResetMin { _priv: () }
    }
}

impl InPacketDetector for NoResetMin {
    type State = Option<SwitchId>;

    fn name(&self) -> &'static str {
        "noreset-min"
    }

    fn init_state(&self) -> Option<SwitchId> {
        None
    }

    fn on_switch(&self, stored: &mut Option<SwitchId>, switch: SwitchId) -> Verdict {
        match *stored {
            Some(min) if min == switch => Verdict::LoopReported,
            Some(min) => {
                if switch < min {
                    *stored = Some(switch);
                }
                Verdict::Continue
            }
            None => {
                *stored = Some(switch);
                Verdict::Continue
            }
        }
    }

    fn overhead_bits(&self, _hops: u64) -> u64 {
        32
    }

    fn profile(&self) -> DetectorProfile {
        DetectorProfile {
            name: "NoResetMin",
            category: Category::PartialEncodingOnPackets,
            real_time: true,
            switch_overhead: OverheadLevel::Low,
            network_overhead: OverheadLevel::Low,
        }
    }
}

/// The §3.5 strawman: insert with probability `p` while slots remain,
/// never reset.
///
/// Determinism requirement: detectors must behave identically on every
/// switch given the same configuration, so "probability" is derived from
/// a seeded hash of `(switch, hop)` rather than an RNG carried by the
/// switch.
#[derive(Debug, Clone)]
pub struct ProbabilisticInsert {
    slots: usize,
    /// Insertion probability as a numerator over 2³².
    p_num: u32,
    coin: HashFamily,
}

/// Packet state: hop counter plus the recorded identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbInsertState {
    xcnt: u64,
    ids: Vec<SwitchId>,
}

impl ProbabilisticInsert {
    /// Creates the detector with `slots` identifier slots and insertion
    /// probability `p` (clamped to `[0, 1]`).
    pub fn new(slots: usize, p: f64, seed: u64) -> Self {
        assert!(slots >= 1, "need at least one slot");
        let p_num = (p.clamp(0.0, 1.0) * u32::MAX as f64) as u32;
        ProbabilisticInsert {
            slots,
            p_num,
            coin: HashFamily::new(HashKind::SplitMix, 1, seed),
        }
    }
}

impl InPacketDetector for ProbabilisticInsert {
    type State = ProbInsertState;

    fn name(&self) -> &'static str {
        "prob-insert"
    }

    fn init_state(&self) -> ProbInsertState {
        ProbInsertState {
            xcnt: 0,
            ids: Vec::with_capacity(self.slots),
        }
    }

    fn reset_state(&self, state: &mut ProbInsertState) {
        state.xcnt = 0;
        state.ids.clear();
    }

    fn on_switch(&self, st: &mut ProbInsertState, switch: SwitchId) -> Verdict {
        st.xcnt += 1;
        if st.ids.contains(&switch) {
            return Verdict::LoopReported;
        }
        if st.ids.len() < self.slots {
            // A deterministic "coin flip" shared by all switches.
            let coin = self.coin.hash(0, switch ^ (st.xcnt as u32).rotate_left(16));
            if coin <= self.p_num {
                st.ids.push(switch);
            }
        }
        Verdict::Continue
    }

    fn overhead_bits(&self, _hops: u64) -> u64 {
        32 * self.slots as u64
    }

    fn profile(&self) -> DetectorProfile {
        DetectorProfile {
            name: "ProbInsert",
            category: Category::PartialEncodingOnPackets,
            real_time: true,
            switch_overhead: OverheadLevel::Low,
            network_overhead: OverheadLevel::Low,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unroller_core::walk::{run_detector, Walk};

    #[test]
    fn noreset_detects_when_loop_holds_minimum() {
        // Loop IDs all smaller than pre-loop IDs: works fine.
        let d = NoResetMin::new();
        let w = Walk::new(vec![100, 101], vec![5, 9, 7]);
        let out = run_detector(&d, &w, 1000);
        assert!(out.reported_at.is_some());
        assert!(out.true_positive);
    }

    #[test]
    fn noreset_false_negative_when_minimum_preloop() {
        // The §3.5 failure: global minimum on the pre-loop path sticks
        // forever, so the loop is NEVER detected.
        let d = NoResetMin::new();
        let w = Walk::new(vec![1, 100], vec![50, 60, 70]);
        let out = run_detector(&d, &w, 100_000);
        assert_eq!(
            out.reported_at, None,
            "no-reset variant must miss this loop"
        );
    }

    #[test]
    fn unroller_catches_what_noreset_misses() {
        // Same adversarial walk: Unroller's resets save it.
        use unroller_core::{Unroller, UnrollerParams};
        let w = Walk::new(vec![1, 100], vec![50, 60, 70]);
        let u = Unroller::from_params(UnrollerParams::default()).unwrap();
        assert!(run_detector(&u, &w, 100_000).reported_at.is_some());
    }

    #[test]
    fn prob_insert_false_negative_rate_grows_with_b() {
        // With many pre-loop hops the slots fill before the loop.
        let d = ProbabilisticInsert::new(2, 0.5, 99);
        let mut rng = unroller_core::test_rng(41);
        let mut misses_small_b = 0;
        let mut misses_large_b = 0;
        let runs = 300;
        for _ in 0..runs {
            let w = Walk::random(0, 5, &mut rng);
            if run_detector(&d, &w, 5_000).reported_at.is_none() {
                misses_small_b += 1;
            }
            let w = Walk::random(20, 5, &mut rng);
            if run_detector(&d, &w, 5_000).reported_at.is_none() {
                misses_large_b += 1;
            }
        }
        assert!(
            misses_large_b > misses_small_b,
            "expected more false negatives with B=20 ({misses_large_b}) than B=0 ({misses_small_b})"
        );
        assert!(misses_large_b > runs / 2, "B=20 should usually be missed");
    }

    #[test]
    fn prob_insert_deterministic() {
        let d1 = ProbabilisticInsert::new(2, 0.5, 7);
        let d2 = ProbabilisticInsert::new(2, 0.5, 7);
        let w = Walk::new(vec![3, 9, 4], vec![8, 1, 6]);
        assert_eq!(run_detector(&d1, &w, 1000), run_detector(&d2, &w, 1000));
    }
}
