//! On-switch-state loop detection (the FlowRadar / hash-based IP
//! traceback category of Table 1).
//!
//! Switches keep per-flow state — here, per-packet visit counters — and
//! export it to a collector every epoch; the collector flags a loop
//! when some switch counted the same packet twice. The paper's §2
//! classification, made measurable:
//!
//! * **switch overhead is high**: the registry grows with the number of
//!   active flows ([`FlowRegistry::state_bits`] — the scarce SRAM the
//!   operator wanted for ACLs and forwarding);
//! * **network overhead is low**: only periodic exports leave the
//!   switch ([`FlowRegistry::export_bits`]);
//! * **not real time**: the revisit is only *learned* at the next epoch
//!   export, long after the packet moved on.

use std::collections::HashMap;
use unroller_core::profile::{Category, DetectorProfile, OverheadLevel};
use unroller_core::SwitchId;

/// Bits per registry entry: a 64-bit flow/packet key plus a 32-bit
/// counter (FlowRadar packs tighter with coded Bloom filters; this is
/// the plain-registry upper bound).
pub const ENTRY_BITS: u64 = 64 + 32;

/// On-switch-state deployment parameters.
#[derive(Debug, Clone, Copy)]
pub struct OnSwitchConfig {
    /// Hops between collector exports (the epoch, in the walk's
    /// hop-time). Real deployments export every 10s–10min; shorter
    /// epochs mean faster (but still offline) detection and more export
    /// traffic.
    pub epoch_hops: u64,
}

impl Default for OnSwitchConfig {
    fn default() -> Self {
        OnSwitchConfig { epoch_hops: 64 }
    }
}

/// The distributed per-switch registries plus the collector's view.
#[derive(Debug, Clone)]
pub struct FlowRegistry {
    cfg: OnSwitchConfig,
    /// `(switch, packet) → visits` across all switches.
    counts: HashMap<(SwitchId, u64), u32>,
    /// Hop at which some count first reached 2 (the ground truth the
    /// collector will eventually learn).
    first_revisit: Option<u64>,
    /// Hop of the export that revealed it.
    detected_at: Option<u64>,
    exports: u64,
}

impl FlowRegistry {
    /// Creates the registry system.
    pub fn new(cfg: OnSwitchConfig) -> Self {
        FlowRegistry {
            cfg,
            counts: HashMap::new(),
            first_revisit: None,
            detected_at: None,
            exports: 0,
        }
    }

    /// A switch processes hop `hop` of `packet`; epoch boundaries
    /// trigger exports. Returns the detection hop if this hop's export
    /// revealed a loop.
    pub fn observe(&mut self, packet: u64, switch: SwitchId, hop: u64) -> Option<u64> {
        let count = self.counts.entry((switch, packet)).or_insert(0);
        *count += 1;
        if *count >= 2 && self.first_revisit.is_none() {
            self.first_revisit = Some(hop);
        }
        // Export at epoch boundaries: the collector joins the registries
        // and notices any double-counted packet.
        if hop.is_multiple_of(self.cfg.epoch_hops) {
            self.exports += 1;
            if self.first_revisit.is_some() && self.detected_at.is_none() {
                self.detected_at = Some(hop);
                return Some(hop);
            }
        }
        None
    }

    /// Total switch SRAM consumed by the registries, in bits — the
    /// "high switch overhead" column, measured.
    pub fn state_bits(&self) -> u64 {
        self.counts.len() as u64 * ENTRY_BITS
    }

    /// Export traffic so far (each export ships the registry deltas; we
    /// charge the full registry per export as an upper bound).
    pub fn export_bits(&self) -> u64 {
        self.exports * self.state_bits()
    }

    /// When the collector learned of the loop, if it has.
    pub fn detected_at(&self) -> Option<u64> {
        self.detected_at
    }

    /// The Table 1 row.
    pub fn profile(&self) -> DetectorProfile {
        DetectorProfile {
            name: "FlowRadar",
            category: Category::OnSwitchState,
            real_time: false,
            switch_overhead: OverheadLevel::High,
            network_overhead: OverheadLevel::Low,
        }
    }
}

/// Runs the on-switch deployment over a synthetic walk. Returns
/// `(collector detection hop, peak switch state bits)`.
pub fn run_onswitch(
    cfg: OnSwitchConfig,
    walk: &unroller_core::Walk,
    packet: u64,
    max_hops: u64,
) -> (Option<u64>, u64) {
    let mut reg = FlowRegistry::new(cfg);
    for hop in 1..=max_hops {
        let Some(switch) = walk.switch_at(hop) else {
            break;
        };
        if let Some(at) = reg.observe(packet, switch, hop) {
            return (Some(at), reg.state_bits());
        }
    }
    (None, reg.state_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unroller_core::Walk;

    #[test]
    fn detection_waits_for_the_epoch_export() {
        // X = 10: the revisit happens at hop 11, but with a 64-hop epoch
        // the collector only learns at hop 64.
        let mut rng = unroller_core::test_rng(95);
        let w = Walk::random(5, 5, &mut rng);
        let (hop, _) = run_onswitch(OnSwitchConfig::default(), &w, 1, 10_000);
        assert_eq!(hop, Some(64));
        // A tighter epoch detects sooner — but still never in flight.
        let (hop, _) = run_onswitch(OnSwitchConfig { epoch_hops: 16 }, &w, 1, 10_000);
        assert_eq!(hop, Some(16));
    }

    #[test]
    fn state_grows_with_visited_switches() {
        let mut rng = unroller_core::test_rng(96);
        let w = Walk::random(10, 20, &mut rng);
        let (_, bits) = run_onswitch(OnSwitchConfig::default(), &w, 1, 10_000);
        // One entry per distinct visited switch for this packet.
        assert_eq!(bits, 30 * ENTRY_BITS);
        // Orders of magnitude above Unroller's fixed 40 header bits,
        // per flow, on the switch's scarce SRAM.
        assert!(bits > 50 * 40);
    }

    #[test]
    fn no_loop_no_detection() {
        let mut rng = unroller_core::test_rng(97);
        let w = Walk::random_loop_free(30, &mut rng);
        let (hop, _) = run_onswitch(OnSwitchConfig::default(), &w, 1, 30);
        assert_eq!(hop, None);
    }

    #[test]
    fn export_traffic_accrues_per_epoch() {
        let mut reg = FlowRegistry::new(OnSwitchConfig { epoch_hops: 4 });
        for hop in 1..=8 {
            reg.observe(1, 100 + hop as u32, hop);
        }
        assert_eq!(reg.detected_at(), None);
        assert!(reg.export_bits() > 0, "two exports shipped");
        assert_eq!(reg.state_bits(), 8 * ENTRY_BITS);
    }

    #[test]
    fn profile_is_the_table1_row() {
        let reg = FlowRegistry::new(OnSwitchConfig::default());
        let p = reg.profile();
        assert!(!p.real_time);
        assert_eq!(
            p.switch_overhead,
            unroller_core::prelude::OverheadLevel::High
        );
    }
}
