//! PathDump-style loop detection (OSDI'16, modeled as in §2/§5).
//!
//! PathDump exploits the fact that commodity switches can push at most
//! two VLAN tags in hardware. In layered data-center topologies
//! (FatTree, VL2) every valid path is an *up-segment* followed by a
//! *down-segment* — at most one direction change — so each packet needs
//! at most two tags. A loop forces a second direction change; the
//! attempt to push a third tag is the loop signal.
//!
//! Our model gives the detector a *layer oracle* mapping each switch ID
//! to its layer rank (edge = 0, aggregation = 1, core = 2). Consecutive
//! hops define a direction (up or down); when the number of monotone
//! segments would exceed two, the loop is reported. The overhead is a
//! fixed 64 bits (two 32-bit tags), there are no false positives — but
//! the scheme is *only applicable* to topologies with the layered
//! structure, which is exactly the limitation Table 5 shows ("×" for
//! every WAN topology).

use std::collections::HashMap;
use std::sync::Arc;
use unroller_core::profile::{Category, DetectorProfile, OverheadLevel};
use unroller_core::{InPacketDetector, SwitchId, Verdict};

/// A switch's layer in a layered data-center topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Top-of-rack / edge layer (rank 0).
    Edge,
    /// Aggregation layer (rank 1).
    Aggregation,
    /// Core layer (rank 2).
    Core,
}

impl Layer {
    /// Numeric rank used for direction comparisons.
    pub fn rank(self) -> u8 {
        match self {
            Layer::Edge => 0,
            Layer::Aggregation => 1,
            Layer::Core => 2,
        }
    }
}

/// Maximum monotone segments a valid up→down path may have.
const MAX_SEGMENTS: u8 = 2;

/// The PathDump detector. Construction requires the layer oracle for the
/// deployment topology; switches absent from the oracle are treated as
/// transparent (PathDump simply cannot be deployed there).
#[derive(Debug, Clone)]
pub struct PathDump {
    layers: Arc<HashMap<SwitchId, Layer>>,
}

/// Packet-carried PathDump state (models the VLAN tag stack: we only
/// need the segment count and enough context to detect a turn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathDumpState {
    prev_rank: Option<u8>,
    /// +1 going up, −1 going down, 0 before the first inter-layer move.
    dir: i8,
    /// Monotone segments consumed so far (= VLAN tags pushed).
    segments: u8,
}

impl PathDump {
    /// Creates a detector for the given layer oracle.
    pub fn new(layers: HashMap<SwitchId, Layer>) -> Self {
        PathDump {
            layers: Arc::new(layers),
        }
    }

    /// Convenience: oracle assigning `Edge` to IDs in `edge`,
    /// `Aggregation` to IDs in `agg`, `Core` to IDs in `core`.
    pub fn from_layers(edge: &[SwitchId], agg: &[SwitchId], core: &[SwitchId]) -> Self {
        let mut map = HashMap::new();
        map.extend(edge.iter().map(|&s| (s, Layer::Edge)));
        map.extend(agg.iter().map(|&s| (s, Layer::Aggregation)));
        map.extend(core.iter().map(|&s| (s, Layer::Core)));
        Self::new(map)
    }

    /// True if every switch in `ids` is covered by the layer oracle —
    /// i.e. PathDump is deployable on that set of switches.
    pub fn applicable_to(&self, ids: impl IntoIterator<Item = SwitchId>) -> bool {
        ids.into_iter().all(|s| self.layers.contains_key(&s))
    }
}

impl InPacketDetector for PathDump {
    type State = PathDumpState;

    fn name(&self) -> &'static str {
        "pathdump"
    }

    fn init_state(&self) -> PathDumpState {
        PathDumpState::default()
    }

    fn on_switch(&self, st: &mut PathDumpState, switch: SwitchId) -> Verdict {
        let Some(layer) = self.layers.get(&switch) else {
            // Outside the deployable topology: PathDump cannot observe
            // this hop.
            return Verdict::Continue;
        };
        let rank = layer.rank();
        let Some(prev) = st.prev_rank else {
            st.prev_rank = Some(rank);
            st.segments = 1; // the first tag covers the first segment
            return Verdict::Continue;
        };
        let dir: i8 = match rank.cmp(&prev) {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => -1,
            // Same-layer move: impossible in a strict FatTree/VL2 fabric;
            // treat as continuing the current segment.
            std::cmp::Ordering::Equal => st.dir,
        };
        st.prev_rank = Some(rank);
        if dir != st.dir && st.dir != 0 {
            // Direction change = a new segment = a new VLAN tag.
            st.segments += 1;
            if st.segments > MAX_SEGMENTS {
                return Verdict::LoopReported;
            }
        }
        st.dir = dir;
        Verdict::Continue
    }

    fn overhead_bits(&self, _hops: u64) -> u64 {
        64 // two 32-bit VLAN-tag slots, per the paper's Table 5
    }

    fn profile(&self) -> DetectorProfile {
        DetectorProfile {
            name: "PathDump",
            category: Category::FullPathEncodingOnPackets,
            real_time: true,
            switch_overhead: OverheadLevel::Low,
            network_overhead: OverheadLevel::Low,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature fat-tree oracle: edges 0-3, aggs 10-13, cores 20-21.
    fn pd() -> PathDump {
        PathDump::from_layers(&[0, 1, 2, 3], &[10, 11, 12, 13], &[20, 21])
    }

    fn drive(d: &PathDump, hops: &[SwitchId]) -> Option<usize> {
        let mut st = d.init_state();
        for (i, &s) in hops.iter().enumerate() {
            if d.on_switch(&mut st, s).reported() {
                return Some(i + 1);
            }
        }
        None
    }

    #[test]
    fn valid_up_down_path_passes() {
        // edge → agg → core → agg → edge: one turn, two segments, fine.
        assert_eq!(drive(&pd(), &[0, 10, 20, 11, 1]), None);
    }

    #[test]
    fn valid_short_paths_pass() {
        assert_eq!(drive(&pd(), &[0]), None);
        assert_eq!(drive(&pd(), &[0, 10]), None);
        assert_eq!(drive(&pd(), &[0, 10, 1]), None);
    }

    #[test]
    fn loop_forces_third_segment() {
        // After descending (core → agg → edge), bouncing back up to the
        // agg layer is the second turn → loop reported on that hop.
        let hops = [0, 10, 20, 11, 1, 11];
        assert_eq!(drive(&pd(), &hops), Some(6));
    }

    #[test]
    fn ping_pong_loop_detected() {
        // agg → edge → agg → edge …: the first bounce back up is the
        // second segment (still legal); the next bounce down is the
        // third → reported on hop 4.
        let hops = [10, 0, 10, 0, 10];
        assert_eq!(drive(&pd(), &hops), Some(4));
    }

    #[test]
    fn unknown_switches_are_transparent() {
        // Deploying PathDump on a WAN (no layer structure) observes
        // nothing: the "×" entries of Table 5.
        let d = pd();
        assert!(!d.applicable_to([100u32, 200]));
        assert_eq!(drive(&d, &[100, 200, 100, 200, 100]), None);
    }

    #[test]
    fn fixed_overhead() {
        let d = pd();
        assert_eq!(d.overhead_bits(1), 64);
        assert_eq!(d.overhead_bits(100), 64);
    }
}
