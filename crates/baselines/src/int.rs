//! INT-style full path encoding (§1, §3 "This is how INT would handle
//! this task").
//!
//! Every switch appends its identifier to a list carried on the packet;
//! a switch that finds its own ID already on the list reports a loop.
//! Detection is as fast as theoretically possible (the first revisited
//! switch reports immediately, at hop `X + 1`) and there are no false
//! positives — but the per-packet overhead grows linearly with the path:
//! the paper's example is 32 bytes for a six-hop path (8-byte INT header
//! plus a 4-byte ID per hop), i.e. 3.2% of an average 1 KB packet.

use unroller_core::profile::{Category, DetectorProfile, OverheadLevel};
use unroller_core::{InPacketDetector, SwitchId, Verdict};

/// Bits of the fixed INT shim header (8 bytes, per the INT dataplane
/// specification the paper cites).
pub const INT_HEADER_BITS: u64 = 64;

/// Bits appended per hop (4-byte switch ID).
pub const INT_PER_HOP_BITS: u64 = 32;

/// The INT full-path recorder.
#[derive(Debug, Clone, Default)]
pub struct IntPathRecorder {
    _priv: (),
}

impl IntPathRecorder {
    /// Creates the recorder (INT has no parameters that affect
    /// detection).
    pub fn new() -> Self {
        IntPathRecorder { _priv: () }
    }
}

impl InPacketDetector for IntPathRecorder {
    type State = Vec<SwitchId>;

    fn name(&self) -> &'static str {
        "int"
    }

    fn init_state(&self) -> Vec<SwitchId> {
        Vec::new()
    }

    fn reset_state(&self, state: &mut Vec<SwitchId>) {
        state.clear();
    }

    fn on_switch(&self, recorded: &mut Vec<SwitchId>, switch: SwitchId) -> Verdict {
        if recorded.contains(&switch) {
            return Verdict::LoopReported;
        }
        recorded.push(switch);
        Verdict::Continue
    }

    fn overhead_bits(&self, hops: u64) -> u64 {
        INT_HEADER_BITS + INT_PER_HOP_BITS * hops
    }

    fn profile(&self) -> DetectorProfile {
        DetectorProfile {
            name: "INT",
            category: Category::FullPathEncodingOnPackets,
            real_time: true,
            switch_overhead: OverheadLevel::Low,
            network_overhead: OverheadLevel::High,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unroller_core::walk::{run_detector, Walk};

    #[test]
    fn detects_at_first_revisit() {
        // INT achieves the X + 1 lower bound on every input.
        let int = IntPathRecorder::new();
        let mut rng = unroller_core::test_rng(21);
        for _ in 0..100 {
            let b = rand::Rng::gen_range(&mut rng, 0..10);
            let l = rand::Rng::gen_range(&mut rng, 1..20);
            let w = Walk::random(b, l, &mut rng);
            let out = run_detector(&int, &w, 10_000);
            assert_eq!(out.reported_at, Some(w.x() as u64 + 1));
            assert!(out.true_positive);
        }
    }

    #[test]
    fn never_false_positive() {
        let int = IntPathRecorder::new();
        let mut rng = unroller_core::test_rng(22);
        for _ in 0..100 {
            let w = Walk::random_loop_free(30, &mut rng);
            assert_eq!(run_detector(&int, &w, 10_000).reported_at, None);
        }
    }

    #[test]
    fn overhead_matches_paper_example() {
        // "For a path of six hops ... we need 32 Bytes".
        let int = IntPathRecorder::new();
        assert_eq!(int.overhead_bits(6), 32 * 8);
    }

    #[test]
    fn state_reset_clears_history() {
        let int = IntPathRecorder::new();
        let mut st = int.init_state();
        let _ = int.on_switch(&mut st, 5);
        int.reset_state(&mut st);
        assert_eq!(int.on_switch(&mut st, 5), Verdict::Continue);
    }
}
