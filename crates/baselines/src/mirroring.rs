//! Header-mirroring loop detection (the NetSight / Everflow /
//! trajectory-sampling category of Table 1).
//!
//! Instead of carrying state on packets, switches *mirror* packet
//! headers to a collector, which reconstructs trajectories offline and
//! flags a loop when a packet's postcard stream names the same switch
//! twice. The paper's §2 classifies the costs: switch overhead is low,
//! but mirroring "creates significant scalability concerns" — terabits
//! of postcard traffic and thousands of collector cores — and detection
//! is **not real time**: by the time the collector notices, the packet
//! has moved on (or died), so neither selective reporting nor active
//! rerouting is possible.
//!
//! The model here makes those costs measurable:
//!
//! * [`MirrorConfig::sample_probability`] — NetSight mirrors every
//!   packet at every hop (`1.0`); trajectory sampling mirrors a hash-
//!   selected subset (`< 1.0`), trading postcard bandwidth for false
//!   negatives.
//! * [`MirrorConfig::postcard_bits`] — bits sent to the collector per
//!   mirrored hop (Everflow mirrors ~64-byte header summaries).
//! * [`Collector::network_overhead_bits`] — total postcard traffic, the
//!   number Table 1 calls "high network overhead".
//!
//! The collector is deliberately *consistent sampling* (per
//! packet-and-switch hash coin, as trajectory sampling prescribes): a
//! packet is either observed at a switch on every visit or never, so a
//! sampled-out loop is a genuine false negative, not a coin flip per
//! pass.

use std::collections::HashMap;
use unroller_core::hashing::{HashFamily, HashKind};
use unroller_core::profile::{Category, DetectorProfile, OverheadLevel};
use unroller_core::SwitchId;

/// Mirroring deployment parameters.
#[derive(Debug, Clone, Copy)]
pub struct MirrorConfig {
    /// Probability that a (packet, switch) pair is mirrored. `1.0`
    /// models NetSight postcards; trajectory sampling uses e.g. `0.1`.
    pub sample_probability: f64,
    /// Bits per postcard (Everflow mirrors the first ~64 bytes).
    pub postcard_bits: u64,
    /// Hash seed for the consistent-sampling coin.
    pub seed: u64,
}

impl Default for MirrorConfig {
    fn default() -> Self {
        MirrorConfig {
            sample_probability: 1.0,
            postcard_bits: 64 * 8,
            seed: 0,
        }
    }
}

/// A loop finding raised by the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopFinding {
    /// The packet whose trajectory revisited a switch.
    pub packet: u64,
    /// The revisited switch.
    pub switch: SwitchId,
    /// The packet's hop count when the revisit was mirrored.
    pub hop: u64,
}

/// The mirroring collector: receives postcards, reconstructs
/// per-packet trajectories, and flags revisits.
#[derive(Debug, Clone)]
pub struct Collector {
    cfg: MirrorConfig,
    coin: HashFamily,
    threshold: u64,
    /// Per-packet set of mirrored switches.
    seen: HashMap<u64, Vec<SwitchId>>,
    postcards: u64,
    findings: Vec<LoopFinding>,
}

impl Collector {
    /// Creates a collector for the given deployment.
    pub fn new(cfg: MirrorConfig) -> Self {
        Collector {
            coin: HashFamily::new(HashKind::SplitMix, 1, cfg.seed ^ 0x6d6972726f72),
            threshold: (cfg.sample_probability.clamp(0.0, 1.0) * u32::MAX as f64) as u64,
            seen: HashMap::new(),
            postcards: 0,
            findings: Vec::new(),
            cfg,
        }
    }

    /// Consistent sampling: mirror iff `h(packet, switch)` falls under
    /// the probability threshold — the same decision on every visit.
    fn sampled(&self, packet: u64, switch: SwitchId) -> bool {
        let key = (packet as u32).rotate_left(13).wrapping_mul(0x9e37_79b9) ^ switch;
        (self.coin.hash(0, key) as u64) < self.threshold || self.cfg.sample_probability >= 1.0
    }

    /// A switch processes hop `hop` of `packet`: possibly emits a
    /// postcard; the collector ingests it and may raise a finding.
    /// Returns the finding when the mirrored trajectory shows a revisit.
    pub fn observe(&mut self, packet: u64, switch: SwitchId, hop: u64) -> Option<LoopFinding> {
        if !self.sampled(packet, switch) {
            return None;
        }
        self.postcards += 1;
        let trajectory = self.seen.entry(packet).or_default();
        if trajectory.contains(&switch) {
            let finding = LoopFinding {
                packet,
                switch,
                hop,
            };
            self.findings.push(finding.clone());
            return Some(finding);
        }
        trajectory.push(switch);
        None
    }

    /// Total postcard traffic so far, in bits — the "network overhead"
    /// column of Table 1, measured.
    pub fn network_overhead_bits(&self) -> u64 {
        self.postcards * self.cfg.postcard_bits
    }

    /// Postcards received.
    pub fn postcard_count(&self) -> u64 {
        self.postcards
    }

    /// All findings so far.
    pub fn findings(&self) -> &[LoopFinding] {
        &self.findings
    }

    /// Forgets a delivered/dead packet's trajectory (epoch cleanup).
    pub fn evict(&mut self, packet: u64) {
        self.seen.remove(&packet);
    }

    /// The Table 1 row this deployment occupies.
    pub fn profile(&self) -> DetectorProfile {
        DetectorProfile {
            name: if self.cfg.sample_probability >= 1.0 {
                "Mirroring"
            } else {
                "TrajSampling"
            },
            category: Category::HeaderMirroring,
            real_time: false,
            switch_overhead: OverheadLevel::Low,
            network_overhead: OverheadLevel::High,
        }
    }
}

/// Runs a mirroring deployment over a synthetic walk: every hop is
/// observed (subject to sampling) until the loop is found or `max_hops`
/// pass. Returns `(detection_hop, postcard_bits)`.
pub fn run_mirroring(
    cfg: MirrorConfig,
    walk: &unroller_core::Walk,
    packet: u64,
    max_hops: u64,
) -> (Option<u64>, u64) {
    let mut collector = Collector::new(cfg);
    for hop in 1..=max_hops {
        let Some(switch) = walk.switch_at(hop) else {
            break;
        };
        if let Some(f) = collector.observe(packet, switch, hop) {
            return (Some(f.hop), collector.network_overhead_bits());
        }
    }
    (None, collector.network_overhead_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unroller_core::Walk;

    #[test]
    fn full_mirroring_detects_at_first_revisit() {
        let mut rng = unroller_core::test_rng(91);
        for _ in 0..50 {
            let w = Walk::random(5, 10, &mut rng);
            let (hop, bits) = run_mirroring(MirrorConfig::default(), &w, 1, 10_000);
            assert_eq!(hop, Some(w.x() as u64 + 1), "collector sees everything");
            // One postcard per hop until detection.
            assert_eq!(bits, (w.x() as u64 + 1) * 64 * 8);
        }
    }

    #[test]
    fn postcard_traffic_dwarfs_unroller_header_bits() {
        // The §2 scalability point, measured: on one 26-hop detection,
        // full mirroring ships 13,312 postcard bits to the collector
        // while Unroller adds 40 bits to the packet and nothing to the
        // network.
        let mut rng = unroller_core::test_rng(92);
        let w = Walk::random(5, 20, &mut rng);
        let (_, bits) = run_mirroring(MirrorConfig::default(), &w, 1, 10_000);
        let unroller_bits = unroller_core::UnrollerParams::default().overhead_bits() as u64;
        assert!(
            bits > 100 * unroller_bits,
            "mirroring {bits} bits vs unroller {unroller_bits} bits"
        );
    }

    #[test]
    fn sampling_causes_false_negatives() {
        // Trajectory sampling at 10%: most loops' switches are never
        // mirrored, so the collector misses most loops entirely.
        let cfg = MirrorConfig {
            sample_probability: 0.1,
            ..MirrorConfig::default()
        };
        let mut rng = unroller_core::test_rng(93);
        let mut missed = 0;
        let runs = 200;
        for packet in 0..runs {
            let w = Walk::random(5, 5, &mut rng);
            // Two full loop passes after reaching it: enough for any
            // sampled switch to repeat.
            let budget = (w.x() + 2 * w.l() + 5) as u64;
            if run_mirroring(cfg, &w, packet, budget).0.is_none() {
                missed += 1;
            }
        }
        assert!(
            missed > runs / 2,
            "10% sampling should miss most short loops ({missed}/{runs})"
        );
    }

    #[test]
    fn sampling_is_consistent_per_switch() {
        // A sampled-in switch is observed on *every* visit: detection,
        // when it happens, is correct (never a false positive).
        let cfg = MirrorConfig {
            sample_probability: 0.5,
            ..MirrorConfig::default()
        };
        let mut rng = unroller_core::test_rng(94);
        for packet in 0..100 {
            let w = Walk::random_loop_free(25, &mut rng);
            let (hop, _) = run_mirroring(cfg, &w, packet, 25);
            assert_eq!(hop, None, "no false positives on loop-free paths");
        }
    }

    #[test]
    fn eviction_clears_state() {
        let mut c = Collector::new(MirrorConfig::default());
        assert!(c.observe(7, 100, 1).is_none());
        c.evict(7);
        assert!(c.observe(7, 100, 2).is_none(), "trajectory was forgotten");
        assert_eq!(c.postcard_count(), 2);
    }

    #[test]
    fn profile_is_the_table1_row() {
        let full = Collector::new(MirrorConfig::default());
        assert_eq!(full.profile().name, "Mirroring");
        assert!(!full.profile().real_time);
        let sampled = Collector::new(MirrorConfig {
            sample_probability: 0.1,
            ..MirrorConfig::default()
        });
        assert_eq!(sampled.profile().name, "TrajSampling");
    }
}
