//! Routing-loop scenario sampling (the Table 5 workload).
//!
//! The paper's methodology: "we randomly picked two nodes in each
//! considered topology and selected a shortest path between them. Out of
//! all possible loops that intersect with that path, we picked one
//! uniformly at random." Enumerating every simple cycle of a graph is
//! exponential, so we substitute a *uniformly randomized* sampler: pick
//! a uniform node on the path and grow a simple cycle through it by a
//! random walk with uniform neighbor choices and fair coin stops. Every
//! loop intersecting the path has positive probability; `DESIGN.md` §3
//! records the substitution.

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use unroller_core::{SwitchId, Walk};

/// A complete loop scenario on a topology: the intended path, the cycle
/// the packet gets trapped in, and where the path enters it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopScenario {
    /// The intended (shortest) path, as node indices.
    pub path: Vec<NodeId>,
    /// The cycle, rotated so `cycle[0]` is the node where the packet
    /// enters it.
    pub cycle: Vec<NodeId>,
    /// Index into `path` of the entry node (`= B`, the number of
    /// pre-loop hops).
    pub entry: usize,
}

impl LoopScenario {
    /// Pre-loop hop count `B`.
    pub fn b(&self) -> usize {
        self.entry
    }

    /// Loop length `L`.
    pub fn l(&self) -> usize {
        self.cycle.len()
    }

    /// `X = B + L`.
    pub fn x(&self) -> usize {
        self.b() + self.l()
    }

    /// Materializes the packet trajectory using the per-run switch
    /// identifier assignment `ids[node]`.
    pub fn walk(&self, ids: &[SwitchId]) -> Walk {
        let pre = self.path[..self.entry].iter().map(|&n| ids[n]).collect();
        let cycle = self.cycle.iter().map(|&n| ids[n]).collect();
        Walk::new(pre, cycle)
    }

    /// The nodes a detector deployed on this scenario will observe
    /// (pre-loop path plus cycle), without duplicates.
    pub fn observed_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.path[..self.entry].to_vec();
        nodes.extend(&self.cycle);
        nodes
    }
}

/// Samples a simple cycle through `start` (length in `2 ..= max_len`,
/// where length 2 models a forwarding ping-pong over one link) by a
/// randomized walk. Returns `None` if the attempt dead-ends.
pub fn sample_cycle_through<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    max_len: usize,
    rng: &mut R,
) -> Option<Vec<NodeId>> {
    let mut visited = vec![false; g.node_count()];
    visited[start] = true;
    let mut cycle = vec![start];
    let mut scratch: Vec<NodeId> = Vec::new();
    loop {
        let u = *cycle.last().unwrap();
        let can_close = cycle.len() >= 2 && g.has_edge(u, start);
        scratch.clear();
        scratch.extend(g.neighbors(u).iter().copied().filter(|&v| !visited[v]));
        let must_close = scratch.is_empty() || cycle.len() >= max_len;
        if can_close && (must_close || rng.gen_bool(0.5)) {
            return Some(cycle);
        }
        if must_close {
            return None; // dead end and cannot close
        }
        let &next = scratch.choose(rng).expect("non-empty");
        visited[next] = true;
        cycle.push(next);
    }
}

/// Samples a cycle intersecting `path`, trying up to `attempts`
/// randomized walks. The returned cycle passes through at least one
/// path node.
pub fn sample_cycle_intersecting<R: Rng + ?Sized>(
    g: &Graph,
    path: &[NodeId],
    max_len: usize,
    attempts: usize,
    rng: &mut R,
) -> Option<Vec<NodeId>> {
    for _ in 0..attempts {
        let &through = path.choose(rng)?;
        if let Some(cycle) = sample_cycle_through(g, through, max_len, rng) {
            return Some(cycle);
        }
    }
    None
}

/// Samples a complete Table 5 scenario: a uniform random distinct node
/// pair, a shortest path between them, and a random cycle intersecting
/// that path, rotated to the packet's entry point.
///
/// The cycle never passes through the destination: a switch delivers
/// packets addressed to itself, so a "loop" containing `dst` cannot
/// trap traffic toward `dst` and is not a routing loop for this flow.
pub fn sample_scenario<R: Rng + ?Sized>(
    g: &Graph,
    max_loop_len: usize,
    attempts: usize,
    rng: &mut R,
) -> Option<LoopScenario> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    for _ in 0..attempts {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        if src == dst {
            continue;
        }
        let Some(path) = g.shortest_path(src, dst) else {
            continue;
        };
        // Grow the cycle from a non-destination path node, and reject
        // walks that wander through the destination.
        let Some(cycle) =
            sample_cycle_intersecting(g, &path[..path.len() - 1], max_loop_len, 8, rng)
        else {
            continue;
        };
        if cycle.contains(&dst) {
            continue;
        }
        // The packet enters the loop at the first path node on the cycle.
        let entry = path
            .iter()
            .position(|p| cycle.contains(p))
            .expect("cycle intersects path by construction");
        let pivot = cycle
            .iter()
            .position(|&c| c == path[entry])
            .expect("entry node is on the cycle");
        let mut rotated = cycle;
        rotated.rotate_left(pivot);
        return Some(LoopScenario {
            path,
            cycle: rotated,
            entry,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{fat_tree, random_connected, ring};

    fn rng() -> rand::rngs::StdRng {
        unroller_core::test_rng(77)
    }

    fn assert_valid_cycle(g: &Graph, cycle: &[NodeId]) {
        assert!(cycle.len() >= 2, "cycle too short: {cycle:?}");
        // Consecutive nodes adjacent; closes back to the start.
        for w in cycle.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "{:?} not an edge", w);
        }
        assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]));
        // Simple: no repeated nodes.
        let mut sorted = cycle.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cycle.len(), "cycle revisits a node");
    }

    #[test]
    fn cycles_on_a_ring_are_the_whole_ring_or_pingpong() {
        let g = ring(6);
        let mut r = rng();
        for _ in 0..50 {
            if let Some(c) = sample_cycle_through(&g, 0, 12, &mut r) {
                assert_valid_cycle(&g, &c);
                // On a simple ring the only simple cycles through 0 are
                // the full ring (6) or a ping-pong (2).
                assert!(c.len() == 6 || c.len() == 2, "unexpected cycle {c:?}");
            }
        }
    }

    #[test]
    fn sampled_cycles_are_valid_on_random_graphs() {
        let mut r = rng();
        for seed in 0..5 {
            let g = random_connected(30, 25, seed);
            for start in [0usize, 5, 29] {
                for _ in 0..20 {
                    if let Some(c) = sample_cycle_through(&g, start, 15, &mut r) {
                        assert_eq!(c[0], start);
                        assert_valid_cycle(&g, &c);
                    }
                }
            }
        }
    }

    #[test]
    fn scenario_geometry_is_consistent() {
        let mut r = rng();
        let ft = fat_tree(4);
        for _ in 0..100 {
            let s = sample_scenario(&ft.graph, 10, 50, &mut r).expect("fat-tree has cycles");
            assert_valid_cycle(&ft.graph, &s.cycle);
            assert!(s.entry < s.path.len());
            assert_eq!(s.cycle[0], s.path[s.entry], "entry node starts the cycle");
            // No earlier path node is on the cycle.
            for &p in &s.path[..s.entry] {
                assert!(!s.cycle.contains(&p));
            }
            // The destination is never on the cycle — a switch delivers
            // its own packets, so such a scenario would not loop.
            assert!(!s.cycle.contains(s.path.last().unwrap()));
            assert_eq!(s.x(), s.b() + s.l());
        }
    }

    #[test]
    fn scenario_walk_maps_ids() {
        let mut r = rng();
        let g = random_connected(20, 15, 3);
        let ids: Vec<u32> = (0..20).map(|i| 1000 + i).collect();
        let s = sample_scenario(&g, 10, 200, &mut r).expect("cycle exists");
        let w = s.walk(&ids);
        assert_eq!(w.b(), s.b());
        assert_eq!(w.l(), s.l());
        for (i, &n) in s.path[..s.entry].iter().enumerate() {
            assert_eq!(w.pre[i], ids[n]);
        }
        for (i, &n) in s.cycle.iter().enumerate() {
            assert_eq!(w.cycle[i], ids[n]);
        }
    }

    #[test]
    fn cycle_respects_max_len() {
        let mut r = rng();
        let g = random_connected(50, 60, 9);
        for _ in 0..100 {
            if let Some(c) = sample_cycle_through(&g, 0, 6, &mut r) {
                assert!(c.len() <= 6, "cycle {c:?} exceeds max_len");
            }
        }
    }

    #[test]
    fn only_pingpong_loops_on_a_tree() {
        // A tree has no simple cycles of length ≥ 3, but forwarding
        // ping-pongs (length 2, one link used both ways) are still valid
        // routing loops and the only ones the sampler may return.
        let g = random_connected(20, 0, 5);
        let mut r = rng();
        for start in 0..20 {
            for _ in 0..10 {
                if let Some(c) = sample_cycle_through(&g, start, 20, &mut r) {
                    assert_eq!(c.len(), 2, "tree admits only ping-pong loops: {c:?}");
                    assert!(g.has_edge(c[0], c[1]));
                }
            }
        }
    }
}
