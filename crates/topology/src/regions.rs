//! Administrative domains: a partition of a topology's nodes into
//! contiguous index bands, one per domain controller.
//!
//! The federated control plane splits a network among `N` controllers,
//! each owning one region. The partition used here is the same
//! contiguous-band scheme the analytics layer uses for its per-region
//! loop attribution (quartile bands at 4 domains), so artifacts from
//! the two layers line up: domain `d` owns nodes
//! `[d·⌈n/N⌉, (d+1)·⌈n/N⌉)` clamped to `n`.

use crate::graph::NodeId;

/// A partition of `nodes` topology nodes into `domains` contiguous
/// bands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainMap {
    nodes: usize,
    domains: usize,
    band: usize,
}

impl DomainMap {
    /// Partitions `nodes` into `domains` contiguous index bands. The
    /// first `domains − 1` bands hold `⌈nodes/domains⌉` nodes each; the
    /// last takes the remainder. Returns `None` when either count is
    /// zero or there are fewer nodes than domains (an empty domain has
    /// no controller to run).
    pub fn contiguous(nodes: usize, domains: usize) -> Option<DomainMap> {
        if nodes == 0 || domains == 0 || nodes < domains {
            return None;
        }
        Some(DomainMap {
            nodes,
            domains,
            band: nodes.div_ceil(domains),
        })
    }

    /// Number of domains.
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// Number of nodes partitioned.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The domain owning `node` (`None` for out-of-range nodes).
    pub fn domain_of(&self, node: NodeId) -> Option<u32> {
        if node >= self.nodes {
            return None;
        }
        Some(((node / self.band).min(self.domains - 1)) as u32)
    }

    /// The nodes domain `d` owns, in ascending order.
    pub fn nodes_in(&self, d: u32) -> Vec<NodeId> {
        let d = d as usize;
        if d >= self.domains {
            return Vec::new();
        }
        let start = d * self.band;
        let end = if d == self.domains - 1 {
            self.nodes
        } else {
            ((d + 1) * self.band).min(self.nodes)
        };
        (start..end).collect()
    }

    /// Whether a node set spans more than one domain — the loops that
    /// *require* inter-controller digest exchange to localize.
    pub fn is_cross_domain(&self, nodes: &[NodeId]) -> bool {
        let mut first = None;
        for &n in nodes {
            let d = self.domain_of(n);
            match first {
                None => first = d,
                Some(f) if d != Some(f) => return true,
                Some(_) => {}
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_every_node_exactly_once() {
        for (nodes, domains) in [(16, 4), (17, 4), (5, 5), (100, 7), (3, 2)] {
            let map = DomainMap::contiguous(nodes, domains).unwrap();
            let mut seen = vec![false; nodes];
            for d in 0..domains as u32 {
                for n in map.nodes_in(d) {
                    assert_eq!(map.domain_of(n), Some(d));
                    assert!(!seen[n], "node {n} in two domains");
                    seen[n] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "{nodes}/{domains}: uncovered node");
        }
    }

    #[test]
    fn quartile_bands_match_sixteen_over_four() {
        let map = DomainMap::contiguous(16, 4).unwrap();
        assert_eq!(map.nodes_in(0), vec![0, 1, 2, 3]);
        assert_eq!(map.nodes_in(3), vec![12, 13, 14, 15]);
        assert_eq!(map.domain_of(7), Some(1));
        assert_eq!(map.domain_of(16), None);
    }

    #[test]
    fn degenerate_partitions_are_rejected() {
        assert!(DomainMap::contiguous(0, 4).is_none());
        assert!(DomainMap::contiguous(4, 0).is_none());
        assert!(DomainMap::contiguous(3, 4).is_none(), "empty domain");
    }

    #[test]
    fn cross_domain_detection() {
        let map = DomainMap::contiguous(16, 4).unwrap();
        assert!(!map.is_cross_domain(&[0, 1, 2]));
        assert!(map.is_cross_domain(&[3, 4]));
        assert!(!map.is_cross_domain(&[]));
        assert!(!map.is_cross_domain(&[15]));
        // An out-of-range node differs from any in-range one.
        assert!(map.is_cross_domain(&[0, 99]));
    }
}
