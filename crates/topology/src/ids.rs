//! Per-run switch identifier assignment.
//!
//! The evaluation draws a fresh set of uniformly random 32-bit switch
//! identifiers for every run (§5), which is what makes the average-case
//! analysis apply. `assign_random_ids` maps dense node indices to
//! distinct random identifiers.

use rand::Rng;
use std::collections::HashSet;
use unroller_core::SwitchId;

/// Assigns `n` distinct uniform random 32-bit identifiers, indexed by
/// node. Drawn without replacement (collisions among a few hundred draws
/// are astronomically unlikely but would corrupt false-positive
/// accounting).
pub fn assign_random_ids<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<SwitchId> {
    let mut seen = HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id: u32 = rng.gen();
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

/// Assigns sequential identifiers `base, base+1, …` (useful for
/// deterministic examples and the dataplane model, where the controller
/// provisions IDs explicitly).
pub fn assign_sequential_ids(n: usize, base: SwitchId) -> Vec<SwitchId> {
    (0..n as u32).map(|i| base + i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct() {
        let mut rng = unroller_core::test_rng(55);
        let ids = assign_random_ids(1000, &mut rng);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 1000);
    }

    #[test]
    fn sequential_ids() {
        assert_eq!(assign_sequential_ids(3, 100), vec![100, 101, 102]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = assign_random_ids(50, &mut unroller_core::test_rng(1));
        let b = assign_random_ids(50, &mut unroller_core::test_rng(1));
        assert_eq!(a, b);
    }
}
