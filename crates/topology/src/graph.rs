//! An undirected graph of switches with the path primitives the
//! evaluation needs: BFS shortest paths, eccentricity, and diameter.
//!
//! Nodes are dense indices `0 .. n`; the mapping to random 32-bit switch
//! identifiers happens per experiment run (see
//! [`crate::ids::assign_random_ids`]).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A node index.
pub type NodeId = usize;

/// An undirected simple graph stored as adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Adds an undirected edge; self-loops and duplicate edges are
    /// ignored (the graph stays simple).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        if u == v || self.adj[u].contains(&v) {
            return;
        }
        self.adj[u].push(v);
        self.adj[v].push(u);
        self.edges += 1;
    }

    /// True if `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u].contains(&v)
    }

    /// The neighbors of `u`.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u].len()
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.adj.len()
    }

    /// All undirected edges as `(u, v)` pairs with `u < v`, in
    /// deterministic adjacency-list order.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edges);
        for u in self.nodes() {
            for &v in &self.adj[u] {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// BFS distances from `src`; `usize::MAX` marks unreachable nodes.
    pub fn bfs_distances(&self, src: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.adj.len()];
        let mut queue = VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// A shortest path from `src` to `dst` (inclusive of both), or
    /// `None` if unreachable. Ties are broken deterministically by the
    /// adjacency-list order.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut parent = vec![usize::MAX; self.adj.len()];
        let mut queue = VecDeque::new();
        parent[src] = src;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if parent[v] == usize::MAX {
                    parent[v] = u;
                    if v == dst {
                        let mut path = vec![dst];
                        let mut cur = dst;
                        while cur != src {
                            cur = parent[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// The eccentricity of `u`: the greatest BFS distance to any
    /// reachable node.
    pub fn eccentricity(&self, u: NodeId) -> usize {
        self.bfs_distances(u)
            .into_iter()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0)
    }

    /// The graph diameter (greatest shortest-path distance between any
    /// connected pair). `O(n·m)` — fine for the evaluation topologies
    /// (≤ 158 nodes).
    pub fn diameter(&self) -> usize {
        self.nodes()
            .map(|u| self.eccentricity(u))
            .max()
            .unwrap_or(0)
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn basic_construction() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(0, 0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn shortest_path_on_path_graph() {
        let g = path_graph(6);
        assert_eq!(g.shortest_path(0, 5), Some(vec![0, 1, 2, 3, 4, 5]));
        assert_eq!(g.shortest_path(3, 3), Some(vec![3]));
        assert_eq!(g.shortest_path(5, 2), Some(vec![5, 4, 3, 2]));
    }

    #[test]
    fn shortest_path_prefers_shortcut() {
        let mut g = path_graph(6);
        g.add_edge(0, 4);
        let p = g.shortest_path(0, 5).unwrap();
        assert_eq!(p.len(), 3); // 0 → 4 → 5
        assert_eq!(p, vec![0, 4, 5]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert_eq!(g.shortest_path(0, 3), None);
        assert!(!g.is_connected());
    }

    #[test]
    fn diameter_of_known_shapes() {
        assert_eq!(path_graph(6).diameter(), 5);
        // A 5-cycle has diameter 2.
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        assert_eq!(g.diameter(), 2);
        // A star has diameter 2.
        let mut g = Graph::new(6);
        for i in 1..6 {
            g.add_edge(0, i);
        }
        assert_eq!(g.diameter(), 2);
    }

    #[test]
    fn bfs_distances_match_path_lengths() {
        let g = path_graph(10);
        let dist = g.bfs_distances(0);
        for (i, &d) in dist.iter().enumerate() {
            assert_eq!(d, i);
            assert_eq!(g.shortest_path(0, i).unwrap().len(), i + 1);
        }
    }
}
