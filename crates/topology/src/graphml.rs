//! A minimal, from-scratch GraphML reader/writer.
//!
//! The paper's Table 5 topologies come from the Internet Topology Zoo,
//! which distributes GraphML files. Those files are not redistributable
//! inside this repository (the evaluation therefore uses shape-exact
//! synthetic stand-ins — see `DESIGN.md` §3), but users who *have* the
//! Zoo files can load them here and run every experiment on the real
//! graphs:
//!
//! ```no_run
//! let text = std::fs::read_to_string("Geant2012.graphml").unwrap();
//! let named = unroller_topology::graphml::parse_graphml(&text).unwrap();
//! println!("{} nodes, diameter {}", named.graph.node_count(), named.graph.diameter());
//! ```
//!
//! The parser handles the XML subset GraphML actually uses: element
//! tags with single- or double-quoted attributes, self-closing tags,
//! comments, processing instructions, character data, and the five
//! predefined entities. It ignores elements it does not know, so Zoo
//! files' extensive `<data>` annotations parse cleanly.

use crate::graph::Graph;
use std::collections::HashMap;
use std::fmt;

/// A parsed graph plus the node names from the file (if any).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedGraph {
    /// The graph, with nodes densely re-indexed in file order.
    pub graph: Graph,
    /// `names[node]` is the node's label (falling back to its GraphML
    /// id when the file carries no label data).
    pub names: Vec<String>,
}

/// GraphML parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphMlError {
    /// Malformed XML at (byte offset, description).
    Xml(usize, String),
    /// An `<edge>` referenced an undeclared node id.
    UnknownNode(String),
    /// An `<edge>` lacked a `source` or `target` attribute.
    IncompleteEdge,
    /// The document contained no `<graph>` element.
    NoGraph,
}

impl fmt::Display for GraphMlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphMlError::Xml(at, what) => write!(f, "malformed XML at byte {at}: {what}"),
            GraphMlError::UnknownNode(id) => write!(f, "edge references unknown node `{id}`"),
            GraphMlError::IncompleteEdge => write!(f, "edge missing source/target"),
            GraphMlError::NoGraph => write!(f, "no <graph> element found"),
        }
    }
}

impl std::error::Error for GraphMlError {}

#[derive(Debug, PartialEq)]
enum Event {
    Open {
        name: String,
        attrs: Vec<(String, String)>,
        self_closing: bool,
    },
    Close(String),
    Text(String),
}

fn decode_entities(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

fn encode_entities(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Tokenizes the XML subset GraphML uses.
fn tokenize(text: &str) -> Result<Vec<Event>, GraphMlError> {
    let bytes = text.as_bytes();
    let mut events = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            // Character data until the next tag.
            let start = i;
            while i < bytes.len() && bytes[i] != b'<' {
                i += 1;
            }
            let chunk = text[start..i].trim();
            if !chunk.is_empty() {
                events.push(Event::Text(decode_entities(chunk)));
            }
            continue;
        }
        // A tag of some kind.
        if text[i..].starts_with("<!--") {
            match text[i..].find("-->") {
                Some(end) => i += end + 3,
                None => return Err(GraphMlError::Xml(i, "unterminated comment".into())),
            }
            continue;
        }
        if text[i..].starts_with("<?") {
            match text[i..].find("?>") {
                Some(end) => i += end + 2,
                None => {
                    return Err(GraphMlError::Xml(i, "unterminated declaration".into()));
                }
            }
            continue;
        }
        if text[i..].starts_with("<!") {
            // DOCTYPE etc.: skip to the closing '>'.
            match text[i..].find('>') {
                Some(end) => i += end + 1,
                None => return Err(GraphMlError::Xml(i, "unterminated <! section".into())),
            }
            continue;
        }
        if text[i..].starts_with("</") {
            let end = text[i..]
                .find('>')
                .ok_or_else(|| GraphMlError::Xml(i, "unterminated closing tag".into()))?;
            let name = text[i + 2..i + end].trim().to_string();
            events.push(Event::Close(name));
            i += end + 1;
            continue;
        }
        // Opening tag: scan to '>' while honoring quoted attributes.
        let tag_start = i + 1;
        let mut j = tag_start;
        let mut quote: Option<u8> = None;
        loop {
            if j >= bytes.len() {
                return Err(GraphMlError::Xml(i, "unterminated tag".into()));
            }
            match (quote, bytes[j]) {
                (None, b'>') => break,
                (None, q @ (b'"' | b'\'')) => quote = Some(q),
                (Some(q), c) if c == q => quote = None,
                _ => {}
            }
            j += 1;
        }
        let raw = &text[tag_start..j];
        let (raw, self_closing) = match raw.strip_suffix('/') {
            Some(r) => (r, true),
            None => (raw, false),
        };
        let mut parts = raw.splitn(2, char::is_whitespace);
        let name = parts
            .next()
            .filter(|n| !n.is_empty())
            .ok_or_else(|| GraphMlError::Xml(i, "empty tag name".into()))?
            .to_string();
        let attrs = parse_attrs(parts.next().unwrap_or(""), i)?;
        events.push(Event::Open {
            name,
            attrs,
            self_closing,
        });
        i = j + 1;
    }
    Ok(events)
}

fn parse_attrs(raw: &str, at: usize) -> Result<Vec<(String, String)>, GraphMlError> {
    let mut attrs = Vec::new();
    let bytes = raw.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let key = raw[key_start..i].to_string();
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'=' {
            return Err(GraphMlError::Xml(
                at,
                format!("attribute `{key}` has no value"),
            ));
        }
        i += 1; // '='
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || (bytes[i] != b'"' && bytes[i] != b'\'') {
            return Err(GraphMlError::Xml(
                at,
                format!("attribute `{key}` not quoted"),
            ));
        }
        let q = bytes[i];
        i += 1;
        let val_start = i;
        while i < bytes.len() && bytes[i] != q {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(GraphMlError::Xml(
                at,
                format!("attribute `{key}` unterminated"),
            ));
        }
        attrs.push((key, decode_entities(&raw[val_start..i])));
        i += 1; // closing quote
    }
    Ok(attrs)
}

fn attr<'a>(attrs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    attrs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Parses a GraphML document into a dense undirected [`Graph`] plus
/// node names. Directed files are read as undirected (the evaluation's
/// graphs are physical link topologies).
pub fn parse_graphml(text: &str) -> Result<NamedGraph, GraphMlError> {
    let events = tokenize(text)?;

    // Pass 1: find the key id carrying the node label, if declared.
    let mut label_key: Option<String> = None;
    for e in &events {
        if let Event::Open { name, attrs, .. } = e {
            if name == "key"
                && attr(attrs, "for") == Some("node")
                && attr(attrs, "attr.name") == Some("label")
            {
                label_key = attr(attrs, "id").map(str::to_string);
            }
        }
    }

    // Pass 2: collect nodes and edges.
    let mut ids: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut labels: HashMap<usize, String> = HashMap::new();
    let mut edges: Vec<(String, String)> = Vec::new();
    let mut saw_graph = false;

    let mut current_node: Option<usize> = None;
    let mut pending_label_data = false;

    for e in &events {
        match e {
            Event::Open {
                name,
                attrs,
                self_closing,
            } => match name.as_str() {
                "graph" => saw_graph = true,
                "node" => {
                    let id = attr(attrs, "id")
                        .ok_or_else(|| GraphMlError::Xml(0, "node without id".into()))?
                        .to_string();
                    let idx = *index.entry(id.clone()).or_insert_with(|| {
                        ids.push(id);
                        ids.len() - 1
                    });
                    if !self_closing {
                        current_node = Some(idx);
                    }
                }
                "edge" => {
                    let (Some(s), Some(t)) = (attr(attrs, "source"), attr(attrs, "target")) else {
                        return Err(GraphMlError::IncompleteEdge);
                    };
                    edges.push((s.to_string(), t.to_string()));
                }
                "data" => {
                    pending_label_data = current_node.is_some()
                        && label_key
                            .as_deref()
                            .is_some_and(|k| attr(attrs, "key") == Some(k));
                }
                _ => {}
            },
            Event::Close(name) => match name.as_str() {
                "node" => current_node = None,
                "data" => pending_label_data = false,
                _ => {}
            },
            Event::Text(text) => {
                if pending_label_data {
                    if let Some(idx) = current_node {
                        labels.insert(idx, text.clone());
                    }
                }
            }
        }
    }

    if !saw_graph {
        return Err(GraphMlError::NoGraph);
    }
    let mut graph = Graph::new(ids.len());
    for (s, t) in edges {
        let &u = index.get(&s).ok_or(GraphMlError::UnknownNode(s))?;
        let &v = index.get(&t).ok_or(GraphMlError::UnknownNode(t))?;
        graph.add_edge(u, v);
    }
    let names = ids
        .iter()
        .enumerate()
        .map(|(i, id)| labels.get(&i).cloned().unwrap_or_else(|| id.clone()))
        .collect();
    Ok(NamedGraph { graph, names })
}

/// Serializes a graph (and optional node names) to GraphML that this
/// module — and standard tools — can read back.
pub fn to_graphml(graph: &Graph, names: Option<&[String]>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, r#"<?xml version="1.0" encoding="utf-8"?>"#);
    let _ = writeln!(
        out,
        r#"<graphml xmlns="http://graphml.graphdrawing.org/xmlns">"#
    );
    let _ = writeln!(
        out,
        r#"  <key id="d0" for="node" attr.name="label" attr.type="string"/>"#
    );
    let _ = writeln!(out, r#"  <graph edgedefault="undirected">"#);
    for n in graph.nodes() {
        match names.and_then(|ns| ns.get(n)) {
            Some(name) => {
                let _ = writeln!(
                    out,
                    r#"    <node id="n{n}"><data key="d0">{}</data></node>"#,
                    encode_entities(name)
                );
            }
            None => {
                let _ = writeln!(out, r#"    <node id="n{n}"/>"#);
            }
        }
    }
    for u in graph.nodes() {
        for &v in graph.neighbors(u) {
            if u < v {
                let _ = writeln!(out, r#"    <edge source="n{u}" target="n{v}"/>"#);
            }
        }
    }
    let _ = writeln!(out, "  </graph>");
    let _ = writeln!(out, "</graphml>");
    out
}

/// Loads a GraphML file from disk.
pub fn load_graphml_file(path: impl AsRef<std::path::Path>) -> std::io::Result<NamedGraph> {
    let text = std::fs::read_to_string(path)?;
    parse_graphml(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_connected;

    const SAMPLE: &str = r#"<?xml version="1.0" encoding="utf-8"?>
<!-- a Topology-Zoo-shaped sample -->
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="label" attr.type="string" for="node" id="d33"/>
  <key attr.name="LinkSpeed" attr.type="string" for="edge" id="d40"/>
  <graph edgedefault="undirected">
    <node id="0">
      <data key="d33">Vienna &amp; Environs</data>
    </node>
    <node id="1">
      <data key="d33">Prague</data>
    </node>
    <node id="2"/>
    <edge source="0" target="1">
      <data key="d40">10G</data>
    </edge>
    <edge source="1" target="2"/>
  </graph>
</graphml>"#;

    #[test]
    fn parses_zoo_shaped_sample() {
        let named = parse_graphml(SAMPLE).unwrap();
        assert_eq!(named.graph.node_count(), 3);
        assert_eq!(named.graph.edge_count(), 2);
        assert!(named.graph.has_edge(0, 1));
        assert!(named.graph.has_edge(1, 2));
        assert_eq!(named.names[0], "Vienna & Environs"); // entity decoded
        assert_eq!(named.names[1], "Prague");
        assert_eq!(named.names[2], "2"); // falls back to the id
    }

    /// Canonical edge set for structure comparison (adjacency-list
    /// *order* is not meaningful and differs across construction
    /// orders).
    fn edge_set(g: &Graph) -> Vec<(usize, usize)> {
        let mut edges: Vec<(usize, usize)> = g
            .nodes()
            .flat_map(|u| {
                g.neighbors(u)
                    .iter()
                    .filter(move |&&v| u < v)
                    .map(move |&v| (u, v))
            })
            .collect();
        edges.sort_unstable();
        edges
    }

    #[test]
    fn roundtrip_preserves_structure() {
        for seed in 0..5 {
            let g = random_connected(20, 15, seed);
            let names: Vec<String> = (0..20).map(|i| format!("node-{i}")).collect();
            let text = to_graphml(&g, Some(&names));
            let back = parse_graphml(&text).unwrap();
            assert_eq!(back.graph.node_count(), g.node_count(), "seed {seed}");
            assert_eq!(edge_set(&back.graph), edge_set(&g), "seed {seed}");
            assert_eq!(back.names, names);
        }
    }

    #[test]
    fn roundtrip_without_names() {
        let g = random_connected(8, 4, 9);
        let back = parse_graphml(&to_graphml(&g, None)).unwrap();
        assert_eq!(edge_set(&back.graph), edge_set(&g));
    }

    #[test]
    fn rejects_edge_to_unknown_node() {
        let text = r#"<graphml><graph>
            <node id="a"/>
            <edge source="a" target="ghost"/>
        </graph></graphml>"#;
        assert!(matches!(
            parse_graphml(text),
            Err(GraphMlError::UnknownNode(id)) if id == "ghost"
        ));
    }

    #[test]
    fn rejects_incomplete_edge() {
        let text = r#"<graphml><graph><node id="a"/><edge source="a"/></graph></graphml>"#;
        assert_eq!(parse_graphml(text), Err(GraphMlError::IncompleteEdge));
    }

    #[test]
    fn rejects_missing_graph_element() {
        assert_eq!(
            parse_graphml("<graphml></graphml>"),
            Err(GraphMlError::NoGraph)
        );
    }

    #[test]
    fn rejects_malformed_xml() {
        assert!(matches!(
            parse_graphml("<graphml><graph><node id="),
            Err(GraphMlError::Xml(..))
        ));
        assert!(matches!(
            parse_graphml("<graphml><!-- unterminated"),
            Err(GraphMlError::Xml(..))
        ));
    }

    #[test]
    fn quoted_gt_inside_attribute() {
        let text = r#"<graphml><graph>
            <node id="a>b"/>
            <node id="c"/>
            <edge source="a>b" target="c"/>
        </graph></graphml>"#;
        let named = parse_graphml(text).unwrap();
        assert_eq!(named.graph.node_count(), 2);
        assert!(named.graph.has_edge(0, 1));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let text = r#"<graphml><graph>
            <node id="a"/><node id="b"/>
            <edge source="a" target="b"/>
            <edge source="b" target="a"/>
        </graph></graphml>"#;
        let named = parse_graphml(text).unwrap();
        assert_eq!(named.graph.edge_count(), 1);
    }

    #[test]
    fn single_quoted_attributes() {
        let text = "<graphml><graph><node id='x'/><node id='y'/><edge source='x' target='y'/></graph></graphml>";
        let named = parse_graphml(text).unwrap();
        assert_eq!(named.graph.edge_count(), 1);
    }

    #[test]
    fn loaded_graph_runs_the_full_pipeline() {
        // A loaded topology plugs into path/loop machinery directly.
        let g = random_connected(16, 12, 3);
        let named = parse_graphml(&to_graphml(&g, None)).unwrap();
        let mut rng = unroller_core::test_rng(4);
        let scenario =
            crate::loops::sample_scenario(&named.graph, 10, 100, &mut rng).expect("has loops");
        assert!(scenario.l() >= 2);
    }
}
