//! # unroller-topology
//!
//! The topology substrate for the Unroller evaluation: switch-level
//! graphs, the paper's Table 5 topologies, and routing-loop scenario
//! sampling.
//!
//! * [`graph`] — an undirected graph with BFS shortest paths,
//!   eccentricity and diameter.
//! * [`generators`] — `k`-ary fat-trees, VL2 fabrics, WAN-like graphs
//!   with exact (node count, diameter), rings, grids, and random
//!   connected graphs.
//! * [`zoo`] — the six named Table 5 topologies (Stanford, BellSouth,
//!   GEANT, ATT-NA, UsCarrier, FatTree4), matching the published node
//!   counts and diameters.
//! * [`loops`] — sampling of routing loops that intersect a path, and
//!   the [`loops::LoopScenario`] → packet-walk conversion.
//! * [`ids`] — per-run random switch identifier assignment.
//! * [`regions`] — contiguous-band domain partitions for the federated
//!   control plane.
//!
//! ```
//! use unroller_topology::{loops, zoo, ids};
//! use unroller_core::prelude::*;
//!
//! let topo = zoo::geant();
//! let mut rng = unroller_core::test_rng(1);
//! let scenario = loops::sample_scenario(&topo.graph, 20, 100, &mut rng).unwrap();
//! let switch_ids = ids::assign_random_ids(topo.graph.node_count(), &mut rng);
//! let walk = scenario.walk(&switch_ids);
//!
//! let det = Unroller::from_params(UnrollerParams::default()).unwrap();
//! let outcome = run_detector(&det, &walk, 100_000);
//! assert!(outcome.reported_at.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod graph;
pub mod graphml;
pub mod ids;
pub mod loops;
pub mod regions;
pub mod zoo;

pub use graph::{Graph, NodeId};
pub use loops::LoopScenario;
pub use regions::DomainMap;
pub use zoo::Topology;
