//! Topology generators: data-center fabrics (fat-tree, VL2) and
//! parameterized WAN-like graphs with a prescribed node count and
//! diameter.

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// A layered data-center fabric with a layer oracle (used by the
/// PathDump baseline, which is only applicable to such topologies).
#[derive(Debug, Clone)]
pub struct LayeredFabric {
    /// The switch-level graph.
    pub graph: Graph,
    /// `layers[node]` is 0 for edge/ToR, 1 for aggregation, 2 for
    /// core/intermediate.
    pub layers: Vec<u8>,
}

impl LayeredFabric {
    /// Nodes on the given layer.
    pub fn layer_nodes(&self, layer: u8) -> Vec<NodeId> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == layer)
            .map(|(i, _)| i)
            .collect()
    }
}

/// A `k`-ary fat-tree **switch-level** topology (servers omitted):
/// `(k/2)²` core switches and `k` pods of `k/2` aggregation plus `k/2`
/// edge switches each. For `k = 4`: 20 switches, diameter 4 — the
/// paper's *FatTree4* row in Table 5.
///
/// # Panics
///
/// Panics if `k` is odd or `k < 2`.
pub fn fat_tree(k: usize) -> LayeredFabric {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
    let half = k / 2;
    let cores = half * half;
    let n = cores + k * k; // cores + k pods × (half agg + half edge)
    let mut g = Graph::new(n);
    let mut layers = vec![0u8; n];

    // Node numbering: [0, cores) cores, then per pod `p`:
    //   agg  p·k + a        for a in 0..half
    //   edge p·k + half + e for e in 0..half
    let agg = |p: usize, a: usize| cores + p * k + a;
    let edge = |p: usize, e: usize| cores + p * k + half + e;

    for layer in layers.iter_mut().take(cores) {
        *layer = 2;
    }
    for p in 0..k {
        for a in 0..half {
            layers[agg(p, a)] = 1;
            // Aggregation switch `a` connects to cores [a·half, (a+1)·half).
            for j in 0..half {
                g.add_edge(agg(p, a), a * half + j);
            }
            // Full bipartite agg↔edge inside the pod.
            for e in 0..half {
                g.add_edge(agg(p, a), edge(p, e));
            }
        }
    }
    LayeredFabric { graph: g, layers }
}

/// A VL2-style fabric: `ni` intermediate switches, `na` aggregation
/// switches (each connected to every intermediate), and `ntor`
/// top-of-rack switches (each dual-homed to two aggregation switches).
///
/// # Panics
///
/// Panics if any layer is empty or `na < 2`.
pub fn vl2(ni: usize, na: usize, ntor: usize) -> LayeredFabric {
    assert!(ni >= 1 && na >= 2 && ntor >= 1);
    let n = ni + na + ntor;
    let mut g = Graph::new(n);
    let mut layers = vec![0u8; n];
    // Numbering: [0, ni) intermediates, [ni, ni+na) aggs, rest ToRs.
    for layer in layers.iter_mut().take(ni) {
        *layer = 2;
    }
    for a in 0..na {
        layers[ni + a] = 1;
        for i in 0..ni {
            g.add_edge(ni + a, i);
        }
    }
    for t in 0..ntor {
        let tor = ni + na + t;
        g.add_edge(tor, ni + t % na);
        g.add_edge(tor, ni + (t + 1) % na);
    }
    LayeredFabric { graph: g, layers }
}

/// A WAN-like topology with exactly `n` nodes and diameter exactly `d`.
///
/// Construction: a backbone path of `d + 1` nodes fixes the diameter;
/// the remaining nodes attach to interior backbone positions
/// (`1 ..= d − 1`), which provably cannot reduce *or* increase the
/// diameter; finally `extra_edges` chords are added between leaves
/// hanging off the same or adjacent backbone positions (again
/// diameter-neutral, see the proof sketch in the module tests). This is
/// the Topology-Zoo substitute documented in `DESIGN.md`: Table 5's
/// metrics depend on the (node count, diameter) pair, which we match
/// exactly.
///
/// # Panics
///
/// Panics if `d < 2` or `n < d + 1`.
pub fn wan_like(n: usize, d: usize, extra_edges: usize, seed: u64) -> Graph {
    assert!(d >= 2, "diameter must be at least 2");
    assert!(n > d, "need at least d + 1 nodes");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x77616e);
    let mut g = Graph::new(n);
    // Backbone: nodes 0 ..= d.
    for i in 0..d {
        g.add_edge(i, i + 1);
    }
    // Leaves: nodes d+1 .. n, each attached to an interior backbone
    // position. attach[leaf - (d+1)] records the position.
    let leaves: Vec<NodeId> = (d + 1..n).collect();
    let mut attach = Vec::with_capacity(leaves.len());
    for &leaf in &leaves {
        let pos = rng.gen_range(1..d); // interior: 1 ..= d-1
        g.add_edge(leaf, pos);
        attach.push(pos);
    }
    // Chords between leaves on the same or adjacent backbone positions.
    let mut added = 0;
    let mut guard = 0;
    while added < extra_edges && leaves.len() >= 2 && guard < extra_edges * 50 + 100 {
        guard += 1;
        let i = rng.gen_range(0..leaves.len());
        let j = rng.gen_range(0..leaves.len());
        if i == j {
            continue;
        }
        let (pi, pj) = (attach[i], attach[j]);
        if pi.abs_diff(pj) <= 1 && !g.has_edge(leaves[i], leaves[j]) {
            g.add_edge(leaves[i], leaves[j]);
            added += 1;
        }
    }
    debug_assert_eq!(g.diameter(), d);
    g
}

/// A ring of `n` nodes (diameter `⌊n/2⌋`).
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3);
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n);
    }
    g
}

/// A `w × h` grid.
pub fn grid(w: usize, h: usize) -> Graph {
    assert!(w >= 1 && h >= 1);
    let mut g = Graph::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let u = y * w + x;
            if x + 1 < w {
                g.add_edge(u, u + 1);
            }
            if y + 1 < h {
                g.add_edge(u, u + w);
            }
        }
    }
    g
}

/// An Erdős–Rényi-ish random connected graph: a random spanning tree
/// plus `extra` random edges. Useful for fuzzing the loop sampler.
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x6772617068);
    let mut g = Graph::new(n);
    let mut order: Vec<NodeId> = (0..n).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        g.add_edge(order[i], parent);
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra && guard < extra * 50 + 100 {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v);
            added += 1;
        }
    }
    g
}

/// Builds a topology from a CLI-friendly spec string:
///
/// * `ring:N` — an `N`-node ring;
/// * `grid:WxH` — a `W × H` grid;
/// * `fat-tree:K` — a `K`-ary fat tree (pod count `K`);
/// * `wan:N[:D[:SEED]]` — a WAN-like graph of `N` nodes with diameter
///   `D` (default 8), deterministically seeded;
/// * `random:N[:EXTRA[:SEED]]` — random connected graph with `EXTRA`
///   non-tree edges.
///
/// Returns `None` for a malformed spec. This is the shared parser
/// behind the `unroller-engine` CLI's `--topology` flag.
pub fn from_spec(spec: &str) -> Option<Graph> {
    let (kind, rest) = spec.split_once(':')?;
    match kind {
        "ring" => {
            let n: usize = rest.parse().ok()?;
            (n >= 3).then(|| ring(n))
        }
        "grid" => {
            let (w, h) = rest.split_once('x')?;
            let (w, h): (usize, usize) = (w.parse().ok()?, h.parse().ok()?);
            (w >= 1 && h >= 1).then(|| grid(w, h))
        }
        "fat-tree" => {
            let k: usize = rest.parse().ok()?;
            (k >= 2 && k.is_multiple_of(2)).then(|| fat_tree(k).graph)
        }
        "wan" => {
            let mut parts = rest.split(':');
            let n: usize = parts.next()?.parse().ok()?;
            let d: usize = match parts.next() {
                Some(p) => p.parse().ok()?,
                None => 8,
            };
            let seed: u64 = match parts.next() {
                Some(p) => p.parse().ok()?,
                None => 1,
            };
            (n >= 16 && d >= 2 && n > d).then(|| wan_like(n, d, n / 4, seed))
        }
        "random" => {
            let mut parts = rest.split(':');
            let n: usize = parts.next()?.parse().ok()?;
            let extra: usize = match parts.next() {
                Some(p) => p.parse().ok()?,
                None => n / 4,
            };
            let seed: u64 = match parts.next() {
                Some(p) => p.parse().ok()?,
                None => 1,
            };
            (n >= 2).then(|| random_connected(n, extra, seed))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_spec_builds_every_kind() {
        assert_eq!(from_spec("ring:8").unwrap().node_count(), 8);
        assert_eq!(from_spec("grid:4x3").unwrap().node_count(), 12);
        assert_eq!(from_spec("fat-tree:4").unwrap().node_count(), 20);
        let wan = from_spec("wan:32").unwrap();
        assert_eq!(wan.node_count(), 32);
        assert!(wan.is_connected());
        let wan = from_spec("wan:64:12:9").unwrap();
        assert_eq!(wan.node_count(), 64);
        assert_eq!(wan.diameter(), 12);
        assert!(wan.is_connected());
        let rnd = from_spec("random:10:3:7").unwrap();
        assert_eq!(rnd.node_count(), 10);
        assert!(rnd.is_connected());
    }

    #[test]
    fn from_spec_rejects_malformed() {
        for bad in [
            "",
            "ring",
            "ring:2",
            "ring:x",
            "grid:4",
            "grid:0x3",
            "fat-tree:3",
            "mesh:4",
            "random:",
        ] {
            assert!(from_spec(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn fat_tree_4_matches_table5_row() {
        let ft = fat_tree(4);
        assert_eq!(ft.graph.node_count(), 20);
        assert_eq!(ft.graph.diameter(), 4);
        assert!(ft.graph.is_connected());
        assert_eq!(ft.layer_nodes(2).len(), 4); // cores
        assert_eq!(ft.layer_nodes(1).len(), 8); // aggs
        assert_eq!(ft.layer_nodes(0).len(), 8); // edges
    }

    #[test]
    fn fat_tree_structure_is_layered() {
        let ft = fat_tree(4);
        // Every edge connects adjacent layers.
        for u in ft.graph.nodes() {
            for &v in ft.graph.neighbors(u) {
                assert_eq!(
                    ft.layers[u].abs_diff(ft.layers[v]),
                    1,
                    "edge {u}-{v} skips a layer"
                );
            }
        }
    }

    #[test]
    fn fat_tree_8() {
        let ft = fat_tree(8);
        // (8/2)² = 16 cores + 8 pods × 8 = 80 switches.
        assert_eq!(ft.graph.node_count(), 80);
        assert_eq!(ft.graph.diameter(), 4);
    }

    #[test]
    fn vl2_shape() {
        let f = vl2(4, 8, 20);
        assert_eq!(f.graph.node_count(), 32);
        assert!(f.graph.is_connected());
        assert!(f.graph.diameter() <= 4);
        for u in f.graph.nodes() {
            for &v in f.graph.neighbors(u) {
                assert_eq!(f.layers[u].abs_diff(f.layers[v]), 1);
            }
        }
    }

    #[test]
    fn wan_like_hits_exact_node_count_and_diameter() {
        for (n, d) in [(16, 2), (51, 7), (40, 8), (25, 5), (158, 35)] {
            let g = wan_like(n, d, n / 2, 42);
            assert_eq!(g.node_count(), n, "n for ({n},{d})");
            assert_eq!(g.diameter(), d, "diameter for ({n},{d})");
            assert!(g.is_connected());
        }
    }

    #[test]
    fn wan_like_diameter_stable_across_seeds() {
        for seed in 0..20 {
            let g = wan_like(30, 6, 15, seed);
            assert_eq!(g.diameter(), 6, "seed {seed}");
        }
    }

    #[test]
    fn ring_and_grid() {
        assert_eq!(ring(8).diameter(), 4);
        assert_eq!(ring(9).diameter(), 4);
        assert_eq!(grid(4, 4).diameter(), 6);
        assert_eq!(grid(1, 7).diameter(), 6);
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..10 {
            let g = random_connected(40, 20, seed);
            assert!(g.is_connected(), "seed {seed}");
            assert!(g.edge_count() >= 39);
        }
    }
}
