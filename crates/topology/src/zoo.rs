//! The evaluation topologies of Table 5.
//!
//! The paper uses five real topologies from the Internet Topology Zoo /
//! the Mini-Stanford backbone plus a 4-ary fat-tree. The Zoo's GraphML
//! data is not redistributable inside this repository, so the WAN
//! topologies are *synthesized to the published (node count, diameter)
//! pairs* with deterministic seeds (see `DESIGN.md` §3 for why this
//! preserves Table 5's metrics); the fat-tree is exact.
//!
//! | name | nodes | diameter |
//! |---|---|---|
//! | Stanford  | 16  | 2  |
//! | BellSouth | 51  | 7  |
//! | GEANT     | 40  | 8  |
//! | ATT-NA    | 25  | 5  |
//! | UsCarrier | 158 | 35 |
//! | FatTree4  | 20  | 4  |

use crate::generators::{fat_tree, wan_like, LayeredFabric};
use crate::graph::Graph;

/// A named evaluation topology.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Display name (matches the paper's Table 5 rows).
    pub name: &'static str,
    /// The switch-level graph.
    pub graph: Graph,
    /// Layer oracle for layered fabrics (`None` for WANs) — this is what
    /// makes PathDump applicable.
    pub layers: Option<Vec<u8>>,
}

impl Topology {
    fn wan(name: &'static str, n: usize, d: usize, extra: usize, seed: u64) -> Self {
        Topology {
            name,
            graph: wan_like(n, d, extra, seed),
            layers: None,
        }
    }

    fn fabric(name: &'static str, f: LayeredFabric) -> Self {
        Topology {
            name,
            graph: f.graph,
            layers: Some(f.layers),
        }
    }

    /// Published node count / diameter pairs for the Table 5 rows.
    pub fn expected_shape(name: &str) -> Option<(usize, usize)> {
        Some(match name {
            "Stanford" => (16, 2),
            "BellSouth" => (51, 7),
            "GEANT" => (40, 8),
            "ATT-NA" => (25, 5),
            "UsCarrier" => (158, 35),
            "FatTree4" => (20, 4),
            _ => return None,
        })
    }
}

/// Mini-Stanford backbone stand-in: 16 nodes, diameter 2.
pub fn stanford() -> Topology {
    Topology::wan("Stanford", 16, 2, 10, 0x5741)
}

/// BellSouth stand-in: 51 nodes, diameter 7.
pub fn bellsouth() -> Topology {
    Topology::wan("BellSouth", 51, 7, 18, 0x5742)
}

/// GEANT stand-in: 40 nodes, diameter 8.
pub fn geant() -> Topology {
    Topology::wan("GEANT", 40, 8, 14, 0x5743)
}

/// AT&T North America stand-in: 25 nodes, diameter 5.
pub fn att_na() -> Topology {
    Topology::wan("ATT-NA", 25, 5, 10, 0x5744)
}

/// UsCarrier stand-in: 158 nodes, diameter 35 (a long, sparse carrier
/// chain).
pub fn us_carrier() -> Topology {
    Topology::wan("UsCarrier", 158, 35, 30, 0x5745)
}

/// The exact 4-ary fat-tree (20 switches, diameter 4).
pub fn fattree4() -> Topology {
    Topology::fabric("FatTree4", fat_tree(4))
}

/// A small VL2 fabric (4 intermediates, 8 aggregations, 20 ToRs) — the
/// other topology class PathDump supports ("can only be applied to a
/// very limited set of topologies, e.g., FatTree and VL2"). Not a
/// Table 5 row, but exercised by the PathDump applicability tests.
pub fn vl2_small() -> Topology {
    Topology::fabric("VL2", crate::generators::vl2(4, 8, 20))
}

/// All six Table 5 topologies, in row order.
pub fn table5_topologies() -> Vec<Topology> {
    vec![
        stanford(),
        bellsouth(),
        geant(),
        att_na(),
        us_carrier(),
        fattree4(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_topology_matches_published_shape() {
        for t in table5_topologies() {
            let (n, d) = Topology::expected_shape(t.name).unwrap();
            assert_eq!(t.graph.node_count(), n, "{} node count", t.name);
            assert_eq!(t.graph.diameter(), d, "{} diameter", t.name);
            assert!(t.graph.is_connected(), "{} connected", t.name);
        }
    }

    #[test]
    fn only_fattree_is_layered() {
        for t in table5_topologies() {
            assert_eq!(t.layers.is_some(), t.name == "FatTree4", "{}", t.name);
        }
    }

    #[test]
    fn topologies_are_deterministic() {
        assert_eq!(geant().graph, geant().graph);
        assert_eq!(us_carrier().graph, us_carrier().graph);
    }

    #[test]
    fn unknown_name_has_no_expected_shape() {
        assert_eq!(Topology::expected_shape("Nonexistent"), None);
    }

    #[test]
    fn vl2_is_layered_and_connected() {
        let t = vl2_small();
        assert!(t.layers.is_some());
        assert!(t.graph.is_connected());
        assert_eq!(t.graph.node_count(), 32);
        assert!(t.graph.diameter() <= 4);
    }
}
