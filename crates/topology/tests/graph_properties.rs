//! Property-based tests over the topology substrate: graph invariants,
//! generator guarantees, and loop-sampler validity on arbitrary inputs.

// Index-style loops over node ids are clearer than iterator chains here.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use unroller_topology::generators::{fat_tree, random_connected, wan_like};
use unroller_topology::loops::{sample_cycle_through, sample_scenario};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `wan_like` hits the requested node count and diameter exactly,
    /// for arbitrary (n, d, extra, seed).
    #[test]
    fn wan_like_exact_shape(
        d in 2usize..20,
        extra_nodes in 0usize..40,
        chords in 0usize..20,
        seed in any::<u64>(),
    ) {
        let n = d + 1 + extra_nodes;
        let g = wan_like(n, d, chords, seed);
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.diameter(), d);
        prop_assert!(g.is_connected());
    }

    /// Shortest paths are valid (consecutive adjacency, no repeats) and
    /// their length matches the BFS distance.
    #[test]
    fn shortest_paths_are_shortest(
        n in 2usize..40,
        extra in 0usize..40,
        seed in any::<u64>(),
        pair in any::<(u64, u64)>(),
    ) {
        let g = random_connected(n, extra, seed);
        let src = (pair.0 as usize) % n;
        let dst = (pair.1 as usize) % n;
        let path = g.shortest_path(src, dst).expect("connected");
        prop_assert_eq!(path[0], src);
        prop_assert_eq!(*path.last().unwrap(), dst);
        for w in path.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
        let mut sorted = path.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), path.len(), "path revisits a node");
        prop_assert_eq!(path.len() - 1, g.bfs_distances(src)[dst]);
    }

    /// Sampled cycles are valid routing loops: adjacent consecutive
    /// nodes, closing edge, no repeated nodes, within the length cap.
    #[test]
    fn sampled_cycles_are_valid(
        n in 3usize..40,
        extra in 1usize..40,
        seed in any::<u64>(),
        start_raw in any::<u64>(),
        max_len in 2usize..20,
        rng_seed in any::<u64>(),
    ) {
        let g = random_connected(n, extra, seed);
        let start = (start_raw as usize) % n;
        let mut rng = unroller_core::test_rng(rng_seed);
        if let Some(c) = sample_cycle_through(&g, start, max_len, &mut rng) {
            prop_assert!(c.len() >= 2 && c.len() <= max_len);
            prop_assert_eq!(c[0], start);
            for w in c.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
            prop_assert!(g.has_edge(*c.last().unwrap(), c[0]));
            let mut sorted = c.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), c.len());
        }
    }

    /// Scenario geometry: the entry node starts the rotated cycle and no
    /// earlier path node lies on it, so `B` is exactly the entry index.
    #[test]
    fn scenarios_are_coherent(
        n in 4usize..30,
        extra in 2usize..30,
        seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let g = random_connected(n, extra, seed);
        let mut rng = unroller_core::test_rng(rng_seed);
        if let Some(s) = sample_scenario(&g, n, 50, &mut rng) {
            prop_assert_eq!(s.cycle[0], s.path[s.entry]);
            for &p in &s.path[..s.entry] {
                prop_assert!(!s.cycle.contains(&p));
            }
            prop_assert_eq!(s.b() + s.l(), s.x());
            // The walk materialization preserves lengths.
            let ids: Vec<u32> = (0..n as u32).map(|i| 10_000 + i).collect();
            let w = s.walk(&ids);
            prop_assert_eq!(w.b(), s.b());
            prop_assert_eq!(w.l(), s.l());
        }
    }

    /// Fat-trees of any even arity are layered, connected, and have
    /// diameter 4 (switch level).
    #[test]
    fn fat_tree_shape(k_half in 1usize..5) {
        let k = 2 * k_half;
        let f = fat_tree(k);
        prop_assert_eq!(f.graph.node_count(), (k / 2) * (k / 2) + k * k);
        prop_assert!(f.graph.is_connected());
        if k >= 4 {
            prop_assert_eq!(f.graph.diameter(), 4);
        }
        for u in f.graph.nodes() {
            for &v in f.graph.neighbors(u) {
                prop_assert_eq!(f.layers[u].abs_diff(f.layers[v]), 1);
            }
        }
    }

    /// Adding an edge never increases any pairwise distance.
    #[test]
    fn edges_only_shrink_distances(
        n in 3usize..25,
        extra in 0usize..20,
        seed in any::<u64>(),
        edge in any::<(u64, u64)>(),
    ) {
        let g = random_connected(n, extra, seed);
        let u = (edge.0 as usize) % n;
        let v = (edge.1 as usize) % n;
        prop_assume!(u != v && !g.has_edge(u, v));
        let before: Vec<Vec<usize>> = (0..n).map(|s| g.bfs_distances(s)).collect();
        let mut g2 = g.clone();
        g2.add_edge(u, v);
        for s in 0..n {
            let after = g2.bfs_distances(s);
            for t in 0..n {
                prop_assert!(after[t] <= before[s][t]);
            }
        }
    }
}
