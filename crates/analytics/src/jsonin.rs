//! A minimal recursive-descent JSON parser for event logs and store
//! files.
//!
//! The workspace's `serde`/`serde_json` are offline vendor stubs (see
//! `DESIGN.md` §9), so the reports the engine *writes* through
//! `unroller_engine::Json` need a hand-rolled counterpart to *read*
//! them back. This parser covers exactly the JSON that builder emits
//! (and standard JSON generally): objects in document order, the three
//! number shapes, `\uXXXX` escapes, and nothing exotic. One value per
//! parse — JSONL framing (one document per line) lives in the callers.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without fraction or exponent.
    UInt(u64),
    /// A negative integer without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` (integral floats included).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A tolerant JSONL line stream: yields each line's parsed document,
/// *skipping* corrupt or truncated lines instead of aborting — the
/// JSONL counterpart of `PcapStream`'s `Truncated` recovery. Partial
/// artifacts are a fact of life (a run killed mid-write, a disk that
/// filled, a log shipped over a lossy pipe), and one garbage line must
/// not cost the rest of the file.
///
/// Skips are counted, never silent: [`LenientLines::malformed_lines`]
/// reports how many lines failed to parse, and callers surface the
/// counter in their stats (`LoopStore::malformed_lines`, the event
/// reader's `InputStats`). Blank lines are ignored without counting.
#[derive(Debug)]
pub struct LenientLines<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    /// Lines skipped because they did not parse as JSON.
    pub malformed_lines: u64,
}

impl<'a> LenientLines<'a> {
    /// Streams over `text`, one JSON document per line.
    pub fn new(text: &'a str) -> Self {
        LenientLines {
            lines: text.lines().enumerate(),
            malformed_lines: 0,
        }
    }

    /// The next parseable line as `(1-based line number, value)`;
    /// `None` at end of input. Malformed lines are counted and skipped.
    #[allow(clippy::should_implement_trait)] // borrows self across yields
    pub fn next(&mut self) -> Option<(usize, Value)> {
        for (i, line) in self.lines.by_ref() {
            if line.trim().is_empty() {
                continue;
            }
            match parse(line) {
                Ok(v) => return Some((i + 1, v)),
                Err(_) => self.malformed_lines += 1,
            }
        }
        None
    }
}

/// A parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDC00..=\uDFFF`.
                            let ch = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Advance one UTF-8 scalar (the input is a &str, so
                    // char boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("short \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if integral {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(i) {
                        return Ok(Value::Int(-neg));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| ParseError {
                message: format!("bad number `{text}`"),
                offset: start,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Value::UInt(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nesting_and_accessors() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap().as_str(),
            Some("a\"b\\c\ndA")
        );
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn round_trips_engine_json() {
        let mut obj = unroller_engine::Json::object();
        obj.set("count", unroller_engine::Json::UInt(u64::MAX));
        obj.set("rate", unroller_engine::Json::Float(0.1));
        obj.set("name", unroller_engine::Json::Str("a\"b\nc".into()));
        obj.set(
            "xs",
            unroller_engine::Json::Array(vec![
                unroller_engine::Json::Int(-3),
                unroller_engine::Json::Bool(false),
            ]),
        );
        let v = parse(&obj.render()).unwrap();
        assert_eq!(v.get("count").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("rate").unwrap().as_f64(), Some(0.1));
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\nc"));
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 2);
        let pretty = parse(&obj.render_pretty()).unwrap();
        assert_eq!(pretty, v);
    }

    #[test]
    fn lenient_lines_skip_garbage_and_count_it() {
        let text = "{\"a\":1}\n\n<<<garbage>>>\n{\"b\":2}\n{\"truncated\":";
        let mut lines = LenientLines::new(text);
        let (n1, v1) = lines.next().unwrap();
        assert_eq!((n1, v1.get("a").unwrap().as_u64()), (1, Some(1)));
        let (n2, v2) = lines.next().unwrap();
        assert_eq!((n2, v2.get("b").unwrap().as_u64()), (4, Some(2)));
        assert!(lines.next().is_none());
        assert_eq!(lines.malformed_lines, 2, "garbage + truncated tail");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }
}
