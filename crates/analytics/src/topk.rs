//! A bounded-memory heavy-hitter tracker in the HashPipe mold
//! (Sivaraman et al., SOSP 2017 — see PAPERS.md): `d` pipelined stages
//! of `w` slots each, every slot holding one `(key, count)` pair.
//!
//! Updates touch at most `d` slots. The first stage always inserts —
//! evicting whatever it finds and carrying the evicted pair down the
//! pipeline — and later stages keep whichever of the resident and
//! carried pair has the larger count, so heavy keys settle into slots
//! while mice wash out the end of the pipeline. Memory is `d · w`
//! slots, independent of how many distinct keys stream through — which
//! is the property the analytics pipeline needs to rank looping flows
//! and switches over multi-million-event logs without a per-key map.

use std::hash::{Hash, Hasher};

/// A SplitMix64-based `Hasher` with a fixed per-stage seed, so slot
/// placement is deterministic across runs and hosts (std's default
/// hasher is randomly seeded per process — useless for reproducible
/// reports).
struct FixedHasher {
    state: u64,
}

impl Hasher for FixedHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

/// One tracked heavy hitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hitter<K> {
    /// The key.
    pub key: K,
    /// Its (approximate, never over-counted per slot) weight.
    pub weight: u64,
}

/// The d-stage × w-slot tracker.
#[derive(Debug, Clone)]
pub struct TopK<K> {
    stages: Vec<Vec<Option<(K, u64)>>>,
    width: usize,
    updates: u64,
}

impl<K: Hash + Eq + Clone> TopK<K> {
    /// A tracker with `stages` pipeline stages of `width` slots each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(stages: usize, width: usize) -> Self {
        assert!(stages >= 1 && width >= 1, "non-degenerate tracker");
        TopK {
            stages: vec![vec![None; width]; stages],
            width,
            updates: 0,
        }
    }

    /// A default geometry good for the report's top lists: 4 stages of
    /// 256 slots (≤ 1024 resident keys).
    pub fn default_geometry() -> Self {
        Self::new(4, 256)
    }

    fn slot(&self, stage: usize, key: &K) -> usize {
        let mut h = FixedHasher {
            state: 0xcbf2_9ce4_8422_2325 ^ (stage as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        key.hash(&mut h);
        (h.finish() % self.width as u64) as usize
    }

    /// Observes `key` with additional `weight`.
    pub fn update(&mut self, key: K, weight: u64) {
        self.updates += 1;
        // Stage 0: if resident, add; else always insert and carry the
        // evicted pair onward.
        let i = self.slot(0, &key);
        let mut carried: (K, u64) = match &mut self.stages[0][i] {
            Some((k, c)) if *k == key => {
                *c += weight;
                return;
            }
            slot => match slot.replace((key, weight)) {
                Some(prev) => prev,
                None => return,
            },
        };
        // Later stages: coalesce on match, fill empties, otherwise keep
        // the heavier pair and carry the lighter one on.
        for stage in 1..self.stages.len() {
            let i = self.slot(stage, &carried.0);
            match &mut self.stages[stage][i] {
                Some((k, c)) if *k == carried.0 => {
                    *c += carried.1;
                    return;
                }
                Some((_, c)) if *c >= carried.1 => continue,
                slot => {
                    match slot.replace(carried) {
                        Some(prev) => carried = prev,
                        None => return,
                    };
                }
            }
        }
        // The pair washed out of the last stage: dropped (bounded
        // memory means the tail is lossy, exactly like HashPipe).
    }

    /// Total update calls.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Resident slot capacity (`d · w`).
    pub fn capacity(&self) -> usize {
        self.stages.len() * self.width
    }

    /// The top `k` keys by aggregated resident weight, heaviest first
    /// (ties broken arbitrarily but deterministically).
    pub fn top(&self, k: usize) -> Vec<Hitter<K>> {
        let mut agg: Vec<(K, u64)> = Vec::new();
        for stage in &self.stages {
            for slot in stage.iter().flatten() {
                match agg.iter_mut().find(|(key, _)| *key == slot.0) {
                    Some((_, w)) => *w += slot.1,
                    None => agg.push(slot.clone()),
                }
            }
        }
        agg.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        agg.truncate(k);
        agg.into_iter()
            .map(|(key, weight)| Hitter { key, weight })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_keys_dominate_the_report() {
        let mut t: TopK<u32> = TopK::new(3, 32);
        // 4 heavy keys at 1000 updates each, 500 mice at 1 each.
        for round in 0..1000 {
            for heavy in 0..4u32 {
                t.update(heavy, 1);
            }
            if round < 500 {
                t.update(1000 + round, 1);
            }
        }
        let top = t.top(4);
        assert_eq!(top.len(), 4);
        let keys: Vec<u32> = top.iter().map(|h| h.key).collect();
        for heavy in 0..4u32 {
            assert!(keys.contains(&heavy), "heavy key {heavy} missing: {keys:?}");
        }
        for h in &top {
            assert!(h.weight >= 900, "heavy key undercounted: {h:?}");
        }
    }

    #[test]
    fn memory_is_bounded_by_geometry() {
        let mut t: TopK<u64> = TopK::new(2, 8);
        for key in 0..100_000u64 {
            t.update(key, 1);
        }
        assert_eq!(t.capacity(), 16);
        assert!(t.top(1000).len() <= 16);
        assert_eq!(t.updates(), 100_000);
    }

    #[test]
    fn weights_aggregate_across_stages() {
        let mut t: TopK<&'static str> = TopK::new(2, 2);
        for _ in 0..10 {
            t.update("a", 5);
        }
        let top = t.top(1);
        assert_eq!(top[0].key, "a");
        assert_eq!(top[0].weight, 50);
    }

    #[test]
    fn deterministic_across_instances() {
        let feed = |t: &mut TopK<u32>| {
            for i in 0..5000u32 {
                t.update(i % 97, (i % 7) as u64 + 1);
            }
        };
        let mut a = TopK::new(4, 16);
        let mut b = TopK::new(4, 16);
        feed(&mut a);
        feed(&mut b);
        let (ta, tb) = (a.top(10), b.top(10));
        assert_eq!(ta, tb);
        assert!(!ta.is_empty());
    }
}
