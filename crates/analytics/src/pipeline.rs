//! The streaming analytics pipeline: event logs and captures in,
//! classified loop report out.
//!
//! Everything here is single-pass and bounded: event logs stream line
//! by line ([`crate::events`]), captures record by record
//! (`dataplane::PcapStream`), and the working state is the loop store
//! (capped per-run flow lists), two HashPipe-style top-k trackers, and
//! capped observed/caught flow sets — peak memory is independent of
//! input size, which the analytics benchmark asserts by RSS.

use crate::events::{EventLogReader, LogItem, RunHeader};
use crate::store::{CycleKey, LoopStore};
use crate::topk::TopK;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use unroller_dataplane::{EthernetHeader, PcapItem, PcapStream};
use unroller_engine::Json;
use unroller_sim::{NullDetector, SimConfig, Simulator};
use unroller_topology::{generators, NodeId};
use unroller_verify::FwdChecker;

/// Cap on the distinct endpoint pairs tracked for imperiled-flow
/// analysis; pairs beyond it are counted but not classified.
pub const OBSERVED_PAIRS_CAP: usize = 65_536;

/// An endpoint pair (source node, destination node).
pub type Pair = (u32, u32);

/// Input-side accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct InputStats {
    /// Event-log files ingested.
    pub event_files: u64,
    /// Event records ingested.
    pub events: u64,
    /// Header (run-context) lines seen.
    pub headers: u64,
    /// Lines skipped as malformed.
    pub malformed_lines: u64,
    /// Event logs whose final line was cut off mid-record.
    pub truncated_event_logs: u64,
    /// Capture files ingested.
    pub captures: u64,
    /// Frames read from captures.
    pub frames: u64,
    /// Frames without the Unroller MAC convention (skipped).
    pub unattributed_frames: u64,
    /// Captures that ended mid-record (recovered, counted).
    pub truncated_captures: u64,
    /// Captured frames attributed to a caught (looping) flow.
    pub looped_frames: u64,
}

/// The streaming pipeline. Feed it inputs in any order (all event logs
/// first is conventional — capture frames attribute looped packets to
/// the loops the logs established), then [`finish`](Pipeline::finish).
#[derive(Debug)]
pub struct Pipeline {
    /// The loops observed by the inputs of this invocation.
    pub store: LoopStore,
    /// Input accounting.
    pub stats: InputStats,
    runs: Vec<RunHeader>,
    current: Option<RunHeader>,
    /// Endpoint pair → the cycle (and run) its flow was caught in.
    caught: HashMap<Pair, (CycleKey, String)>,
    observed: BTreeSet<Pair>,
    observed_overflow: u64,
    top_flows: TopK<Pair>,
    top_switches: TopK<u32>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline {
    /// An empty pipeline with the default top-k geometry.
    pub fn new() -> Self {
        Pipeline {
            store: LoopStore::new(),
            stats: InputStats::default(),
            runs: Vec::new(),
            current: None,
            caught: HashMap::new(),
            observed: BTreeSet::new(),
            observed_overflow: 0,
            top_flows: TopK::default_geometry(),
            top_switches: TopK::default_geometry(),
        }
    }

    fn observe_pair(&mut self, pair: Pair) {
        if self.observed.len() < OBSERVED_PAIRS_CAP || self.observed.contains(&pair) {
            self.observed.insert(pair);
        } else {
            self.observed_overflow += 1;
        }
    }

    /// Ingests one log item (the unit the bench drives directly).
    pub fn ingest_item(&mut self, item: LogItem) {
        match item {
            LogItem::Header(h) => {
                self.stats.headers += 1;
                self.runs.push(h.clone());
                self.current = Some(h);
            }
            LogItem::Event(ev) => {
                self.stats.events += 1;
                let (run_id, epoch) = match &self.current {
                    Some(h) => (h.run_id.clone(), ev.epoch.unwrap_or(h.epoch)),
                    None => ("unknown".to_string(), ev.epoch.unwrap_or(0)),
                };
                let pair = ev.flow.synthetic_endpoints();
                self.observe_pair(pair);
                // One event = one detected looped packet at minimum;
                // captures add the rest of the flow's looped frames.
                let key = self
                    .store
                    .observe(&ev.members, &run_id, epoch, Some(ev.flow), 1);
                self.caught.entry(pair).or_insert((key, run_id));
                self.top_flows.update(pair, 1);
                for &m in &ev.members {
                    self.top_switches.update(m, 1);
                }
            }
        }
    }

    /// Streams one event-log file.
    pub fn ingest_event_log(&mut self, path: &str) -> std::io::Result<()> {
        let mut reader = EventLogReader::open(path)?;
        for item in reader.by_ref() {
            self.ingest_item(item);
        }
        if let Some(e) = reader.io_error() {
            return Err(std::io::Error::other(e.to_string()));
        }
        self.stats.event_files += 1;
        self.stats.malformed_lines += reader.stats.malformed_lines;
        self.stats.truncated_event_logs += reader.stats.truncated_tail;
        Ok(())
    }

    /// Streams one pcap capture, chunked — the file is never loaded
    /// whole. Frames are attributed to endpoint pairs by the Unroller
    /// MAC convention; frames of caught flows count as looped packets.
    pub fn ingest_capture(&mut self, path: &str) -> Result<(), String> {
        let stream = PcapStream::open(path)
            .map_err(|e| format!("{path}: {e}"))?
            .map_err(|e| format!("{path}: {e}"))?;
        for item in stream {
            match item.map_err(|e| format!("{path}: {e}"))? {
                PcapItem::Truncated { .. } => {
                    self.stats.truncated_captures += 1;
                }
                PcapItem::Record(rec) => {
                    self.stats.frames += 1;
                    let pair = EthernetHeader::decode(&rec.data).and_then(|h| h.host_pair());
                    let Some(pair) = pair else {
                        self.stats.unattributed_frames += 1;
                        continue;
                    };
                    self.observe_pair(pair);
                    if let Some((key, run_id)) = self.caught.get(&pair) {
                        self.stats.looped_frames += 1;
                        let (key, run_id) = (key.clone(), run_id.clone());
                        self.store.attribute_packets(&key, &run_id, 1);
                        self.top_flows.update(pair, 1);
                        for &m in key.members() {
                            self.top_switches.update(m, 1);
                        }
                    }
                }
            }
        }
        self.stats.captures += 1;
        Ok(())
    }

    /// Folds a previously persisted store into this invocation's view
    /// (for cross-run transient/persistent classification) and returns
    /// the merged store to persist back.
    pub fn merge_prior(&mut self, prior: &LoopStore) {
        self.store.merge(prior);
    }

    /// Closes the pipeline: classify, cross-check, render the report.
    pub fn finish(self, top_k: usize, cross_check: bool) -> Report {
        Report::build(self, top_k, cross_check)
    }
}

/// How a walked flow ended, per the analytics-side forwarding walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WalkOutcome {
    Delivered { transits_loop: bool },
    Trapped,
    Dead,
}

/// Walks `src → dst` through the simulator's forwarding state,
/// flagging transit of any node in `looping`.
fn walk(
    sim: &Simulator<NullDetector>,
    src: NodeId,
    dst: NodeId,
    looping: &BTreeSet<NodeId>,
) -> WalkOutcome {
    let n = sim.graph().node_count();
    let column = sim.forwarding(dst);
    let mut transits = looping.contains(&src);
    let mut cur = src;
    for _ in 0..=n {
        if cur == dst {
            return WalkOutcome::Delivered {
                transits_loop: transits,
            };
        }
        match column[cur] {
            None => return WalkOutcome::Dead,
            Some(next) => cur = next,
        }
        if looping.contains(&cur) {
            transits = true;
        }
    }
    // More hops than nodes: the walk revisited something.
    WalkOutcome::Trapped
}

/// The flow-level classification derived from rebuilt routing state.
#[derive(Debug, Default)]
pub struct FlowAnalysis {
    /// Whether the analysis ran (all runs share one routing state).
    pub ran: bool,
    /// Why it did not run, if it did not.
    pub skipped: Option<String>,
    /// Pairs whose walk enters a loop.
    pub trapped: BTreeSet<Pair>,
    /// Pairs delivered today but transiting a looping router, never
    /// themselves caught — the imperiled set.
    pub imperiled: BTreeSet<Pair>,
    /// Looping routers as node indices (store memberships, de-based).
    pub looping_nodes: BTreeSet<NodeId>,
    /// The fwdcheck cross-check, if requested.
    pub cross_check: Option<CrossCheck>,
}

/// Agreement between the analytics classification and
/// `verify::fwdcheck` over the same rebuilt routing state.
#[derive(Debug)]
pub struct CrossCheck {
    /// Imperiled sets match exactly.
    pub imperiled_agree: bool,
    /// Trapped set matches fwdcheck's looping flows.
    pub trapped_agree: bool,
    /// Looping-router node sets match.
    pub routers_agree: bool,
    /// fwdcheck's imperiled count.
    pub imperiled_fwdcheck: usize,
    /// fwdcheck's looping-flow count.
    pub trapped_fwdcheck: usize,
    /// fwdcheck's looping-router count.
    pub routers_fwdcheck: usize,
}

impl CrossCheck {
    /// Every compared set agreed.
    pub fn agrees(&self) -> bool {
        self.imperiled_agree && self.trapped_agree && self.routers_agree
    }
}

fn flow_analysis(
    runs: &[RunHeader],
    store: &LoopStore,
    observed: &BTreeSet<Pair>,
    caught: &HashMap<Pair, (CycleKey, String)>,
    cross_check: bool,
) -> FlowAnalysis {
    let mut out = FlowAnalysis::default();
    let Some(first) = runs.first() else {
        out.skipped = Some("no run headers ingested".to_string());
        return out;
    };
    if runs.iter().any(|r| {
        r.topology != first.topology || r.injection != first.injection || r.id_base != first.id_base
    }) {
        out.skipped = Some(
            "runs span different topologies or injections; flow analysis needs one routing state"
                .to_string(),
        );
        return out;
    }
    let Some(graph) = generators::from_spec(&first.topology) else {
        out.skipped = Some(format!("unknown topology spec `{}`", first.topology));
        return out;
    };
    let n = graph.node_count();
    let ids: Vec<u32> = (0..n as u32).map(|i| first.id_base + i).collect();
    let mut sim = Simulator::new(graph.clone(), ids, NullDetector, SimConfig::default());
    if let Some((cycle, dst, _)) = &first.injection {
        sim.inject_cycle(cycle, *dst);
    }
    out.looping_nodes = store
        .looping_switches()
        .into_iter()
        .filter_map(|id| {
            let node = id.checked_sub(first.id_base)? as usize;
            (node < n).then_some(node)
        })
        .collect();
    for &(s, d) in observed {
        let (s_n, d_n) = (s as usize, d as usize);
        if s_n >= n || d_n >= n || s_n == d_n {
            continue;
        }
        match walk(&sim, s_n, d_n, &out.looping_nodes) {
            WalkOutcome::Trapped => {
                out.trapped.insert((s, d));
            }
            WalkOutcome::Delivered { transits_loop } => {
                if transits_loop && !caught.contains_key(&(s, d)) {
                    out.imperiled.insert((s, d));
                }
            }
            WalkOutcome::Dead => {}
        }
    }
    out.ran = true;
    if cross_check {
        let mut checker = FwdChecker::from_columns(graph, |dst| sim.forwarding(dst).to_vec());
        let flows: Vec<(NodeId, NodeId)> = observed
            .iter()
            .filter(|&&(s, d)| (s as usize) < n && (d as usize) < n && s != d)
            .map(|&(s, d)| (s as usize, d as usize))
            .collect();
        checker.register_flows(flows);
        let imperiled_fw: BTreeSet<Pair> = checker
            .imperiled_flows()
            .into_iter()
            .map(|(s, d)| (s as u32, d as u32))
            .collect();
        let trapped_fw: BTreeSet<Pair> = checker
            .looping_flows()
            .into_iter()
            .map(|(s, d)| (s as u32, d as u32))
            .collect();
        let routers_fw: BTreeSet<NodeId> = checker.looping_routers().into_iter().collect();
        out.cross_check = Some(CrossCheck {
            imperiled_agree: imperiled_fw == out.imperiled,
            trapped_agree: trapped_fw == out.trapped,
            routers_agree: routers_fw == out.looping_nodes,
            imperiled_fwdcheck: imperiled_fw.len(),
            trapped_fwdcheck: trapped_fw.len(),
            routers_fwdcheck: routers_fw.len(),
        });
    }
    out
}

/// Maps a loop's member nodes to a topology region label.
fn region_label(topology: &str, nodes: usize, members: &[Option<NodeId>]) -> String {
    if members.iter().any(|m| m.is_none()) {
        return "unknown".to_string();
    }
    let members: Vec<NodeId> = members.iter().map(|m| m.expect("checked")).collect();
    if let Some(k) = topology
        .strip_prefix("fat-tree:")
        .and_then(|k| k.parse::<usize>().ok())
    {
        if k >= 2 && k % 2 == 0 {
            let fabric = generators::fat_tree(k);
            if fabric.graph.node_count() == nodes {
                let layer_name = |l: u8| match l {
                    0 => "edge",
                    1 => "agg",
                    _ => "core",
                };
                let mut layers: BTreeSet<u8> = BTreeSet::new();
                for &m in &members {
                    match fabric.layers.get(m) {
                        Some(&l) => {
                            layers.insert(l);
                        }
                        None => return "unknown".to_string(),
                    }
                }
                return match layers.len() {
                    1 => layer_name(*layers.iter().next().expect("non-empty")).to_string(),
                    _ => "cross-layer".to_string(),
                };
            }
        }
    }
    // Generic topologies: index-quartile bands.
    if nodes == 0 {
        return "unknown".to_string();
    }
    let band = |m: NodeId| (m.min(nodes - 1) * 4 / nodes).min(3);
    let mut bands: BTreeSet<usize> = BTreeSet::new();
    for &m in &members {
        if m >= nodes {
            return "unknown".to_string();
        }
        bands.insert(band(m));
    }
    match bands.len() {
        1 => format!("q{}", bands.iter().next().expect("non-empty")),
        _ => "mixed".to_string(),
    }
}

/// The finished report.
#[derive(Debug)]
pub struct Report {
    /// Input accounting.
    pub stats: InputStats,
    /// Run headers seen.
    pub runs: Vec<RunHeader>,
    /// The merged loop store (persist this back with `--store`).
    pub store: LoopStore,
    /// Distinct loops that recurred across ≥ 2 epochs.
    pub persistent: u64,
    /// Distinct loops seen in exactly one epoch.
    pub transient: u64,
    /// Loop count by cycle length.
    pub by_length: BTreeMap<usize, u64>,
    /// Loop count by topology region.
    pub by_region: BTreeMap<String, u64>,
    /// Flow-level classification.
    pub flows: FlowAnalysis,
    /// Endpoint pairs observed (capped) and overflow beyond the cap.
    pub observed_pairs: usize,
    /// Pairs beyond [`OBSERVED_PAIRS_CAP`] (counted, unclassified).
    pub observed_overflow: u64,
    /// Caught (detected-looping) pair count.
    pub caught_pairs: usize,
    /// Top flows by looped packets (pair, weight).
    pub top_flows: Vec<(Pair, u64)>,
    /// Top switches by loop involvement (switch ID, weight).
    pub top_switches: Vec<(u32, u64)>,
}

impl Report {
    fn build(pipeline: Pipeline, top_k: usize, cross_check: bool) -> Report {
        let Pipeline {
            store,
            stats,
            runs,
            caught,
            observed,
            observed_overflow,
            top_flows,
            top_switches,
            ..
        } = pipeline;
        let flows = flow_analysis(&runs, &store, &observed, &caught, cross_check);
        let mut persistent = 0;
        let mut transient = 0;
        let mut by_length: BTreeMap<usize, u64> = BTreeMap::new();
        let mut by_region: BTreeMap<String, u64> = BTreeMap::new();
        let (topology, nodes, id_base) = runs
            .first()
            .map(|r| (r.topology.clone(), r.nodes, r.id_base))
            .unwrap_or_default();
        for (key, record) in store.iter() {
            if record.persistent() {
                persistent += 1;
            } else {
                transient += 1;
            }
            *by_length.entry(key.len()).or_default() += 1;
            let members: Vec<Option<NodeId>> = key
                .members()
                .iter()
                .map(|&id| {
                    id.checked_sub(id_base)
                        .map(|v| v as usize)
                        .filter(|&v| v < nodes)
                })
                .collect();
            *by_region
                .entry(region_label(&topology, nodes, &members))
                .or_default() += 1;
        }
        Report {
            stats,
            runs,
            persistent,
            transient,
            by_length,
            by_region,
            flows,
            observed_pairs: observed.len(),
            observed_overflow,
            caught_pairs: caught.len(),
            top_flows: top_flows
                .top(top_k)
                .into_iter()
                .map(|h| (h.key, h.weight))
                .collect(),
            top_switches: top_switches
                .top(top_k)
                .into_iter()
                .map(|h| (h.key, h.weight))
                .collect(),
            store,
        }
    }

    /// Renders the report as JSON.
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.set("unroller_analytics", Json::UInt(1));

        let mut inputs = Json::object();
        inputs.set("event_files", Json::UInt(self.stats.event_files));
        inputs.set("events", Json::UInt(self.stats.events));
        inputs.set("headers", Json::UInt(self.stats.headers));
        inputs.set("malformed_lines", Json::UInt(self.stats.malformed_lines));
        inputs.set(
            "truncated_event_logs",
            Json::UInt(self.stats.truncated_event_logs),
        );
        inputs.set("captures", Json::UInt(self.stats.captures));
        inputs.set("frames", Json::UInt(self.stats.frames));
        inputs.set(
            "unattributed_frames",
            Json::UInt(self.stats.unattributed_frames),
        );
        inputs.set(
            "truncated_captures",
            Json::UInt(self.stats.truncated_captures),
        );
        inputs.set("looped_frames", Json::UInt(self.stats.looped_frames));
        root.set("inputs", inputs);

        root.set(
            "runs",
            Json::Array(
                self.runs
                    .iter()
                    .map(|r| {
                        let mut j = Json::object();
                        j.set("run_id", Json::Str(r.run_id.clone()));
                        j.set("topology", Json::Str(r.topology.clone()));
                        j.set("seed", Json::UInt(r.seed));
                        j.set("epoch", Json::UInt(r.epoch));
                        j.set("shards", Json::UInt(r.shards));
                        j
                    })
                    .collect(),
            ),
        );

        let mut loops = Json::object();
        loops.set("total", Json::UInt(self.store.len() as u64));
        loops.set("persistent", Json::UInt(self.persistent));
        loops.set("transient", Json::UInt(self.transient));
        let mut by_len = Json::object();
        for (len, count) in &self.by_length {
            by_len.set(&len.to_string(), Json::UInt(*count));
        }
        loops.set("by_length", by_len);
        let mut by_region = Json::object();
        for (region, count) in &self.by_region {
            by_region.set(region, Json::UInt(*count));
        }
        loops.set("by_region", by_region);
        loops.set(
            "records",
            Json::Array(
                self.store
                    .iter()
                    .take(64)
                    .map(|(key, record)| {
                        let mut j = Json::object();
                        j.set(
                            "cycle",
                            Json::Array(
                                key.members()
                                    .iter()
                                    .map(|&m| Json::UInt(m as u64))
                                    .collect(),
                            ),
                        );
                        j.set("length", Json::UInt(key.len() as u64));
                        j.set("persistent", Json::Bool(record.persistent()));
                        j.set(
                            "epochs",
                            Json::Array(record.epochs().into_iter().map(Json::UInt).collect()),
                        );
                        j.set("runs", Json::UInt(record.runs.len() as u64));
                        j.set("events", Json::UInt(record.events()));
                        j.set("packets", Json::UInt(record.packets()));
                        j
                    })
                    .collect(),
            ),
        );
        root.set("loops", loops);

        let mut routers = Json::object();
        let switches = self.store.looping_switches();
        routers.set("count", Json::UInt(switches.len() as u64));
        routers.set(
            "switch_ids",
            Json::Array(
                switches
                    .iter()
                    .take(64)
                    .map(|&s| Json::UInt(s as u64))
                    .collect(),
            ),
        );
        root.set("looping_routers", routers);

        let mut flows = Json::object();
        flows.set("observed_pairs", Json::UInt(self.observed_pairs as u64));
        flows.set("observed_overflow", Json::UInt(self.observed_overflow));
        flows.set("caught", Json::UInt(self.caught_pairs as u64));
        flows.set("analysis_ran", Json::Bool(self.flows.ran));
        if let Some(reason) = &self.flows.skipped {
            flows.set("analysis_skipped", Json::Str(reason.clone()));
        }
        flows.set("trapped", Json::UInt(self.flows.trapped.len() as u64));
        flows.set("imperiled", Json::UInt(self.flows.imperiled.len() as u64));
        let pair_json =
            |&(s, d): &Pair| Json::Array(vec![Json::UInt(s as u64), Json::UInt(d as u64)]);
        flows.set(
            "imperiled_sample",
            Json::Array(
                self.flows
                    .imperiled
                    .iter()
                    .take(32)
                    .map(pair_json)
                    .collect(),
            ),
        );
        root.set("flows", flows);

        if let Some(cc) = &self.flows.cross_check {
            let mut j = Json::object();
            j.set("agrees", Json::Bool(cc.agrees()));
            j.set("imperiled_agree", Json::Bool(cc.imperiled_agree));
            j.set("trapped_agree", Json::Bool(cc.trapped_agree));
            j.set("routers_agree", Json::Bool(cc.routers_agree));
            j.set(
                "imperiled_fwdcheck",
                Json::UInt(cc.imperiled_fwdcheck as u64),
            );
            j.set(
                "imperiled_analytics",
                Json::UInt(self.flows.imperiled.len() as u64),
            );
            j.set("trapped_fwdcheck", Json::UInt(cc.trapped_fwdcheck as u64));
            j.set("routers_fwdcheck", Json::UInt(cc.routers_fwdcheck as u64));
            root.set("cross_check", j);
        }

        root.set(
            "top_flows",
            Json::Array(
                self.top_flows
                    .iter()
                    .map(|&((s, d), w)| {
                        let mut j = Json::object();
                        j.set("src", Json::UInt(s as u64));
                        j.set("dst", Json::UInt(d as u64));
                        j.set("looped_packets", Json::UInt(w));
                        j
                    })
                    .collect(),
            ),
        );
        root.set(
            "top_switches",
            Json::Array(
                self.top_switches
                    .iter()
                    .map(|&(id, w)| {
                        let mut j = Json::object();
                        j.set("switch_id", Json::UInt(id as u64));
                        j.set("loop_events", Json::UInt(w));
                        j
                    })
                    .collect(),
            ),
        );
        root
    }
}
