//! Streaming reader for engine loop-event logs (JSONL).
//!
//! The engine writes one header line per run ([`RunHeader`]) followed
//! by one line per deduplicated loop event — see
//! `unroller_engine::eventlog`. Logs concatenate: each header line
//! switches the run context for the events that follow, so a multi-run
//! archive is just `cat run1.jsonl run2.jsonl`. The reader holds one
//! line in memory at a time and never rewinds, so arbitrarily large
//! logs stream in `O(longest line)` space.
//!
//! Robustness mirrors `dataplane::pcap`'s truncation story: a final
//! line cut off mid-record (the capturing engine died) is counted, not
//! fatal; interior lines that fail to parse are counted and skipped.

use crate::jsonin::{parse, Value};
use std::io::BufRead;
use unroller_engine::FlowKey;

/// A run's identity, parsed from an event-log header line.
#[derive(Debug, Clone, PartialEq)]
pub struct RunHeader {
    /// Stable identifier joining this run's artifacts.
    pub run_id: String,
    /// Traffic seed.
    pub seed: u64,
    /// Topology spec string (`ring:32`, `fat-tree:4`, ...).
    pub topology: String,
    /// Node count.
    pub nodes: usize,
    /// Concurrent flows offered.
    pub flows: u64,
    /// Packets offered.
    pub packets: u64,
    /// Worker shard count.
    pub shards: u64,
    /// Epoch of the run.
    pub epoch: u64,
    /// Base of the sequential switch-ID assignment.
    pub id_base: u32,
    /// The injected loop, if any: (cycle nodes, poisoned destination,
    /// activation packet index).
    pub injection: Option<(Vec<usize>, usize, u64)>,
}

/// One loop-event record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// The flow whose packet tripped the detector.
    pub flow: FlowKey,
    /// The packet's per-flow sequence number.
    pub seq: u64,
    /// The shard that processed it.
    pub shard: u64,
    /// The switch ID whose pipeline reported the loop.
    pub trigger: u32,
    /// Hop count at the report.
    pub hop: u32,
    /// Loop membership (switch IDs, §3.5 collection).
    pub members: Vec<u32>,
    /// Whether membership collection closed the cycle.
    pub complete: bool,
    /// The record's own epoch stamp, if present (else the header's).
    pub epoch: Option<u64>,
}

/// An item from the log: a run-context switch or an event.
#[derive(Debug, Clone, PartialEq)]
pub enum LogItem {
    /// A header line — events that follow belong to this run.
    Header(RunHeader),
    /// One loop event.
    Event(EventRecord),
}

/// Why a line was not yielded as a [`LogItem`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReaderStats {
    /// Interior lines that failed to parse (skipped).
    pub malformed_lines: u64,
    /// A final line cut off mid-record (at most 1 per file).
    pub truncated_tail: u64,
    /// Event lines yielded.
    pub events: u64,
    /// Header lines yielded.
    pub headers: u64,
}

/// Streams [`LogItem`]s off a buffered reader.
#[derive(Debug)]
pub struct EventLogReader<R: BufRead> {
    input: std::io::Lines<R>,
    lookahead: Option<String>,
    /// Parse/shape accounting.
    pub stats: ReaderStats,
    pending_error: Option<String>,
    done: bool,
}

fn u64_field(v: &Value, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn parse_header(v: &Value) -> Option<RunHeader> {
    let run = v.get("run")?;
    let injection = match run.get("injection") {
        Some(Value::Null) | None => None,
        Some(inj) => {
            let cycle = inj
                .get("cycle")?
                .as_array()?
                .iter()
                .map(|n| n.as_u64().map(|u| u as usize))
                .collect::<Option<Vec<_>>>()?;
            Some((
                cycle,
                u64_field(inj, "dst")? as usize,
                u64_field(inj, "at_packet")?,
            ))
        }
    };
    Some(RunHeader {
        run_id: run.get("run_id")?.as_str()?.to_string(),
        seed: u64_field(run, "seed")?,
        topology: run.get("topology")?.as_str()?.to_string(),
        nodes: u64_field(run, "nodes")? as usize,
        flows: u64_field(run, "flows")?,
        packets: u64_field(run, "packets")?,
        shards: u64_field(run, "shards")?,
        epoch: u64_field(run, "epoch")?,
        id_base: u64_field(run, "id_base")? as u32,
        injection,
    })
}

fn parse_event(v: &Value) -> Option<EventRecord> {
    let flow = v.get("flow")?;
    let key = FlowKey {
        src_ip: u64_field(flow, "src_ip")? as u32,
        dst_ip: u64_field(flow, "dst_ip")? as u32,
        src_port: u64_field(flow, "src_port")? as u16,
        dst_port: u64_field(flow, "dst_port")? as u16,
        proto: u64_field(flow, "proto")? as u8,
    };
    let members = v
        .get("members")?
        .as_array()?
        .iter()
        .map(|m| m.as_u64().map(|u| u as u32))
        .collect::<Option<Vec<_>>>()?;
    Some(EventRecord {
        flow: key,
        seq: u64_field(v, "seq")?,
        shard: u64_field(v, "shard")?,
        trigger: u64_field(v, "trigger")? as u32,
        hop: u64_field(v, "hop")? as u32,
        members,
        complete: v.get("complete")?.as_bool()?,
        epoch: u64_field(v, "epoch"),
    })
}

impl<R: BufRead> EventLogReader<R> {
    /// Wraps a buffered reader positioned at the start of a log.
    pub fn new(input: R) -> Self {
        EventLogReader {
            input: input.lines(),
            lookahead: None,
            stats: ReaderStats::default(),
            pending_error: None,
            done: false,
        }
    }

    /// The I/O error that ended iteration, if any.
    pub fn io_error(&self) -> Option<&str> {
        self.pending_error.as_deref()
    }
}

impl EventLogReader<std::io::BufReader<std::fs::File>> {
    /// Opens a log file for streaming.
    pub fn open(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufReader::new(std::fs::File::open(
            path,
        )?)))
    }
}

impl<R: BufRead> Iterator for EventLogReader<R> {
    type Item = LogItem;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            let line = match self.lookahead.take() {
                Some(line) => line,
                None => match self.input.next() {
                    None => break,
                    Some(Err(e)) => {
                        self.pending_error = Some(e.to_string());
                        self.done = true;
                        break;
                    }
                    Some(Ok(line)) => line,
                },
            };
            if line.trim().is_empty() {
                continue;
            }
            let parsed = match parse(&line) {
                Ok(v) => v,
                Err(_) => {
                    // A parse failure on the last line is the truncated
                    // tail of a dying writer; anywhere else it's a
                    // malformed interior line to skip. Peeking one line
                    // tells the two apart; the peeked line is stashed
                    // and processed on the next iteration.
                    match self.input.next() {
                        None => {
                            self.stats.truncated_tail += 1;
                            self.done = true;
                            break;
                        }
                        Some(Err(e)) => {
                            self.pending_error = Some(e.to_string());
                            self.stats.malformed_lines += 1;
                            self.done = true;
                            break;
                        }
                        Some(Ok(next_line)) => {
                            self.lookahead = Some(next_line);
                            self.stats.malformed_lines += 1;
                            continue;
                        }
                    }
                }
            };
            if parsed.get("unroller_event_log").is_some() {
                match parse_header(&parsed) {
                    Some(h) => {
                        self.stats.headers += 1;
                        return Some(LogItem::Header(h));
                    }
                    None => {
                        self.stats.malformed_lines += 1;
                        continue;
                    }
                }
            }
            match parse_event(&parsed) {
                Some(ev) => {
                    self.stats.events += 1;
                    return Some(LogItem::Event(ev));
                }
                None => {
                    self.stats.malformed_lines += 1;
                    continue;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unroller_engine::eventlog::{event_line, RunMeta};
    use unroller_engine::LoopEvent;

    fn meta(epoch: u64) -> RunMeta {
        RunMeta {
            run_id: format!("t-{epoch}"),
            seed: 3,
            topology: "ring:8".to_string(),
            nodes: 8,
            flows: 4,
            packets: 100,
            shards: 2,
            epoch,
            id_base: 100,
            injection: Some((vec![1, 2], 4, 25)).map(|(cycle, dst, at_packet)| {
                unroller_engine::LoopInjection {
                    cycle,
                    dst,
                    at_packet,
                }
            }),
        }
    }

    fn event(flow_index: u32, seq: u64) -> LoopEvent {
        LoopEvent {
            flow: FlowKey::synthetic(1, 4, flow_index),
            seq,
            shard: 0,
            trigger: 101,
            hop: 9,
            members: vec![101, 102],
            complete: true,
        }
    }

    #[test]
    fn reads_back_what_the_engine_writes() {
        let mut log = String::new();
        log.push_str(&meta(0).header_line());
        log.push('\n');
        log.push_str(&event_line(&event(0, 7), 0));
        log.push('\n');
        log.push_str(&meta(1).header_line());
        log.push('\n');
        log.push_str(&event_line(&event(1, 9), 1));
        log.push('\n');
        let mut r = EventLogReader::new(log.as_bytes());
        match r.next().unwrap() {
            LogItem::Header(h) => {
                assert_eq!(h.epoch, 0);
                assert_eq!(h.topology, "ring:8");
                assert_eq!(h.injection, Some((vec![1, 2], 4, 25)));
            }
            other => panic!("unexpected {other:?}"),
        }
        match r.next().unwrap() {
            LogItem::Event(ev) => {
                assert_eq!(ev.seq, 7);
                assert_eq!(ev.members, vec![101, 102]);
                assert_eq!(ev.epoch, Some(0));
                assert_eq!(ev.flow.synthetic_endpoints(), (1, 4));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(r.next().unwrap(), LogItem::Header(h) if h.epoch == 1));
        assert!(matches!(r.next().unwrap(), LogItem::Event(ev) if ev.epoch == Some(1)));
        assert!(r.next().is_none());
        assert_eq!(r.stats.headers, 2);
        assert_eq!(r.stats.events, 2);
        assert_eq!(r.stats.truncated_tail, 0);
    }

    #[test]
    fn truncated_tail_is_counted_not_fatal() {
        let mut log = String::new();
        log.push_str(&meta(0).header_line());
        log.push('\n');
        log.push_str(&event_line(&event(0, 7), 0));
        log.push('\n');
        let full = event_line(&event(1, 8), 0);
        log.push_str(&full[..full.len() / 2]); // writer died mid-line
        let mut r = EventLogReader::new(log.as_bytes());
        assert_eq!(r.by_ref().count(), 2);
        assert_eq!(r.stats.truncated_tail, 1);
        assert_eq!(r.stats.events, 1);
    }

    #[test]
    fn no_injection_and_blank_lines() {
        let mut m = meta(0);
        m.injection = None;
        let log = format!("{}\n\n", m.header_line());
        let mut r = EventLogReader::new(log.as_bytes());
        assert!(matches!(
            r.next().unwrap(),
            LogItem::Header(h) if h.injection.is_none()
        ));
        assert!(r.next().is_none());
    }

    #[test]
    fn interior_garbage_is_skipped() {
        let mut log = String::new();
        log.push_str(&meta(0).header_line());
        log.push('\n');
        log.push_str("{not json}\n");
        log.push_str(&event_line(&event(0, 7), 0));
        log.push('\n');
        log.push_str(&event_line(&event(1, 8), 0));
        log.push('\n');
        let mut r = EventLogReader::new(log.as_bytes());
        let items: Vec<LogItem> = r.by_ref().collect();
        assert_eq!(items.len(), 3, "both events survive the garbage line");
        assert_eq!(r.stats.malformed_lines, 1);
        assert_eq!(r.stats.events, 2);
    }
}
