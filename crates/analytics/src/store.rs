//! The persistent loop store: every distinct forwarding cycle ever
//! observed, keyed by its canonicalized membership, with per-run
//! statistics — the repo's analogue of yarrp-toolkit's persistent loop
//! storage (PAPERS.md).
//!
//! A loop event's membership is the cycle's switch IDs *in traversal
//! order from whichever switch happened to trigger* — two detections of
//! the same loop arrive as rotations of one another. [`CycleKey`]
//! canonicalizes rotation away (and only rotation: a cycle and its
//! reversal are different forwarding states), so every starting point
//! maps to one store entry. Merging stores from different runs is
//! idempotent by construction: counters take field-wise max per
//! `(cycle, run)` and flow sets union, so re-merging an
//! already-absorbed run changes nothing.

use crate::jsonin::{parse, LenientLines, Value};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use unroller_engine::{FlowKey, Json};

/// The canonical cycle key — the shared `unroller_core`
/// implementation, re-exported so existing `analytics::store::CycleKey`
/// paths keep working. The federated control plane's loop digests use
/// the same type, so digests and store entries agree on loop identity
/// by construction.
pub use unroller_core::CycleKey;

/// Per-run flow lists are capped so the store stays bounded no matter
/// how many flows a run traps; the count keeps counting.
pub const FLOWS_PER_RUN_CAP: usize = 1024;

/// What one run saw of one loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// The run's epoch.
    pub epoch: u64,
    /// Deduplicated loop events attributing to this cycle.
    pub events: u64,
    /// Looped packets attributed (captured frames of caught flows, or
    /// the event count when no capture is available).
    pub packets: u64,
    /// Flows caught in this cycle (capped at [`FLOWS_PER_RUN_CAP`]).
    pub flows: BTreeSet<FlowKey>,
    /// Total flows observed, including those beyond the cap.
    pub flow_count: u64,
}

impl RunStats {
    fn absorb(&mut self, other: &RunStats) {
        self.epoch = self.epoch.max(other.epoch);
        self.events = self.events.max(other.events);
        self.packets = self.packets.max(other.packets);
        for f in &other.flows {
            if self.flows.len() >= FLOWS_PER_RUN_CAP && !self.flows.contains(f) {
                break;
            }
            self.flows.insert(*f);
        }
        self.flow_count = self
            .flow_count
            .max(other.flow_count)
            .max(self.flows.len() as u64);
    }
}

/// One stored loop: a canonical cycle plus everything every run saw of
/// it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopRecord {
    /// Per-run statistics, keyed by run ID.
    pub runs: BTreeMap<String, RunStats>,
}

impl LoopRecord {
    /// Distinct epochs across runs.
    pub fn epochs(&self) -> BTreeSet<u64> {
        self.runs.values().map(|r| r.epoch).collect()
    }

    /// Whether the loop recurred across ≥ 2 epochs (persistent) rather
    /// than appearing in one (transient).
    pub fn persistent(&self) -> bool {
        self.epochs().len() >= 2
    }

    /// Total events across runs.
    pub fn events(&self) -> u64 {
        self.runs.values().map(|r| r.events).sum()
    }

    /// Total attributed looped packets across runs.
    pub fn packets(&self) -> u64 {
        self.runs.values().map(|r| r.packets).sum()
    }
}

/// Errors loading a persisted store.
#[derive(Debug)]
pub enum StoreError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// A line did not parse or had the wrong shape.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O: {e}"),
            StoreError::Malformed { line, reason } => {
                write!(f, "store line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The on-disk loop store (JSONL: one header line, one line per loop).
#[derive(Debug, Clone, Default)]
pub struct LoopStore {
    loops: BTreeMap<CycleKey, LoopRecord>,
    /// Record lines skipped while parsing because they were corrupt or
    /// truncated (the header stays strict: a bad header means the file
    /// is not a store at all). A parsing stat, not store content —
    /// excluded from equality and untouched by [`LoopStore::merge`].
    pub malformed_lines: u64,
}

impl PartialEq for LoopStore {
    fn eq(&self, other: &Self) -> bool {
        self.loops == other.loops
    }
}

impl Eq for LoopStore {}

/// The store file format version.
pub const STORE_VERSION: u64 = 1;

fn flow_json(f: &FlowKey) -> Json {
    Json::Array(vec![
        Json::UInt(f.src_ip as u64),
        Json::UInt(f.dst_ip as u64),
        Json::UInt(f.src_port as u64),
        Json::UInt(f.dst_port as u64),
        Json::UInt(f.proto as u64),
    ])
}

fn flow_from(v: &Value) -> Option<FlowKey> {
    let a = v.as_array()?;
    if a.len() != 5 {
        return None;
    }
    Some(FlowKey {
        src_ip: a[0].as_u64()? as u32,
        dst_ip: a[1].as_u64()? as u32,
        src_port: a[2].as_u64()? as u16,
        dst_port: a[3].as_u64()? as u16,
        proto: a[4].as_u64()? as u8,
    })
}

impl LoopStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the store holds no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Iterates loops in canonical-key order.
    pub fn iter(&self) -> impl Iterator<Item = (&CycleKey, &LoopRecord)> {
        self.loops.iter()
    }

    /// Looks up one loop.
    pub fn get(&self, key: &CycleKey) -> Option<&LoopRecord> {
        self.loops.get(key)
    }

    /// Records one observation of `members` (any rotation) by `run_id`
    /// at `epoch`, attributing `flow` and `packets` looped packets.
    pub fn observe(
        &mut self,
        members: &[u32],
        run_id: &str,
        epoch: u64,
        flow: Option<FlowKey>,
        packets: u64,
    ) -> CycleKey {
        let key = CycleKey::canonicalize(members);
        let record = self.loops.entry(key.clone()).or_default();
        let stats = match record.runs.entry(run_id.to_string()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => e.insert(RunStats {
                epoch,
                ..RunStats::default()
            }),
        };
        stats.epoch = epoch;
        stats.events += 1;
        stats.packets += packets;
        if let Some(f) = flow {
            if !stats.flows.contains(&f) {
                stats.flow_count += 1;
                if stats.flows.len() < FLOWS_PER_RUN_CAP {
                    stats.flows.insert(f);
                }
            }
        }
        key
    }

    /// Adds `packets` looped packets to an existing `(loop, run)`
    /// attribution (capture frames arriving after the event pass).
    pub fn attribute_packets(&mut self, key: &CycleKey, run_id: &str, packets: u64) {
        if let Some(record) = self.loops.get_mut(key) {
            if let Some(stats) = record.runs.get_mut(run_id) {
                stats.packets += packets;
            }
        }
    }

    /// Every switch ID appearing in any stored cycle.
    pub fn looping_switches(&self) -> BTreeSet<u32> {
        self.loops
            .keys()
            .flat_map(|k| k.members().iter().copied())
            .collect()
    }

    /// Merges `other` into `self`: union by `(cycle, run)`, field-wise
    /// max within a run. Idempotent — `merge(x)` twice equals once —
    /// and commutative up to the flow-list cap.
    pub fn merge(&mut self, other: &LoopStore) {
        for (key, record) in &other.loops {
            let mine = self.loops.entry(key.clone()).or_default();
            for (run_id, stats) in &record.runs {
                match mine.runs.entry(run_id.clone()) {
                    Entry::Occupied(mut e) => e.get_mut().absorb(stats),
                    Entry::Vacant(e) => {
                        e.insert(stats.clone());
                    }
                }
            }
        }
    }

    /// Serializes the store as JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut header = Json::object();
        header.set("unroller_loop_store", Json::UInt(STORE_VERSION));
        header.set("loops", Json::UInt(self.loops.len() as u64));
        out.push_str(&header.render());
        out.push('\n');
        for (key, record) in &self.loops {
            let mut line = Json::object();
            line.set(
                "cycle",
                Json::Array(
                    key.members()
                        .iter()
                        .map(|&m| Json::UInt(m as u64))
                        .collect(),
                ),
            );
            let mut runs = Json::object();
            for (run_id, stats) in &record.runs {
                let mut r = Json::object();
                r.set("epoch", Json::UInt(stats.epoch));
                r.set("events", Json::UInt(stats.events));
                r.set("packets", Json::UInt(stats.packets));
                r.set("flow_count", Json::UInt(stats.flow_count));
                r.set(
                    "flows",
                    Json::Array(stats.flows.iter().map(flow_json).collect()),
                );
                runs.set(run_id, r);
            }
            line.set("runs", runs);
            out.push_str(&line.render());
            out.push('\n');
        }
        out
    }

    /// Parses a store from its JSONL serialization.
    ///
    /// The header line stays strict — a file whose first line is not a
    /// store header is *not a store*, and silently treating it as an
    /// empty one would discard someone's data. Record lines, though,
    /// are parsed leniently: a corrupt or truncated line (a run killed
    /// mid-append, a bad disk sector) is skipped and counted in
    /// [`LoopStore::malformed_lines`] instead of aborting the stream,
    /// mirroring the event reader's and `PcapStream`'s recovery.
    pub fn from_jsonl(text: &str) -> Result<Self, StoreError> {
        let mut store = LoopStore::new();
        let Some(header) = text.lines().next() else {
            return Ok(store);
        };
        let parsed = parse(header).map_err(|e| StoreError::Malformed {
            line: 1,
            reason: e.to_string(),
        })?;
        if parsed.get("unroller_loop_store").and_then(|v| v.as_u64()) != Some(STORE_VERSION) {
            return Err(StoreError::Malformed {
                line: 1,
                reason: "not a loop-store file".to_string(),
            });
        }
        let mut lines = LenientLines::new(&text[header.len()..]);
        while let Some((_, v)) = lines.next() {
            // A line that parsed but has the wrong shape is just as
            // malformed as one that didn't parse.
            let Some(cycle) = v
                .get("cycle")
                .and_then(|c| c.as_array())
                .and_then(|members| {
                    members
                        .iter()
                        .map(|m| m.as_u64().map(|u| u as u32))
                        .collect::<Option<Vec<u32>>>()
                })
            else {
                store.malformed_lines += 1;
                continue;
            };
            let Some(Value::Object(runs)) = v.get("runs") else {
                store.malformed_lines += 1;
                continue;
            };
            let key = CycleKey::canonicalize(&cycle);
            let record = store.loops.entry(key).or_default();
            for (run_id, r) in runs {
                let stats = RunStats {
                    epoch: r.get("epoch").and_then(|x| x.as_u64()).unwrap_or(0),
                    events: r.get("events").and_then(|x| x.as_u64()).unwrap_or(0),
                    packets: r.get("packets").and_then(|x| x.as_u64()).unwrap_or(0),
                    flow_count: r.get("flow_count").and_then(|x| x.as_u64()).unwrap_or(0),
                    flows: r
                        .get("flows")
                        .and_then(|f| f.as_array())
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(flow_from)
                        .collect(),
                };
                match record.runs.entry(run_id.clone()) {
                    Entry::Occupied(mut e) => e.get_mut().absorb(&stats),
                    Entry::Vacant(e) => {
                        e.insert(stats);
                    }
                }
            }
        }
        store.malformed_lines += lines.malformed_lines;
        Ok(store)
    }

    /// Loads a store file; a missing file is an empty store.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, StoreError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::from_jsonl(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(e.into()),
        }
    }

    /// Writes the store to `path`, creating parent directories.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), StoreError> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_jsonl())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_cycle_key_is_rotation_invariant() {
        // The implementation (and its property tests) live in
        // `unroller_core::cycle`; this pins the re-export.
        let base = CycleKey::canonicalize(&[104, 101, 103]);
        assert_eq!(CycleKey::canonicalize(&[103, 104, 101]), base);
        assert_ne!(CycleKey::canonicalize(&[104, 103, 101]), base);
    }

    #[test]
    fn observe_accumulates_per_run() {
        let mut s = LoopStore::new();
        let f0 = FlowKey::synthetic(1, 4, 0);
        let f1 = FlowKey::synthetic(2, 4, 1);
        s.observe(&[102, 101], "r1", 0, Some(f0), 10);
        s.observe(&[101, 102], "r1", 0, Some(f1), 5);
        s.observe(&[101, 102], "r2", 1, Some(f0), 7);
        assert_eq!(s.len(), 1);
        let rec = s.iter().next().unwrap().1;
        assert_eq!(rec.runs["r1"].events, 2);
        assert_eq!(rec.runs["r1"].packets, 15);
        assert_eq!(rec.runs["r1"].flow_count, 2);
        assert_eq!(rec.runs["r2"].epoch, 1);
        assert!(rec.persistent());
        assert_eq!(rec.events(), 3);
        assert_eq!(s.looping_switches(), BTreeSet::from([101, 102]));
    }

    #[test]
    fn single_epoch_is_transient() {
        let mut s = LoopStore::new();
        s.observe(&[101, 102], "r1", 3, None, 1);
        s.observe(&[101, 102], "r2", 3, None, 1);
        assert!(!s.iter().next().unwrap().1.persistent());
    }

    #[test]
    fn merge_is_idempotent_and_serialization_round_trips() {
        let mut a = LoopStore::new();
        a.observe(&[102, 101], "r1", 0, Some(FlowKey::synthetic(1, 4, 0)), 10);
        a.observe(&[105, 103, 104], "r1", 0, None, 2);
        let mut b = LoopStore::new();
        b.observe(&[101, 102], "r2", 1, Some(FlowKey::synthetic(2, 4, 1)), 4);

        let mut merged = a.clone();
        merged.merge(&b);
        let mut twice = merged.clone();
        twice.merge(&b);
        twice.merge(&a);
        assert_eq!(merged, twice, "re-merging absorbed runs changes nothing");

        let round = LoopStore::from_jsonl(&merged.to_jsonl()).unwrap();
        assert_eq!(round, merged);
    }

    #[test]
    fn load_missing_file_is_empty() {
        let s = LoopStore::load("/nonexistent/loopstore.jsonl").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn bad_header_is_rejected_not_skipped() {
        assert!(LoopStore::from_jsonl("{\"wrong\":1}\n").is_err());
        assert!(LoopStore::from_jsonl("not json at all\n").is_err());
    }

    #[test]
    fn corrupt_record_lines_are_skipped_and_counted() {
        // A garbage line *between* two good records (the regression
        // case: one bad sector must not cost the rest of the file),
        // plus a wrong-shape line and a truncated tail.
        let mut good = LoopStore::new();
        good.observe(&[101, 102], "r1", 0, None, 3);
        good.observe(&[105, 103, 104], "r2", 1, None, 2);
        let mut lines: Vec<String> = good.to_jsonl().lines().map(String::from).collect();
        assert_eq!(lines.len(), 3, "header + two records");
        lines.insert(2, "<<< mid-file garbage >>>".to_string());
        lines.push("{\"cycle\":\"oops\",\"runs\":{}}".to_string());
        lines.push("{\"cycle\":[1,2],\"runs\"".to_string()); // truncated write
        let text = lines.join("\n");

        let loaded = LoopStore::from_jsonl(&text).unwrap();
        assert_eq!(loaded, good, "both records survive the garbage");
        assert_eq!(loaded.malformed_lines, 3);

        // A clean round trip reports zero.
        assert_eq!(
            LoopStore::from_jsonl(&good.to_jsonl())
                .unwrap()
                .malformed_lines,
            0
        );
    }
}
