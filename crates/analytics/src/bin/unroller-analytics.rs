//! `unroller-analytics` — stream engine loop-event logs and pcap
//! captures into a classified loop report.
//!
//! Inputs stream one record at a time (peak memory is independent of
//! input size). Loops dedupe into a canonical-cycle store, optionally
//! persisted across invocations with `--store`, and classify as
//! transient vs persistent across epochs, by cycle length, and by
//! topology region; the report adds looping routers, imperiled flows
//! (delivered through a looping router but never caught), and
//! bounded-memory top-k heavy loopers. `--cross-check` rebuilds the
//! runs' routing state and verifies the flow classification against
//! `verify::fwdcheck`, exiting non-zero on any disagreement.

use unroller_analytics::{LoopStore, Pipeline};

struct Options {
    events: Vec<String>,
    captures: Vec<String>,
    store: Option<String>,
    out: Option<String>,
    top: usize,
    cross_check: bool,
}

fn usage() -> ! {
    eprint!(
        "usage: unroller-analytics [options]\n\
         \n\
         inputs (repeatable, streamed in argument order):\n\
         \x20 --events FILE    engine loop-event log (JSONL, --events-out)\n\
         \x20 --capture FILE   pcap capture (engine --capture)\n\
         \n\
         options:\n\
         \x20 --store PATH     persistent loop store: load + merge before\n\
         \x20                  classifying, save the merged store back\n\
         \x20 --out PATH       write the report JSON here (default stdout)\n\
         \x20 --top K          length of the top-flow/top-switch lists (8)\n\
         \x20 --cross-check    verify flow classification against\n\
         \x20                  verify::fwdcheck; exit 1 on disagreement\n\
         \x20 --help           this text\n"
    );
    std::process::exit(0);
}

fn parse_args() -> Options {
    let mut opts = Options {
        events: Vec::new(),
        captures: Vec::new(),
        store: None,
        out: None,
        top: 8,
        cross_check: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => opts.events.push(value(&mut args, "--events")),
            "--capture" => opts.captures.push(value(&mut args, "--capture")),
            "--store" => opts.store = Some(value(&mut args, "--store")),
            "--out" => opts.out = Some(value(&mut args, "--out")),
            "--top" => {
                let v = value(&mut args, "--top");
                opts.top = v.parse().unwrap_or_else(|_| {
                    eprintln!("--top wants an integer, got `{v}`");
                    std::process::exit(2);
                });
            }
            "--cross-check" => opts.cross_check = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    if opts.events.is_empty() && opts.captures.is_empty() {
        eprintln!("nothing to analyze: pass --events and/or --capture (try --help)");
        std::process::exit(2);
    }
    opts
}

fn main() {
    let opts = parse_args();
    let mut pipeline = Pipeline::new();
    for path in &opts.events {
        if let Err(e) = pipeline.ingest_event_log(path) {
            eprintln!("error: event log {path}: {e}");
            std::process::exit(1);
        }
    }
    for path in &opts.captures {
        if let Err(e) = pipeline.ingest_capture(path) {
            eprintln!("error: capture {e}");
            std::process::exit(1);
        }
    }
    if let Some(store_path) = &opts.store {
        match LoopStore::load(store_path) {
            Ok(prior) => pipeline.merge_prior(&prior),
            Err(e) => {
                eprintln!("error: store {store_path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let report = pipeline.finish(opts.top, opts.cross_check);

    if let Some(store_path) = &opts.store {
        if let Err(e) = report.store.save(store_path) {
            eprintln!("error: saving store {store_path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "store: {} loops persisted to {store_path}",
            report.store.len()
        );
    }

    let rendered = report.to_json().render_pretty();
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered + "\n") {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("report written to {path}");
        }
        None => println!("{rendered}"),
    }

    eprintln!(
        "{} events, {} frames -> {} loops ({} persistent), {} looping routers, \
         {} trapped, {} imperiled",
        report.stats.events,
        report.stats.frames,
        report.store.len(),
        report.persistent,
        report.flows.looping_nodes.len(),
        report.flows.trapped.len(),
        report.flows.imperiled.len(),
    );
    if let Some(cc) = &report.flows.cross_check {
        if cc.agrees() {
            eprintln!("cross-check: fwdcheck agrees");
        } else {
            eprintln!(
                "cross-check FAILED: imperiled_agree={} trapped_agree={} routers_agree={}",
                cc.imperiled_agree, cc.trapped_agree, cc.routers_agree
            );
            std::process::exit(1);
        }
    } else if opts.cross_check {
        eprintln!(
            "cross-check requested but flow analysis did not run: {}",
            report
                .flows
                .skipped
                .as_deref()
                .unwrap_or("no reason recorded")
        );
        std::process::exit(1);
    }
}
