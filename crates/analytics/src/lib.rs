//! Streaming loop analytics for Unroller (DESIGN.md §14).
//!
//! The engine detects loops packet by packet; this crate answers the
//! operator's next questions from the artifacts a run leaves behind —
//! loop-event logs (`unroller_engine::eventlog` JSONL) and pcap
//! captures — without ever holding an input file in memory:
//!
//! - [`events`]: line-at-a-time event-log reader, tolerant of
//!   truncated tails and malformed interior lines.
//! - [`jsonin`]: the minimal JSON parser backing it (the workspace's
//!   vendored serde is an API stub, so parsing is hand-rolled).
//! - [`store`]: the persistent [`store::LoopStore`], keyed by
//!   canonicalized membership cycle, merged idempotently across runs —
//!   the basis for transient-vs-persistent classification.
//! - [`topk`]: a bounded-memory HashPipe-style heavy-hitter tracker
//!   for top looping flows and switches.
//! - [`pipeline`]: the streaming [`pipeline::Pipeline`] that ties the
//!   inputs together, classifies loops (by epoch persistence, length,
//!   topology region), derives trapped and imperiled flows from
//!   rebuilt routing state, and cross-checks the flow classification
//!   against `verify::fwdcheck`.
//!
//! The `unroller-analytics` binary is the CLI front end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod jsonin;
pub mod pipeline;
pub mod store;
pub mod topk;

pub use events::{EventLogReader, EventRecord, LogItem, RunHeader};
pub use pipeline::{CrossCheck, FlowAnalysis, InputStats, Pipeline, Report};
pub use store::{CycleKey, LoopRecord, LoopStore, RunStats};
pub use topk::{Hitter, TopK};
