//! Property tests for the loop store: cycle canonicalization is
//! rotation-invariant (every rotation of the same cycle maps to one
//! key) and store merge is idempotent across runs — merging the same
//! run's store twice, in either order, yields the same persisted state.

use proptest::prelude::*;
use unroller_analytics::store::{CycleKey, LoopStore};
use unroller_engine::FlowKey;

/// One synthetic observation, driven from proptest-generated scalars.
#[derive(Debug, Clone)]
struct Obs {
    cycle: Vec<u32>,
    run: usize,
    epoch: u64,
    flow: u32,
    packets: u64,
}

fn apply(store: &mut LoopStore, obs: &[Obs]) {
    for o in obs {
        let run_id = format!("run-{}", o.run);
        store.observe(
            &o.cycle,
            &run_id,
            o.epoch,
            Some(FlowKey::synthetic(o.flow, o.flow + 1, 0)),
            o.packets,
        );
    }
}

fn observations(raw: &[(Vec<u32>, u8, u8, u8, u8)]) -> Vec<Obs> {
    raw.iter()
        .filter(|(cycle, ..)| !cycle.is_empty())
        .map(|(cycle, run, epoch, flow, packets)| Obs {
            cycle: cycle.clone(),
            run: (*run % 3) as usize,
            epoch: (*epoch % 4) as u64,
            flow: *flow as u32,
            packets: *packets as u64,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every rotation of a cycle canonicalizes to the same key, and the
    /// key itself is one of the input's rotations (no members invented
    /// or lost, cyclic order preserved).
    #[test]
    fn rotations_share_one_key(
        cycle in prop::collection::vec(0u32..500, 1..12),
        shift in any::<u64>(),
    ) {
        let base = CycleKey::canonicalize(&cycle);
        let k = (shift as usize) % cycle.len();
        let mut rotated = cycle[k..].to_vec();
        rotated.extend_from_slice(&cycle[..k]);
        prop_assert_eq!(&CycleKey::canonicalize(&rotated), &base);

        let canonical_is_a_rotation = (0..cycle.len()).any(|r| {
            cycle[r..]
                .iter()
                .chain(cycle[..r].iter())
                .eq(base.members().iter())
        });
        prop_assert!(
            canonical_is_a_rotation,
            "canonical form {:?} is not a rotation of {:?}",
            base.members(),
            &cycle
        );
    }

    /// Observing through rotated member lists dedupes into one loop.
    #[test]
    fn rotated_observations_dedupe(
        cycle in prop::collection::vec(0u32..200, 1..8),
        shifts in prop::collection::vec(any::<u64>(), 1..6),
    ) {
        let mut store = LoopStore::new();
        for (i, shift) in shifts.iter().enumerate() {
            let k = (*shift as usize) % cycle.len();
            let mut rotated = cycle[k..].to_vec();
            rotated.extend_from_slice(&cycle[..k]);
            store.observe(&rotated, "r", i as u64, None, 1);
        }
        prop_assert_eq!(store.len(), 1, "rotations created distinct loops");
    }

    /// Merge is idempotent and the persisted form is stable: merging
    /// another run's store once or many times gives identical JSONL,
    /// and a round-trip through serialization preserves it.
    #[test]
    fn merge_across_runs_is_idempotent(
        raw_a in prop::collection::vec(
            (prop::collection::vec(0u32..50, 1..5), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            0..12,
        ),
        raw_b in prop::collection::vec(
            (prop::collection::vec(0u32..50, 1..5), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            0..12,
        ),
    ) {
        let (obs_a, obs_b) = (observations(&raw_a), observations(&raw_b));
        let mut a = LoopStore::new();
        let mut b = LoopStore::new();
        apply(&mut a, &obs_a);
        apply(&mut b, &obs_b);

        let mut once = a.clone();
        once.merge(&b);
        let mut thrice = a.clone();
        thrice.merge(&b);
        thrice.merge(&b);
        thrice.merge(&b);
        prop_assert_eq!(once.to_jsonl(), thrice.to_jsonl(), "re-merge changed the store");

        // Self-merge is a no-op.
        let mut self_merged = once.clone();
        self_merged.merge(&once);
        prop_assert_eq!(self_merged.to_jsonl(), once.to_jsonl(), "self-merge changed the store");

        // And the persisted form round-trips.
        let reloaded = LoopStore::from_jsonl(&once.to_jsonl()).expect("own output parses");
        prop_assert_eq!(reloaded.to_jsonl(), once.to_jsonl());
    }
}
