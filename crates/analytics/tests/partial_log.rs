//! End-to-end regression for the engine's *streaming* event log: a run
//! that takes injected worker panics mid-flight must still leave a
//! JSONL log that the analytics reader parses cleanly, and a writer
//! that dies between records must leave a whole-line-prefix log (the
//! reader tolerates at most a truncated tail).

use unroller_analytics::{EventLogReader, LogItem};
use unroller_engine::{
    Engine, EngineConfig, EventsLogConfig, FaultPlan, FullPolicy, RunMeta, SyntheticSource,
};

fn meta(path_tag: &str) -> RunMeta {
    RunMeta {
        run_id: format!("partial-{path_tag}"),
        seed: 10,
        topology: "synthetic:64".to_string(),
        nodes: 64,
        flows: 16,
        packets: 4_000,
        shards: 2,
        epoch: 3,
        id_base: 1000,
        injection: None,
    }
}

fn tmp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "unroller_partial_{tag}_{}.jsonl",
            std::process::id()
        ))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn panic_injected_run_leaves_a_parseable_log() {
    let path = tmp_path("panic");
    let ids: Vec<u32> = (0..64).map(|i| 1000 + i).collect();
    let engine = Engine::new(
        EngineConfig {
            shards: 2,
            full_policy: FullPolicy::Block,
            faults: FaultPlan::parse("seed=5,panic=0.002,restarts=8").unwrap(),
            events_log: Some(EventsLogConfig {
                path: path.clone(),
                meta: meta("panic"),
            }),
            ..EngineConfig::default()
        },
        &ids,
    )
    .unwrap();
    // Every 4th of 16 flows loops from packet 500.
    let mut source = SyntheticSource::new(64, 16, 4_000, 4, 500, 10);
    let report = engine.run(&mut source).expect("supervised run completes");
    assert!(report.restarts() > 0, "panic faults should have fired");
    assert!(report.loop_detected());
    let logged = report.events_logged.expect("log configured");

    let mut reader = EventLogReader::open(&path).unwrap();
    let mut headers = 0u64;
    let mut events = 0u64;
    for item in &mut reader {
        match item {
            LogItem::Header(h) => {
                headers += 1;
                assert_eq!(h.epoch, 3);
                assert_eq!(h.topology, "synthetic:64");
            }
            LogItem::Event(e) => {
                events += 1;
                assert!(e.complete || !e.members.is_empty());
            }
        }
    }
    let stats = reader.stats;
    assert_eq!(headers, 1);
    assert_eq!(events, logged, "every streamed record parses back");
    assert_eq!(stats.malformed_lines, 0, "no interior garbage");
    assert_eq!(stats.truncated_tail, 0, "flush-per-record leaves no tail");
    std::fs::remove_file(&path).ok();
}

#[test]
fn log_cut_mid_record_still_parses_as_a_prefix() {
    // Simulate the on-disk state of a writer killed mid-write: a valid
    // header, two whole records, then a record cut in half.
    let path = tmp_path("cut");
    let ids: Vec<u32> = (0..64).map(|i| 1000 + i).collect();
    let engine = Engine::new(
        EngineConfig {
            shards: 2,
            full_policy: FullPolicy::Block,
            events_log: Some(EventsLogConfig {
                path: path.clone(),
                meta: meta("cut"),
            }),
            ..EngineConfig::default()
        },
        &ids,
    )
    .unwrap();
    let mut source = SyntheticSource::new(64, 16, 4_000, 2, 200, 10);
    let report = engine.run(&mut source).expect("clean run");
    let logged = report.events_logged.unwrap();
    assert!(logged >= 3, "need a few records to cut ({logged})");

    let text = std::fs::read_to_string(&path).unwrap();
    let keep_lines = 3; // header + 2 records
    let prefix: String = text
        .lines()
        .take(keep_lines)
        .map(|l| format!("{l}\n"))
        .collect();
    let half_line = &text.lines().nth(keep_lines).unwrap();
    let cut = format!("{prefix}{}", &half_line[..half_line.len() / 2]);
    std::fs::write(&path, cut).unwrap();

    let mut reader = EventLogReader::open(&path).unwrap();
    let mut headers = 0u64;
    let mut events = 0u64;
    for item in &mut reader {
        match item {
            LogItem::Header(_) => headers += 1,
            LogItem::Event(_) => events += 1,
        }
    }
    let stats = reader.stats;
    assert_eq!(headers, 1);
    assert_eq!(events, 2, "the whole-line prefix survives");
    assert_eq!(stats.truncated_tail, 1, "the cut line is a tail, not data");
    assert_eq!(stats.malformed_lines, 0);
    std::fs::remove_file(&path).ok();
}
